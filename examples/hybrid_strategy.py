#!/usr/bin/env python3
"""Bounding recomputation with periodic replication (paper §IV-C).

RCMP can replicate the output of every k-th job.  A failure's recomputation
cascade then stops at the last replication point instead of reverting to
the start of the chain, and persisted outputs behind the point can be
reclaimed.  This example sweeps the replication interval on a long chain
with a late failure and reports runtime, cascade depth and storage.
"""

import dataclasses

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20
GB = 1 << 30


def main() -> None:
    cluster = presets.tiny(n_nodes=6)
    chain = build_chain(n_jobs=9, per_node_input=384 * MB,
                        block_size=64 * MB)
    fail = "9"  # late failure: worst case for a pure-recomputation cascade

    print("9-job chain, failure during job 9 "
          "(pure RCMP must recompute jobs 1-8)\n")
    header = (f"{'strategy':26s} {'runtime':>9s} {'recomputed':>11s} "
              f"{'stored':>9s}")
    print(header)
    print("-" * len(header))

    rows = [("RCMP (no replication)", strategies.RCMP)]
    for k in (4, 3, 2):
        rows.append((f"HYBRID every {k} jobs",
                     strategies.rcmp(hybrid_interval=k)))
    reclaiming = dataclasses.replace(
        strategies.rcmp(hybrid_interval=3), hybrid_reclaim=True)
    rows.append(("HYBRID k=3 + reclaim", reclaiming))
    rows.append(("HADOOP REPL-2 (always)", strategies.REPL2))

    for label, strategy in rows:
        result = run_chain(cluster, strategy, chain=chain, failures=fail)
        recomputed = len(result.metrics.jobs_of_kind("recompute"))
        stored = (result.persisted_bytes + result.dfs_bytes) / GB
        print(f"{label:26s} {result.total_runtime:8.1f}s "
              f"{recomputed:11d} {stored:8.2f}G")

    print("\nMore frequent replication points shorten the cascade but add "
          "failure-free\ncost; reclamation trades recomputation speed for "
          "storage (paper §IV-C\nleaves the dynamic choice as future "
          "work).")


if __name__ == "__main__":
    main()
