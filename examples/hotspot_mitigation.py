#!/usr/bin/env python3
"""Hot-spot mitigation via reducer splitting (paper §IV-B2, Figs. 6 & 12).

Without splitting, the single node that recomputed a lost reducer output
becomes a hot-spot: in the next recomputed job, every recomputed mapper
reads its input from that node's disk simultaneously (up to S*N concurrent
accesses vs ~S in an initial run).  Reducer splitting spreads the
regenerated data across all survivors, defusing the contention.

This example prints the mapper running-time distribution during
recomputation with and without splitting, plus an ASCII CDF.
"""

import numpy as np

from repro.analysis.cdf import empirical_cdf, percentile
from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def run_variant(strategy):
    cluster = presets.tiny(n_nodes=8, slots=(2, 2))
    chain = build_chain(n_jobs=4, per_node_input=512 * MB,
                        block_size=64 * MB)
    result = run_chain(cluster, strategy, chain=chain, failures="4")
    return result.metrics.mapper_durations(("recompute", "rerun"))


def ascii_cdf(durations, width=50) -> str:
    x, f = empirical_cdf(durations)
    lines = []
    for pct in (25, 50, 75, 90, 100):
        value = percentile(durations, pct)
        bar = "#" * int(value / x[-1] * width)
        lines.append(f"    p{pct:<3d} {value:7.1f}s |{bar}")
    return "\n".join(lines)


def main() -> None:
    print("mapper running times during recomputation (8 nodes, SLOTS 2-2)")
    for name, strategy in (("RCMP SPLIT", strategies.RCMP),
                           ("RCMP NO-SPLIT", strategies.RCMP_NOSPLIT)):
        durations = run_variant(strategy)
        print(f"\n{name}: {durations.size} recomputed mappers, "
              f"median {np.median(durations):.1f}s, "
              f"max {durations.max():.1f}s")
        print(ascii_cdf(durations))
    print("\nWithout splitting the regenerated partition lives on one "
          "node, so every\nrecomputed mapper of the next job hammers that "
          "disk at once — the paper's\nhot-spot (its Fig. 12 shows the "
          "same rightward CDF shift).")


if __name__ == "__main__":
    main()
