#!/usr/bin/env python3
"""Failure-trace analysis (paper §III-A, Fig. 2).

Generates synthetic availability traces calibrated to the Rice STIC and
SUG@R clusters, prints the failures-per-day CDF as ASCII, and then asks the
paper's economic question: given how rare failure days are at moderate
scale, what does always-on replication cost versus recomputing on the rare
failure?
"""

import numpy as np

from repro.cluster import presets
from repro.cluster.traces import STIC_TRACE, SUGAR_TRACE, generate_trace
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def ascii_series(x, f, width=48) -> str:
    lines = []
    for xi, fi in zip(x[:8], f[:8]):
        bar = "#" * int((fi - 75) / 25 * width) if fi > 75 else ""
        lines.append(f"    <= {int(xi):2d}/day: {fi:6.2f}%  |{bar}")
    return "\n".join(lines)


def main() -> None:
    rng = np.random.default_rng(2014)
    print("=== synthetic availability traces (calibrated to paper Fig. 2)")
    for config in (STIC_TRACE, SUGAR_TRACE):
        trace = generate_trace(config, rng)
        x, f = trace.cdf()
        print(f"\n{config.name}: {config.n_nodes} nodes, "
              f"{config.n_days} days, "
              f"{trace.failure_day_fraction * 100:.1f}% failure days, "
              f"one failure day every "
              f"{trace.mean_time_between_failure_days():.1f} days")
        print(ascii_series(x, f))

    print("\n=== what does always-on replication buy?")
    cluster = presets.tiny(6)
    chain = build_chain(n_jobs=5, per_node_input=384 * MB,
                        block_size=64 * MB)
    t_rcmp_clean = run_chain(cluster, strategies.RCMP,
                             chain=chain).total_runtime
    t_repl3_clean = run_chain(cluster, strategies.REPL3,
                              chain=chain).total_runtime
    t_rcmp_fail = run_chain(cluster, strategies.RCMP, chain=chain,
                            failures="5").total_runtime
    t_repl3_fail = run_chain(cluster, strategies.REPL3, chain=chain,
                             failures="5").total_runtime
    overhead = t_repl3_clean - t_rcmp_clean
    penalty = max(0.0, t_rcmp_fail - t_repl3_fail)
    print(f"  failure-free:   RCMP {t_rcmp_clean:7.1f}s   "
          f"REPL-3 {t_repl3_clean:7.1f}s  "
          f"(replication tax {overhead:+.1f}s per run)")
    print(f"  with a failure: RCMP {t_rcmp_fail:7.1f}s   "
          f"REPL-3 {t_repl3_fail:7.1f}s  "
          f"(recomputation penalty {penalty:+.1f}s)")
    if penalty > 0:
        print(f"  -> replication only pays off if more than "
              f"{overhead / penalty * 100:.0f}% of runs hit a failure; "
              "the traces above show a few percent at most.")
    else:
        print("  -> here RCMP wins even in the failure case: replication "
              "never pays off.")


if __name__ == "__main__":
    main()
