#!/usr/bin/env python3
"""Recomputation on DAG-shaped computations (paper §I, §IV-A).

The paper evaluates a linear chain, but its middleware is driven by
user-supplied job dependencies and RCMP targets any DAG-of-jobs
computation.  This example runs a diamond (fork/join) and a fan-out under
failures and shows the cascade planner recomputing only the *ancestry* the
interrupted job actually needs.
"""

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads import dag

MB = 1 << 20


def describe(result):
    recomputed = [j.logical_index for j in
                  result.metrics.jobs_of_kind("recompute")]
    return (f"{result.total_runtime:7.1f}s, {result.jobs_started} jobs "
            f"started, recomputed {recomputed or 'nothing'}")


def main() -> None:
    cluster = presets.tiny(5)

    print("diamond: job1 -> {job2, job3} -> job4 (join)")
    chain = dag.diamond(per_node_input=384 * MB, block_size=64 * MB)
    clean = run_chain(cluster, strategies.RCMP, chain=chain)
    print(f"  failure-free : {describe(clean)}")
    failed = run_chain(cluster, strategies.RCMP, chain=chain, failures="4")
    print(f"  fail @ join  : {describe(failed)}")
    print("  -> the join's cascade covers its whole damaged ancestry "
          "(jobs 1-3)\n")

    print("fan-out: job1 -> {job2, job3, job4} (independent consumers)")
    chain = dag.fan_out(k=3, per_node_input=384 * MB, block_size=64 * MB)
    failed = run_chain(cluster, strategies.RCMP, chain=chain, failures="3")
    print(f"  fail @ job3  : {describe(failed)}")
    print("  -> sibling job2's lost output is NOT regenerated: no "
          "downstream job needs it;\n     only the shared producer "
          "(job 1) cascades — the paper's minimal-recomputation\n     "
          "principle applied to a DAG.\n")

    print("binary join tree, depth 2 (4 leaves, 3 joins), double failure")
    chain = dag.binary_tree(depth=2, per_node_input=256 * MB,
                            block_size=64 * MB)
    failed = run_chain(cluster, strategies.RCMP, chain=chain,
                       failures="6,8")
    print(f"  FAIL 6,8     : {describe(failed)}")
    assert failed.completed


if __name__ == "__main__":
    main()
