#!/usr/bin/env python3
"""Quickstart: compare RCMP against replication on a small cluster.

Runs the paper's core experiment in miniature: a 5-job I/O-intensive chain
on a 6-node simulated cluster, failure-free and with a node failure late in
the chain, under four failure-resilience strategies.
"""

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def main() -> None:
    cluster = presets.tiny(n_nodes=6)
    chain = build_chain(n_jobs=5, per_node_input=512 * MB,
                        block_size=64 * MB)
    contenders = (strategies.RCMP, strategies.RCMP_NOSPLIT,
                  strategies.REPL2, strategies.REPL3,
                  strategies.OPTIMISTIC)

    print("=== failure-free ===")
    baseline = {}
    for strategy in contenders:
        result = run_chain(cluster, strategy, chain=chain)
        baseline[strategy.name] = result.total_runtime
        print(f"  {strategy.name:16s} {result.total_runtime:8.1f}s "
              f"({result.jobs_started} jobs)")
    fastest = min(baseline.values())
    print("  -> replication's cost is paid on *every* run: "
          f"REPL-3 is {baseline['HADOOP REPL-3'] / fastest:.2f}x "
          "the unreplicated runtime")

    print("\n=== one node dies during job 5 (late failure) ===")
    for strategy in contenders:
        result = run_chain(cluster, strategy, chain=chain, failures="5")
        recomputed = len(result.metrics.jobs_of_kind("recompute"))
        print(f"  {strategy.name:16s} {result.total_runtime:8.1f}s "
              f"({result.jobs_started} jobs, {recomputed} recomputations, "
              f"killed node {result.killed_nodes})")
    print("  -> RCMP recomputes only the lost 1/N of each prior job and")
    print("     splits the lost reducers across all surviving nodes.")


if __name__ == "__main__":
    main()
