#!/usr/bin/env python3
"""Semantic correctness of recomputation, on real records.

Runs the paper's record-level chain (MD5 + byte-sum UDFs, key
randomization) in-process, kills a node, recovers with reducer splitting,
and verifies the final output is byte-for-byte identical to the
failure-free run.  Then demonstrates the paper's Fig. 5 hazard: reusing a
surviving map output whose input partition was split-regenerated corrupts
the output — unless the invalidation rule is applied.
"""

from repro.localexec import LocalCluster, LocalJobConfig, recover_and_finish


def outputs_equal(a, b) -> bool:
    return a == b


def main() -> None:
    config = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=64,
                            records_per_block=8, split_ratio=3, seed=7)

    reference = LocalCluster(5, config)
    reference.run_chain()
    expected = reference.final_output()
    n_records = sum(len(v) for v in expected.values())
    print(f"failure-free chain: {config.n_jobs} jobs, "
          f"{n_records} output records in {len(expected)} partitions")

    # --- failure + recovery ------------------------------------------------
    cluster = LocalCluster(5, config)
    cluster.run_job(1)
    cluster.run_job(2)
    cluster.kill(1)
    lost = sum(len(marks) for per_part in cluster.damage.values()
               for marks in per_part.values())
    print(f"killed node 1 after job 2: {lost} reducer-output pieces lost")
    recover_and_finish(cluster)
    assert outputs_equal(cluster.final_output(), expected)
    print("recovered with 3-way reducer splitting: output identical ✓")

    # --- the Fig. 5 hazard --------------------------------------------------
    def non_local_once(job, task_id, storage_node, moved={}):
        if job == 2 and storage_node == 0 and not moved.get("done"):
            moved["done"] = True
            return 3  # one consumer mapper runs away from its data
        return storage_node

    for guard, label in ((False, "guard OFF"), (True, "guard ON")):
        hazard = LocalCluster(4, LocalJobConfig(
            n_jobs=2, n_partitions=2, records_per_node=48,
            records_per_block=8, split_ratio=2, seed=13),
            map_assignment=non_local_once)
        hazard.run_job(1)
        hazard.run_job(2)
        hazard.kill(0)
        recover_and_finish(hazard, fig5_guard=guard)
        ref = LocalCluster(4, LocalJobConfig(
            n_jobs=2, n_partitions=2, records_per_node=48,
            records_per_block=8, split_ratio=2, seed=13))
        ref.run_chain()
        ok = outputs_equal(hazard.final_output(), ref.final_output())
        print(f"Fig. 5 scenario with {label}: output "
              f"{'identical ✓' if ok else 'CORRUPTED ✗ (expected!)'}")
        assert ok == guard


if __name__ == "__main__":
    main()
