#!/usr/bin/env python3
"""Regenerate and plot the paper's figures in the terminal.

Runs the CI-scale versions of a few experiments and renders them with the
ASCII plotting helpers — a one-command tour of the reproduction.  Use
``rcmp-repro <fig> --scale bench`` for the paper-scale numbers.
"""

from repro.analysis.plotting import bar_chart, cdf_plot, line_plot
from repro.experiments import fig2, fig10, fig12, ratios
from repro.experiments.fig10 import CHAIN_LENGTHS


def main() -> None:
    print(line_plot(fig2.series("ci", seed=1),
                    title="Fig. 2: CDF of new failures per day",
                    x_label="new failures per day"))
    print()

    curves = fig10.curves("ci")
    print(line_plot({k: (list(CHAIN_LENGTHS), list(v))
                     for k, v in curves.items()},
                    title="Fig. 10: slowdown vs chain length "
                          "(failure at job 2)",
                    x_label="chain length (jobs)"))
    print()

    data = fig12.mapper_cdf_data("ci")
    print(cdf_plot({"SPLIT": data["split"]["mappers"],
                    "NO-SPLIT": data["nosplit"]["mappers"]},
                   title="Fig. 12: recomputation mapper running times",
                   x_label="mapper duration (s)"))
    print()

    report = ratios.run("ci")
    print(bar_chart({c.label.split(":")[0]: c.measured
                     for c in report.rows},
                    unit="x",
                    title="REPL-3 / RCMP failure-free slowdown vs "
                          "output weight (§V-A)"))
    print("\n(all CI scale; run `rcmp-repro all --scale bench` for the "
          "paper-scale tables)")


if __name__ == "__main__":
    main()
