"""Data-cube (cuboid lattice) workload: the showcase DAG.

A data cube over ``d`` dimensions materializes one cuboid per subset of
the dimensions — ``2^d`` group-bys.  The base cuboid (all ``d``
dimensions) aggregates the raw input; every coarser cuboid aggregates
from its *smallest parent*, the classic pipelined-cube plan: a parent of
cuboid ``S`` is any already-built cuboid over ``S`` plus one more
dimension, and we pick the lexicographically first (a deterministic
stand-in for the smallest-output parent a cost-based planner would
choose).  The result is a deep fan-out DAG with many independent
branches and many sinks — exactly the shape that makes linear recovery
planning fall over:

* a mid-lattice kill damages cuboids on several branches at once, and
  the cascade must cut per-branch instead of rewinding an index;
* undamaged sibling branches must keep their outputs (and recompute
  nothing);
* every leaf-of-the-lattice cuboid is a sink, so the final output is a
  multi-sink union.

Jobs are numbered in submission (topological) order: subsets by
**descending size**, lexicographic within a size — so the base cuboid
is job 1 and the apex (grand total) is job ``2^d``.
"""

from __future__ import annotations

from itertools import combinations

from repro.cluster.presets import BLOCK_SIZE, STIC_PER_NODE_INPUT
from repro.workloads.chain import ChainJobSpec, ChainSpec


def cuboids(dims: int) -> list[tuple[int, ...]]:
    """All dimension subsets in job order: descending size, then lex.

    ``cuboids(2) == [(0, 1), (0,), (1,), ()]``."""
    if dims < 1:
        raise ValueError("cube needs dims >= 1")
    out: list[tuple[int, ...]] = []
    for size in range(dims, -1, -1):
        out.extend(combinations(range(dims), size))
    return out


def cube_dependencies(dims: int) -> tuple[tuple[int, ...], ...]:
    """Per-job upstream tuples of the cuboid lattice, 1-based — ready
    for ``LocalJobConfig(dependencies=...)``.  The base cuboid reads
    the computation input (``()``); every other cuboid reads its
    smallest (lexicographically first) parent."""
    subsets = cuboids(dims)
    index = {s: j for j, s in enumerate(subsets, start=1)}
    deps: list[tuple[int, ...]] = []
    for subset in subsets:
        if len(subset) == dims:
            deps.append(())
            continue
        missing = sorted(set(range(dims)) - set(subset))
        parents = sorted(tuple(sorted(subset + (extra,)))
                         for extra in missing)
        deps.append((index[parents[0]],))
    return tuple(deps)


def cube(dims: int = 3, per_node_input: float = STIC_PER_NODE_INPUT,
         block_size: float = BLOCK_SIZE) -> ChainSpec:
    """The cuboid lattice as a simulator :class:`ChainSpec`.

    Each aggregation level halves its data (``reduce_output_ratio``
    0.5), the usual group-by shrinkage, so the lattice's total footprint
    stays bounded."""
    deps = cube_dependencies(dims)
    jobs = tuple(
        ChainJobSpec(map_output_ratio=1.0,
                     reduce_output_ratio=1.0 if not parents else 0.5,
                     depends_on=parents)
        for parents in deps)
    return ChainSpec(n_jobs=len(jobs), per_node_input=per_node_input,
                     block_size=block_size, jobs=jobs)


__all__ = ["cube", "cube_dependencies", "cuboids"]
