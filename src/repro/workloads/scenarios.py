"""The failure scenarios of the paper's evaluation (Fig. 7 and Fig. 9).

Jobs are numbered by start order (every started job, including
recomputations, gets the next integer ID), so a failure "at job 14" under
RCMP with a 7-job chain lands on the restarted original job 7 (case c of
Fig. 7: fail at 7 -> recompute jobs 1-6 as IDs 8-13 -> job 7 restarts as 14).

Scenario letters follow Fig. 7:

a) no failure;
b) single failure early (job 2) — RCMP recomputes 1 job;
c) single failure late (job 7) — RCMP recomputes 6 jobs;
d) double failure early (jobs 2 and 4);
e) double failure late (jobs 7 and 14);
f) nested double failure (jobs 4 and 7): the second failure hits while
   recomputation for the first is still running.

Fig. 9 additionally uses FAIL 2,2 and FAIL 7,7 (two kills 15 s apart within
one job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.failures import FailurePlan


@dataclass(frozen=True)
class Scenario:
    """A named failure scenario."""

    key: str
    label: str
    spec: str                 # FailurePlan.parse input; "" = no failures
    description: str = ""

    def plan(self) -> FailurePlan:
        if not self.spec:
            return FailurePlan()
        return FailurePlan.parse(self.spec)

    @property
    def n_failures(self) -> int:
        return self.plan().n_failures


#: Fig. 7's cases plus the extra Fig. 9 double-failure points.
SCENARIOS: dict[str, Scenario] = {
    "a": Scenario("a", "no failure", "",
                  "baseline failure-free execution"),
    "b": Scenario("b", "single failure early", "2",
                  "fails during job 2; RCMP recomputes 1 job"),
    "c": Scenario("c", "single failure late", "7",
                  "fails during job 7; RCMP recomputes 6 jobs"),
    "d": Scenario("d", "double failure early", "2,4",
                  "fails during jobs 2 and 4"),
    "e": Scenario("e", "double failure late", "7,14",
                  "fails during job 7 and its restart"),
    "f": Scenario("f", "nested double failure", "4,7",
                  "second failure during recomputation for the first"),
    "fail2,2": Scenario("fail2,2", "FAIL 2,2", "2,2",
                        "two kills 15 s apart within job 2"),
    "fail7,7": Scenario("fail7,7", "FAIL 7,7", "7,7",
                        "two kills 15 s apart within job 7"),
}


def scenario(key: str) -> Scenario:
    try:
        return SCENARIOS[key]
    except KeyError:
        raise KeyError(f"unknown scenario {key!r}; have "
                       f"{sorted(SCENARIOS)}") from None


def custom(spec: str, label: Optional[str] = None) -> Scenario:
    """Ad-hoc scenario from a FAIL spec string like "3" or "2,6"."""
    return Scenario(spec, label or f"FAIL {spec}", spec)
