"""The multi-job chain computation of the paper's evaluation (§V-A).

The paper builds a custom 7-job, I/O-intensive chain: each job's output is
the next job's input, with an input:shuffle:output ratio of 1/1/1 (the
sort-like ratio; RCMP's relative advantage grows when the output side is
heavier, e.g. Pig Cogroup's x:y:z with z > x).  Each mapper randomizes record
keys so data is balanced across tasks; the record-level UDFs (MD5 + byte-sum
checks) live in :mod:`repro.localexec` — for the performance simulation only
the byte ratios and CPU costs matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.presets import BLOCK_SIZE, STIC_PER_NODE_INPUT
from repro.cluster.spec import ClusterSpec


@dataclass(frozen=True)
class ChainJobSpec:
    """Per-job configuration within the computation.

    ``map_output_ratio`` is shuffle bytes per input byte and
    ``reduce_output_ratio`` output bytes per shuffle byte, so the paper's
    1/1/1 ratio is (1.0, 1.0).

    ``depends_on`` lists the upstream jobs whose outputs this job reads
    (1-based indexes, all smaller than this job's own index).  ``None``
    means the immediately preceding job — the linear chain of the paper's
    evaluation.  An empty tuple reads the computation's input data, so
    general DAGs (diamonds, joins, trees) are expressible; the paper's
    middleware "uses the dependencies to decide the order of job
    submission" (§IV-A) and RCMP targets any DAG-of-jobs computation (§I).
    """

    map_output_ratio: float = 1.0
    reduce_output_ratio: float = 1.0
    #: reducers per node; None = one per reducer slot (WR = 1, which lets
    #: the shuffle overlap the map phase — the common configuration, §IV-B1)
    reducers_per_node: Optional[float] = None
    depends_on: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.map_output_ratio <= 0 or self.reduce_output_ratio <= 0:
            raise ValueError("ratios must be positive")

    def n_reducers(self, cluster_spec: ClusterSpec) -> int:
        if self.reducers_per_node is None:
            per_node = cluster_spec.node.reducer_slots
        else:
            per_node = self.reducers_per_node
        return max(1, int(round(per_node * cluster_spec.n_nodes)))


@dataclass(frozen=True)
class ChainSpec:
    """A chain of jobs over a fixed per-node input volume."""

    n_jobs: int = 7
    per_node_input: float = STIC_PER_NODE_INPUT
    block_size: float = BLOCK_SIZE
    jobs: tuple[ChainJobSpec, ...] = field(default=())
    input_replication: int = 3   # the paper's triple-replicated input

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.per_node_input <= 0 or self.block_size <= 0:
            raise ValueError("sizes must be positive")
        if self.jobs and len(self.jobs) != self.n_jobs:
            raise ValueError("jobs tuple must match n_jobs")
        for j in range(1, self.n_jobs + 1):
            for dep in self.dependencies(j):
                if not 1 <= dep < j:
                    raise ValueError(
                        f"job {j} depends on {dep}: dependencies must "
                        f"reference earlier jobs (a DAG in submission "
                        f"order)")

    def job(self, job_index: int) -> ChainJobSpec:
        """1-based access to a job's spec (uniform default chain)."""
        if not 1 <= job_index <= self.n_jobs:
            raise IndexError(f"job index {job_index} out of range")
        if self.jobs:
            return self.jobs[job_index - 1]
        return ChainJobSpec()

    def dependencies(self, job_index: int) -> tuple[int, ...]:
        """Upstream jobs of ``job_index``; () means the chain input."""
        spec = self.job(job_index)
        if spec.depends_on is not None:
            return spec.depends_on
        return (job_index - 1,) if job_index > 1 else ()

    def consumers(self, job_index: int) -> tuple[int, ...]:
        """Jobs that read ``job_index``'s output."""
        return tuple(j for j in range(job_index + 1, self.n_jobs + 1)
                     if job_index in self.dependencies(j))

    def total_input(self, n_nodes: int) -> float:
        return self.per_node_input * n_nodes


def build_chain(n_jobs: int = 7,
                per_node_input: float = STIC_PER_NODE_INPUT,
                block_size: float = BLOCK_SIZE,
                ratios: tuple[float, float] = (1.0, 1.0),
                reducers_per_node: Optional[float] = None,
                input_replication: int = 3) -> ChainSpec:
    """Convenience constructor for a uniform chain.

    ``ratios`` is (map_output_ratio, reduce_output_ratio) — (1, 1) is the
    paper's 1/1/1 input:shuffle:output job.
    """
    job = ChainJobSpec(map_output_ratio=ratios[0],
                       reduce_output_ratio=ratios[1],
                       reducers_per_node=reducers_per_node)
    return ChainSpec(n_jobs=n_jobs, per_node_input=per_node_input,
                     block_size=block_size,
                     jobs=tuple(job for _ in range(n_jobs)),
                     input_replication=input_replication)
