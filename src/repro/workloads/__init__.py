"""Workloads: the paper's multi-job chain and its failure scenarios."""

from repro.workloads.chain import ChainJobSpec, ChainSpec, build_chain
from repro.workloads.scenarios import SCENARIOS, Scenario

__all__ = [
    "ChainJobSpec",
    "ChainSpec",
    "SCENARIOS",
    "Scenario",
    "build_chain",
]
