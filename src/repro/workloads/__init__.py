"""Workloads: the paper's multi-job chain, DAG shapes (diamond, fan-in,
fan-out, reduction tree, data-cube lattice), and failure scenarios."""

from repro.workloads.chain import ChainJobSpec, ChainSpec, build_chain
from repro.workloads.cube import cube, cube_dependencies, cuboids
from repro.workloads.dag import (
    binary_tree,
    diamond,
    fan_in,
    fan_out,
    shape_dependencies,
)
from repro.workloads.scenarios import SCENARIOS, Scenario

__all__ = [
    "ChainJobSpec",
    "ChainSpec",
    "SCENARIOS",
    "Scenario",
    "binary_tree",
    "build_chain",
    "cube",
    "cube_dependencies",
    "cuboids",
    "diamond",
    "fan_in",
    "fan_out",
    "shape_dependencies",
]
