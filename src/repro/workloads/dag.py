"""DAG-shaped multi-job computations.

The paper's evaluation uses a linear 7-job chain, but RCMP's recomputation
model targets any DAG of jobs (§I: "our work should apply to any big data
parallel processing computation model based on DAGs of tasks"; §IV-A's
middleware is driven by user-supplied job dependencies).  These builders
create common DAG shapes over the same per-job model:

* ``diamond``  — 1 -> {2, 3} -> 4 (a fork/join, like a self-join);
* ``fan_in``   — k independent source jobs feeding one combiner (a k-way
  join: Pig Cogroup-style);
* ``fan_out``  — one producer feeding k independent consumers (a shared
  intermediate dataset, the Nectar-style reuse scenario of §VI);
* ``binary_tree`` — a reduction tree of joins (depth d, 2^d leaves).

A job with several upstreams maps over the union of their output blocks; a
job with none reads the computation's input data.
"""

from __future__ import annotations

from repro.cluster.presets import BLOCK_SIZE, STIC_PER_NODE_INPUT
from repro.workloads.chain import ChainJobSpec, ChainSpec


def _spec(deps: tuple[int, ...], ratios=(1.0, 1.0)) -> ChainJobSpec:
    return ChainJobSpec(map_output_ratio=ratios[0],
                        reduce_output_ratio=ratios[1],
                        depends_on=deps)


def diamond(per_node_input: float = STIC_PER_NODE_INPUT,
            block_size: float = BLOCK_SIZE) -> ChainSpec:
    """1 -> {2, 3} -> 4.  Jobs 2 and 3 both read job 1; job 4 joins them."""
    jobs = (
        _spec(()),            # 1: reads the input
        _spec((1,)),          # 2
        _spec((1,)),          # 3
        _spec((2, 3), ratios=(1.0, 0.5)),  # 4: join, halves the data
    )
    return ChainSpec(n_jobs=4, per_node_input=per_node_input,
                     block_size=block_size, jobs=jobs)


def fan_in(k: int = 3, per_node_input: float = STIC_PER_NODE_INPUT,
           block_size: float = BLOCK_SIZE) -> ChainSpec:
    """k independent source jobs, one combiner reading all of them."""
    if k < 2:
        raise ValueError("fan_in needs k >= 2 sources")
    jobs = tuple(_spec(()) for _ in range(k)) + \
        (_spec(tuple(range(1, k + 1)), ratios=(1.0, 1.0 / k)),)
    return ChainSpec(n_jobs=k + 1, per_node_input=per_node_input,
                     block_size=block_size, jobs=jobs)


def fan_out(k: int = 3, per_node_input: float = STIC_PER_NODE_INPUT,
            block_size: float = BLOCK_SIZE) -> ChainSpec:
    """One producer whose output feeds k independent consumers."""
    if k < 2:
        raise ValueError("fan_out needs k >= 2 consumers")
    jobs = (_spec(()),) + tuple(_spec((1,)) for _ in range(k))
    return ChainSpec(n_jobs=k + 1, per_node_input=per_node_input,
                     block_size=block_size, jobs=jobs)


def binary_tree(depth: int = 2,
                per_node_input: float = STIC_PER_NODE_INPUT,
                block_size: float = BLOCK_SIZE) -> ChainSpec:
    """A reduction tree: 2^depth leaf jobs pairwise joined level by level.

    Jobs are numbered in submission (topological) order: leaves first, then
    each join level.  Every join halves its data so the tree's total output
    stays bounded.
    """
    if depth < 1:
        raise ValueError("binary_tree needs depth >= 1")
    jobs: list[ChainJobSpec] = []
    level = []
    for _ in range(2 ** depth):
        jobs.append(_spec(()))
        level.append(len(jobs))
    while len(level) > 1:
        nxt = []
        for a, b in zip(level[::2], level[1::2]):
            jobs.append(_spec((a, b), ratios=(1.0, 0.5)))
            nxt.append(len(jobs))
        level = nxt
    return ChainSpec(n_jobs=len(jobs), per_node_input=per_node_input,
                     block_size=block_size, jobs=tuple(jobs))


def shape_dependencies(shape: str) -> tuple[tuple[int, ...], ...]:
    """Parse a DAG shape name into per-job dependency tuples, ready for
    ``LocalJobConfig(dependencies=...)`` (and ``None`` for a linear
    chain, which keeps the config's classic linear default).

    Shapes: ``linear``, ``diamond``, ``fanin:K``, ``fanout:K``,
    ``tree:DEPTH``, ``cube:DIMS``.  Raises :class:`ValueError` on an
    unknown shape or a malformed parameter."""
    from repro.workloads.cube import cube_dependencies

    name, _, arg = shape.partition(":")
    name = name.strip().lower()
    if name == "linear":
        return None
    builders = {"diamond": (diamond, None), "fanin": (fan_in, 3),
                "fanout": (fan_out, 3), "tree": (binary_tree, 2)}
    if name == "cube":
        return cube_dependencies(int(arg) if arg else 3)
    if name not in builders:
        raise ValueError(
            f"unknown DAG shape {shape!r}; expected linear, diamond, "
            "fanin:K, fanout:K, tree:DEPTH, or cube:DIMS")
    builder, default = builders[name]
    if name == "diamond":
        if arg:
            raise ValueError("diamond takes no parameter")
        spec = builder()
    else:
        spec = builder(int(arg) if arg else default)
    return tuple(spec.dependencies(j)
                 for j in range(1, spec.n_jobs + 1))
