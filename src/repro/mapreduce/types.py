"""Job and task model for the simulated MapReduce engine.

A *logical job* occupies a fixed position in the multi-job chain (its
``logical_index``).  Every *run* of a job — the initial run or a
recomputation run — is described by a :class:`JobPlan` that lists exactly the
map tasks to execute, the persisted map outputs to reuse, and the reduce
tasks (whole partitions or splits of partitions) to produce.  This mirrors
the paper's JobInit component (§IV-A), which "readies for execution only the
minimum necessary number of mappers" and "only the reducers for which the
outputs were affected".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Optional


class PartitionRef(NamedTuple):
    """Identifies one reducer-output partition of one logical job."""

    job_index: int
    partition: int


@dataclass(frozen=True)
class MapInput:
    """The input of one map task: one block of data.

    ``locations`` lists the nodes holding a replica of the block (the
    scheduler prefers running the task on one of them — data locality).
    ``origin`` names the upstream partition the block belongs to, or ``None``
    for chain-input blocks read from the DFS; the lineage planner uses it to
    apply the paper's Fig. 5 rule.
    """

    size: float
    locations: tuple[int, ...]
    origin: Optional[PartitionRef] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("input size must be >= 0")
        if not self.locations:
            raise ValueError("map input needs at least one location")


@dataclass(frozen=True)
class MapTaskSpec:
    """One map task to execute in this run."""

    task_id: int
    input: MapInput
    output_size: float

    def slice_size(self, n_partitions: int, fraction: float = 1.0) -> float:
        """Bytes this task's output contributes to (a fraction of) one
        partition; key randomization makes slices uniform (§V-A)."""
        return self.output_size / n_partitions * fraction


@dataclass(frozen=True)
class ReusedMapOutput:
    """A persisted map output from a previous run, reused as-is (§IV-A)."""

    task_id: int
    node: int
    output_size: float

    def slice_size(self, n_partitions: int, fraction: float = 1.0) -> float:
        return self.output_size / n_partitions * fraction


@dataclass(frozen=True)
class ReduceTaskSpec:
    """One reduce task: a whole partition, or one split of a partition.

    ``fraction`` is the share of the partition's keys this task owns
    (1.0 for an unsplit reducer, 1/k for one of k splits — the paper's
    reducer splitting, §IV-B1).
    """

    task_id: int
    partition: int
    fraction: float = 1.0
    split_index: int = 0
    n_splits: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not 0 <= self.split_index < self.n_splits:
            raise ValueError("split_index out of range")


@dataclass
class JobPlan:
    """Everything the JobTracker needs to run one job run.

    Attributes
    ----------
    logical_index:
        1-based position of the job in the chain.
    name:
        Human-readable label, e.g. ``"job3"`` or ``"job3/recomp"``.
    kind:
        ``"initial"``, ``"recompute"`` or ``"rerun"`` (the restarted job that
        was interrupted by the failure).
    map_tasks / reused_map_outputs:
        Work to do vs persisted outputs treated as already finished.
    reduce_tasks:
        Partitions (or splits) to produce.
    n_partitions:
        The job's original reducer count; slice arithmetic uses this even
        when only a subset of partitions is recomputed.
    reduce_output_ratio:
        Reduce output bytes per byte of reduce input.
    output_replication:
        DFS replication factor for reducer outputs (1 for RCMP, 2/3 for the
        Hadoop baselines).
    recovery_mode:
        ``"hadoop"`` — on node failure, re-execute affected tasks within the
        job (possible because outputs are replicated);
        ``"abort"`` — on node failure, cancel the job and let the middleware
        plan recomputation (RCMP and OPTIMISTIC, §IV-A).
    reducer_assignment:
        Optional explicit task->node placement (used by recomputation plans
        and tests); unset tasks are placed round-robin.
    spread_output:
        If True, reducer outputs are written spread block-by-block over all
        alive nodes instead of locally — the §IV-B2 alternative to reducer
        splitting, kept for the ablation study.
    """

    logical_index: int
    name: str
    kind: str
    map_tasks: list[MapTaskSpec]
    reduce_tasks: list[ReduceTaskSpec]
    n_partitions: int
    reused_map_outputs: list[ReusedMapOutput] = field(default_factory=list)
    reduce_output_ratio: float = 1.0
    output_replication: int = 1
    recovery_mode: str = "abort"
    reducer_assignment: dict[int, int] = field(default_factory=dict)
    mapper_assignment: dict[int, int] = field(default_factory=dict)
    spread_output: bool = False
    #: partitions regenerated k-way split in this run: their block
    #: boundaries change, which invalidates the next job's persisted map
    #: outputs derived from them (the paper's Fig. 5 rule)
    split_partitions: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if self.kind not in ("initial", "recompute", "rerun"):
            raise ValueError(f"bad job kind {self.kind!r}")
        if self.recovery_mode not in ("hadoop", "abort"):
            raise ValueError(f"bad recovery mode {self.recovery_mode!r}")
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if self.output_replication < 1:
            raise ValueError("output_replication must be >= 1")
        seen = set()
        for t in self.map_tasks:
            if t.task_id in seen:
                raise ValueError(f"duplicate map task id {t.task_id}")
            seen.add(t.task_id)
        for r in self.reused_map_outputs:
            if r.task_id in seen:
                raise ValueError(
                    f"map task {r.task_id} both executed and reused")
            seen.add(r.task_id)

    # -- derived sizes ---------------------------------------------------
    @property
    def total_map_output(self) -> float:
        return (sum(t.output_size for t in self.map_tasks)
                + sum(r.output_size for r in self.reused_map_outputs))

    def reduce_input_size(self, task: ReduceTaskSpec) -> float:
        """Bytes task must shuffle: its key-fraction of its partition."""
        return self.total_map_output / self.n_partitions * task.fraction

    def reduce_output_size(self, task: ReduceTaskSpec) -> float:
        return self.reduce_input_size(task) * self.reduce_output_ratio

    @property
    def total_input(self) -> float:
        return sum(t.input.size for t in self.map_tasks)
