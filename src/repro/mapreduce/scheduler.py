"""Task placement: data locality for mappers, round-robin for reducers.

Initial runs get near-perfect locality because the chain distributes data
evenly across the compute nodes (paper §III-A: "data locality is trivially
obtained by distributing data evenly across exactly the same set of nodes").
Recomputation runs deliberately spread tasks over all surviving nodes — for
mappers this is what creates the paper's hot-spots (§IV-B2), since their
input now lives on whichever node(s) recomputed the lost reducer output.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from repro.cluster.topology import Cluster
from repro.mapreduce.types import JobPlan, MapTaskSpec, ReduceTaskSpec


class Placement:
    """Immutable result of task assignment for one job run."""

    def __init__(self, mappers: dict[int, int], reducers: dict[int, int]):
        self.mappers = mappers      # task_id -> node_id
        self.reducers = reducers    # task_id -> node_id

    def mappers_on(self, node: int) -> list[int]:
        return [t for t, n in self.mappers.items() if n == node]

    def nodes_running_maps(self) -> set[int]:
        return set(self.mappers.values())


def assign_tasks(cluster: Cluster, plan: JobPlan,
                 alive: Optional[Sequence[int]] = None) -> Placement:
    """Assign every task in ``plan`` to an alive node.

    Honors explicit assignments in the plan (used by recomputation planners
    and tests), then places mappers locality-first with load balancing, and
    reducers round-robin starting from the least-loaded node.
    """
    alive = list(alive if alive is not None else cluster.alive_ids())
    if not alive:
        raise RuntimeError("no alive nodes to schedule on")
    alive_set = set(alive)

    load: Counter[int] = Counter({n: 0 for n in alive})
    mappers: dict[int, int] = {}

    def place(task_id: int, node: int) -> None:
        mappers[task_id] = node
        load[node] += 1

    slots = max(1, cluster.spec.node.mapper_slots)
    # Pass 1: explicit assignments.
    remaining: list[MapTaskSpec] = []
    for task in plan.map_tasks:
        node = plan.mapper_assignment.get(task.task_id)
        if node is not None and node in alive_set:
            place(task.task_id, node)
        else:
            remaining.append(task)
    # Pass 2: locality-first with per-node cap to keep waves balanced.
    cap = _per_node_cap(len(plan.map_tasks), len(alive), slots)
    deferred: list[MapTaskSpec] = []
    for task in remaining:
        local = [n for n in task.input.locations if n in alive_set]
        local.sort(key=lambda n: load[n])
        if local and load[local[0]] < cap:
            place(task.task_id, local[0])
        else:
            deferred.append(task)
    # Pass 3: anything left goes to the globally least-loaded node.
    for task in deferred:
        node = min(alive, key=lambda n: (load[n], n))
        place(task.task_id, node)

    reducers: dict[int, int] = {}
    rload: Counter[int] = Counter({n: 0 for n in alive})
    explicit = []
    implicit = []
    for task in plan.reduce_tasks:
        node = plan.reducer_assignment.get(task.task_id)
        if node is not None and node in alive_set:
            reducers[task.task_id] = node
            rload[node] += 1
        else:
            implicit.append(task)
    del explicit
    for task in implicit:
        node = min(alive, key=lambda n: (rload[n], n))
        reducers[task.task_id] = node
        rload[node] += 1
    tracer = cluster.sim.tracer
    if tracer.enabled:
        tracer.instant(
            "phase", "placement", job_kind=plan.kind,
            mappers_per_node={str(n): c for n, c in
                              sorted(Counter(mappers.values()).items())},
            reducers_per_node={str(n): c for n, c in
                               sorted(Counter(reducers.values()).items())})
    return Placement(mappers, reducers)


def _per_node_cap(n_tasks: int, n_nodes: int, slots: int) -> int:
    """Locality cap: a node may take at most one extra wave beyond its fair
    share, so a single over-popular location cannot serialize the map phase."""
    fair = -(-n_tasks // n_nodes)  # ceil division
    return max(slots, fair + slots)


def spread_reducers(reduce_tasks: Sequence[ReduceTaskSpec],
                    alive: Sequence[int],
                    exclude: Optional[set[int]] = None) -> dict[int, int]:
    """Round-robin reducer assignment over ``alive`` (minus ``exclude``).

    Used by recomputation plans: with splitting enabled the splits land on
    distinct nodes, maximizing use of the surviving compute nodes
    (paper Fig. 4).
    """
    nodes = [n for n in alive if not exclude or n not in exclude]
    if not nodes:
        nodes = list(alive)
    return {task.task_id: nodes[i % len(nodes)]
            for i, task in enumerate(reduce_tasks)}
