"""A slot/wave-based MapReduce engine running on the cluster simulator."""

from repro.mapreduce.jobtracker import JobAborted, JobCompletion, JobTracker
from repro.mapreduce.metrics import JobRecord, RunMetrics, TaskRecord
from repro.mapreduce.types import (
    JobPlan,
    MapInput,
    MapTaskSpec,
    PartitionRef,
    ReduceTaskSpec,
    ReusedMapOutput,
)

__all__ = [
    "JobAborted",
    "JobCompletion",
    "JobPlan",
    "JobRecord",
    "JobTracker",
    "MapInput",
    "MapTaskSpec",
    "PartitionRef",
    "ReduceTaskSpec",
    "ReusedMapOutput",
    "RunMetrics",
    "TaskRecord",
]
