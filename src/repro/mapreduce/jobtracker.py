"""The JobTracker: runs one MapReduce job run to completion (or abort).

Execution model
---------------
* Every map/reduce task is a simulation process that first acquires a slot on
  its assigned node, then performs its I/O as fluid flows.
* Map task: read input block (local disk, or remote disk + network), apply
  the UDF (CPU), write the map output to the local disk.  Completion feeds
  the :class:`~repro.mapreduce.shuffle.ShuffleBoard` so reducers can fetch
  progressively (the first reducer wave's shuffle overlaps the map phase,
  paper §IV-B1).
* Reduce task: fetch its key-range slice from every source node (shuffle),
  merge-read the spilled data, apply the UDF, write the output partition to
  the DFS with the configured replication factor.

Failure semantics
-----------------
``recovery_mode="hadoop"`` (the replication baselines): tasks on a dead node
are re-executed on survivors once the failure is *detected*
(``failure_detection_timeout`` after the kill, §V-A); reducers that lose a
shuffle source wait for the source's maps to be re-executed and re-fetch.
If an input block has no surviving replica the run fails permanently with
:class:`JobFailed` (REPL-2 under a double failure).

``recovery_mode="abort"`` (RCMP and OPTIMISTIC): upon detection the job is
cancelled — all task processes are interrupted, their in-flight flows
aborted, partially written outputs deleted — and :class:`JobAborted` is
raised to the middleware, which plans recomputation (§IV-A).  The paper
notes the ~45 s from injection to cancellation is pure overhead for RCMP
because partial results are discarded.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster.topology import Cluster, Node
from repro.dfs import DistributedFileSystem
from repro.dfs.placement import SpreadPlacement
from repro.mapreduce.metrics import JobRecord, RunMetrics, TaskRecord
from repro.mapreduce.scheduler import assign_tasks
from repro.mapreduce.shuffle import ShuffleBoard, pick_chunk_count
from repro.mapreduce.types import JobPlan, MapTaskSpec, ReduceTaskSpec
from repro.simcore import AllOf, Event, Interrupt, SimulationError


class JobAborted(Exception):
    """The run was cancelled (node failure under recovery_mode='abort')."""

    def __init__(self, plan: JobPlan, dead_nodes: list[int]):
        super().__init__(f"job {plan.name} aborted; dead nodes {dead_nodes}")
        self.plan = plan
        self.dead_nodes = dead_nodes


class JobFailed(Exception):
    """Unrecoverable data loss in recovery_mode='hadoop' (insufficient
    replication for the failure pattern, e.g. REPL-2 + a double failure)."""


@dataclass
class JobCompletion:
    """What the middleware needs to know after a successful run."""

    logical_index: int
    ordinal: int
    #: partition -> ordered (node, bytes) pieces of the (re)generated output
    partition_pieces: dict[int, list[tuple[int, float]]]
    #: partition -> DFS file names holding those pieces
    partition_files: dict[int, list[str]]
    #: map task id -> node where its (persisted) output lives
    map_output_nodes: dict[int, int]
    duration: float


@dataclass
class _TaskState:
    spec: object
    node: int
    proc: object = None
    status: str = "pending"    # pending | running | done | dead
    record: Optional[TaskRecord] = None
    is_redo: bool = False
    redo_origins: set = field(default_factory=set)
    flows: list = field(default_factory=list)
    output_pieces: Optional[list[tuple[int, float]]] = None
    output_file: Optional[str] = None


class JobTracker:
    """Runs job plans on a cluster; one instance per chain execution."""

    def __init__(self, cluster: Cluster, dfs: DistributedFileSystem,
                 metrics: RunMetrics, shuffle_flow_budget: int = 20_000):
        self.cluster = cluster
        self.dfs = dfs
        self.metrics = metrics
        self.shuffle_flow_budget = shuffle_flow_budget
        self._ordinal = 0
        self._active_run: Optional[_JobRun] = None

    def next_ordinal(self) -> int:
        self._ordinal += 1
        return self._ordinal

    def peek_ordinal(self) -> int:
        """The ordinal the next run_job call will receive (paper job IDs)."""
        return self._ordinal + 1

    def run_job(self, plan: JobPlan) -> Generator:
        """Simulation process body: run ``plan`` to completion.

        Returns a :class:`JobCompletion`; raises :class:`JobAborted` or
        :class:`JobFailed` per the plan's recovery mode.
        """
        ordinal = self.next_ordinal()
        record = self.metrics.open_job(ordinal, plan.logical_index,
                                       plan.name, plan.kind,
                                       self.cluster.sim.now)
        tracer = self.cluster.sim.tracer
        span = tracer.span("job", f"job#{ordinal}:{plan.name}",
                           kind=plan.kind,
                           logical_index=plan.logical_index,
                           maps=len(plan.map_tasks),
                           reduces=len(plan.reduce_tasks)) \
            if tracer.enabled else None
        run = _JobRun(self, plan, ordinal, record)
        self._active_run = run
        try:
            completion = yield from run.execute()
        finally:
            self._active_run = None
            record.end = self.cluster.sim.now
            if record.outcome == "running":
                record.outcome = "aborted"
            if span is not None:
                span.end(outcome=record.outcome)
                self._trace_tasks(tracer, record)
        record.outcome = "done"
        return completion

    def notify_declared_loss(self, node_id: int) -> None:
        """The failure detector declared a loss that *predates* the active
        run: the node was already down (or had already lost its disk) when
        the run launched, so no per-run death watcher ever fired — but the
        plan may still reference its outputs.  Deliver the declaration to
        the run as a detected failure, now (the detection latency has
        already elapsed)."""
        run = self._active_run
        if run is None or run.finished or run.completion_event.triggered:
            return
        if node_id in run.dead_nodes:
            return  # the run watched this failure itself
        run.dead_nodes.append(node_id)
        run.declare_death(node_id)

    @staticmethod
    def _trace_tasks(tracer, record: JobRecord) -> None:
        """Emit one span per task attempt once the run is over (keeps the
        per-task hot path untouched; records carry exact start/end)."""
        for t in record.tasks:
            end = t.end if t.end is not None else record.end
            tracer.complete("task", f"{t.task_type}#{t.task_id}",
                            t.start, end, tid=t.node,
                            job=record.ordinal, kind=t.job_kind,
                            outcome=t.outcome, bytes_in=t.bytes_in,
                            bytes_out=t.bytes_out)


class _JobRun:
    """Mutable state of one in-flight job run."""

    def __init__(self, jt: JobTracker, plan: JobPlan, ordinal: int,
                 record: JobRecord):
        self.jt = jt
        self.cluster = jt.cluster
        self.sim = jt.cluster.sim
        self.dfs = jt.dfs
        self.plan = plan
        self.ordinal = ordinal
        self.record = record
        self.completion_event = Event(self.sim)
        self.dead_nodes: list[int] = []
        self.finished = False

        spec = self.cluster.spec
        self.shuffle_latency = spec.shuffle_transfer_latency
        self.task_overhead = spec.node.task_overhead
        self.cpu_map = spec.node.cpu_map_bandwidth
        self.cpu_reduce = spec.node.cpu_reduce_bandwidth

        self.maps: dict[int, _TaskState] = {}
        self.reduces: dict[int, _TaskState] = {}
        self.maps_left = len(plan.map_tasks)
        self.reduces_left = len(plan.reduce_tasks)
        #: speculative duplicate attempts, by primary task id
        self._spec_attempts: dict[int, _TaskState] = {}
        #: dead source node -> event succeeding with {new_node: fraction}
        self._redo_events: dict[int, Event] = {}
        #: dead source node -> outstanding redo map task ids
        self._redo_pending: dict[int, set[int]] = {}
        self._death_watched: list[Node] = []

    # ------------------------------------------------------------ lifecycle
    def execute(self) -> Generator:
        plan = self.plan
        placement = assign_tasks(self.cluster, plan)

        map_waves = self._estimate_map_waves(placement)
        limit = self.cluster.spec.shuffle_chunk_limit
        if limit:
            map_waves = min(map_waves, limit)
        chunks = pick_chunk_count(
            len(placement.nodes_running_maps()
                | {r.node for r in plan.reused_map_outputs}),
            len(plan.reduce_tasks), map_waves,
            self.jt.shuffle_flow_budget)
        self.board = ShuffleBoard(self.sim, chunks)
        per_node = Counter(placement.mappers.values())
        for node, count in per_node.items():
            self.board.register_source(node, count)
        for reused in plan.reused_map_outputs:
            self.board.register_reused_source(reused.node)

        for task in plan.map_tasks:
            state = _TaskState(task, placement.mappers[task.task_id])
            self.maps[task.task_id] = state
            self._launch(state, is_map=True)
        for task in plan.reduce_tasks:
            state = _TaskState(task, placement.reducers[task.task_id])
            self.reduces[task.task_id] = state
            self._launch(state, is_map=False)
        self._watch_deaths()
        if self.cluster.spec.speculative_execution:
            self.sim.process(self._speculator(), name="speculator")

        self._check_completion()
        try:
            yield self.completion_event
        finally:
            self._unwatch_deaths()
        self.finished = True
        return self._build_completion(plan)

    def _estimate_map_waves(self, placement) -> int:
        per_node = Counter(placement.mappers.values())
        slots = max(1, self.cluster.spec.node.mapper_slots)
        return max((-(-c // slots) for c in per_node.values()), default=1)

    def _build_completion(self, plan: JobPlan) -> JobCompletion:
        pieces: dict[int, list[tuple[int, float]]] = {}
        files: dict[int, list[str]] = {}
        for state in self.reduces.values():
            spec: ReduceTaskSpec = state.spec
            entry = pieces.setdefault(spec.partition, [])
            if state.output_pieces:
                entry.extend(state.output_pieces)
            else:
                entry.append((state.node, plan.reduce_output_size(spec)))
            if state.output_file:
                files.setdefault(spec.partition, []).append(state.output_file)
        map_nodes = {tid: st.node for tid, st in self.maps.items()}
        return JobCompletion(
            logical_index=plan.logical_index,
            ordinal=self.ordinal,
            partition_pieces=pieces,
            partition_files=files,
            map_output_nodes=map_nodes,
            duration=self.sim.now - self.record.start,
        )

    # ------------------------------------------------------------ launching
    def _launch(self, state: _TaskState, is_map: bool) -> None:
        body = self._map_task(state) if is_map else self._reduce_task(state)
        kind = "map" if is_map else "reduce"
        proc = self.sim.process(body, name=f"{kind}-{state.spec.task_id}")
        state.proc = proc
        self.cluster.nodes[state.node].register_task(proc)

    @staticmethod
    def _acquire_slot(pool) -> Generator:
        """Acquire a slot, never leaking it if the task is interrupted
        while queued (or between grant and resume)."""
        req = pool.request()
        try:
            yield req
        except Interrupt:
            if req.triggered and req.ok:
                pool.release()
            elif not req.triggered:
                pool.cancel(req)
            raise

    def _transfer(self, state: _TaskState, size: float, links,
                  latency: float = 0.0, label: str = ""):
        """Start a flow owned by ``state`` (aborted if the task is killed)."""
        flow = self.cluster.network.transfer(size, links, latency=latency,
                                             label=label)
        state.flows.append(flow)
        return flow

    def _abort_task_flows(self, state: _TaskState) -> None:
        for flow in state.flows:
            if not flow.finished:
                self.cluster.network.abort(flow)
        state.flows.clear()

    # -------------------------------------------------------------- mappers
    def _map_task(self, state: _TaskState) -> Generator:
        node = self.cluster.nodes[state.node]
        slot_held = False
        try:
            yield from self._acquire_slot(node.mapper_slots)
            slot_held = True
            while True:  # retry loop for input-source deaths
                try:
                    yield from self._map_attempt(state)
                    return
                except SimulationError:
                    if self._abortive():
                        self._task_stalled(state)
                        return
                    # Remote input source died mid-read: retry from another
                    # replica immediately, as Hadoop's read path does.
                    if state.record is not None and state.record.end is None:
                        state.record.end = self.sim.now
                        state.record.outcome = "failed"
        except Interrupt:
            self._task_killed(state)
        except JobFailed as exc:
            self._fatal(exc)
        finally:
            if slot_held and node.alive:
                node.mapper_slots.release()

    def _map_attempt(self, state: _TaskState) -> Generator:
        task: MapTaskSpec = state.spec
        node = self.cluster.nodes[state.node]
        state.status = "running"
        state.record = TaskRecord(self.ordinal, self.plan.kind, "map",
                                  task.task_id, state.node, self.sim.now,
                                  bytes_in=task.input.size,
                                  bytes_out=task.output_size)
        self.record.tasks.append(state.record)
        yield self.sim.timeout(self.task_overhead)
        source = self._pick_input_source(task, state.node)
        if source is None:
            if self._abortive():
                # every replica died under abort mode: the pending abort
                # cancels this run and the cascade regenerates the data;
                # park the task instead of failing the whole chain
                self._task_stalled(state)
                return
            raise JobFailed(f"map {task.task_id}: no live replica of input")
        read = self._transfer(state, task.input.size,
                              self.cluster.read_path(source, state.node),
                              label=f"m{task.task_id}.read")
        yield read.done
        yield self.sim.timeout(task.input.size / self.cpu_map)
        write = self._transfer(state, task.output_size, [node.disk],
                               label=f"m{task.task_id}.out")
        yield write.done
        self._map_done(state)

    def _pick_input_source(self, task: MapTaskSpec,
                           node_id: int) -> Optional[int]:
        """Prefer the local replica, else the first live holder (replica
        placement is randomized, so first-holder reads spread naturally
        like HDFS's closest-replica policy does)."""
        alive = [loc for loc in task.input.locations
                 if self.cluster.nodes[loc].alive]
        if not alive:
            return None
        return node_id if node_id in alive else alive[0]

    def _map_done(self, state: _TaskState) -> None:
        state.status = "done"
        state.record.end = self.sim.now
        state.record.outcome = "done"
        # a straggler finishing after its speculative duplicate won: the
        # task was already accounted for, just retire the loser attempt
        attempt = self._spec_attempts.get(state.spec.task_id)
        if attempt is not None and attempt is not state:
            if attempt.proc is not None and attempt.proc.is_alive:
                attempt.proc.interrupt("original attempt won")
            self._abort_task_flows(attempt)
        if state.is_redo:
            self._redo_map_done(state)
        else:
            self.board.map_completed(state.node)
        self.maps_left -= 1
        self._check_completion()

    # ------------------------------------------------------- speculation
    def _speculator(self) -> Generator:
        """Hadoop-style straggler detection for mappers (§II).

        Periodically compares running mappers to the median completed
        mapper duration; stragglers get a duplicate attempt on another
        node.  The duplicate reads a *different* input replica when one
        exists — the paper's §III-A point: when none exists (replication
        factor 1, or the slowness comes from the data's location), the
        duplicate hits the same bottleneck and brings no benefit.
        Completion-time bookkeeping only: the winning duplicate marks the
        original task done early; shuffle placement keeps the original
        node."""
        spec = self.cluster.spec
        while not self.completion_event.triggered:
            yield self.sim.timeout(spec.speculation_interval)
            if self.completion_event.triggered or self.dead_nodes:
                return
            done = [st.record.duration for st in self.maps.values()
                    if st.status == "done" and st.record is not None]
            if not done:
                continue
            done.sort()
            median = done[len(done) // 2]
            threshold = max(spec.speculation_slowdown * median,
                            spec.speculation_min_runtime)
            for tid, state in self.maps.items():
                if state.status != "running" or state.record is None:
                    continue
                if tid in self._spec_attempts:
                    continue
                if self.sim.now - state.record.start > threshold:
                    self._launch_speculative(state)

    def _launch_speculative(self, primary: _TaskState) -> None:
        # Hadoop hands speculative tasks to nodes asking for work: only
        # launch when another node has a free mapper slot (otherwise the
        # next speculator scan retries).
        candidates = [n for n in self.cluster.alive_ids()
                      if n != primary.node
                      and self.cluster.nodes[n].mapper_slots.available > 0]
        if not candidates:
            return
        node = min(candidates,
                   key=lambda n: (self.cluster.nodes[n].mapper_slots.in_use,
                                  n))
        attempt = _TaskState(primary.spec, node)
        attempt.is_redo = primary.is_redo
        attempt.redo_origins = set(primary.redo_origins)
        self._spec_attempts[primary.spec.task_id] = attempt
        proc = self.sim.process(self._speculative_map(primary, attempt),
                                name=f"spec-map-{primary.spec.task_id}")
        attempt.proc = proc
        self.cluster.nodes[node].register_task(proc)

    def _speculative_map(self, primary: _TaskState,
                         attempt: _TaskState) -> Generator:
        task: MapTaskSpec = primary.spec
        node = self.cluster.nodes[attempt.node]
        slot_held = False
        try:
            yield from self._acquire_slot(node.mapper_slots)
            slot_held = True
            if primary.status == "done":
                return  # raced: original finished while we queued
            attempt.status = "running"
            attempt.record = TaskRecord(self.ordinal, self.plan.kind,
                                        "map-speculative", task.task_id,
                                        attempt.node, self.sim.now,
                                        bytes_in=task.input.size,
                                        bytes_out=task.output_size)
            self.record.tasks.append(attempt.record)
            yield self.sim.timeout(self.task_overhead)
            source = self._pick_speculative_source(task, primary,
                                                   attempt.node)
            if source is None:
                self._task_stalled(attempt)
                return
            read = self._transfer(attempt, task.input.size,
                                  self.cluster.read_path(source,
                                                         attempt.node),
                                  label=f"m{task.task_id}.spec.read")
            yield read.done
            yield self.sim.timeout(task.input.size / self.cpu_map)
            write = self._transfer(attempt, task.output_size, [node.disk],
                                   label=f"m{task.task_id}.spec.out")
            yield write.done
            if primary.status != "running":
                # lost the race, or the original is being re-executed by
                # failure recovery — never double-complete the task
                self._task_stalled(attempt)
                return
            # the duplicate won: retire the straggler and complete the task
            attempt.record.end = self.sim.now
            attempt.record.outcome = "done"
            if primary.proc is not None and primary.proc.is_alive:
                primary.proc.interrupt("speculative attempt won")
            self._abort_task_flows(primary)
            primary.status = "done"
            if primary.record is not None and primary.record.end is None:
                primary.record.end = self.sim.now
                primary.record.outcome = "killed"
            if primary.is_redo:
                self._redo_map_done(primary)
            else:
                self.board.map_completed(primary.node)
            self.maps_left -= 1
            self._check_completion()
        except (Interrupt, SimulationError):
            self._task_killed(attempt)
        finally:
            if slot_held and node.alive:
                node.mapper_slots.release()

    def _pick_speculative_source(self, task: MapTaskSpec,
                                 primary: _TaskState,
                                 node_id: int) -> Optional[int]:
        """Prefer a replica the straggler is NOT reading from."""
        alive = [loc for loc in task.input.locations
                 if self.cluster.nodes[loc].alive]
        if not alive:
            return None
        straggler_source = self._pick_input_source(task, primary.node)
        others = [loc for loc in alive if loc != straggler_source]
        pool = others or alive
        return node_id if node_id in pool else pool[0]

    # -------------------------------------------------------------- reducers
    def _reduce_task(self, state: _TaskState) -> Generator:
        task: ReduceTaskSpec = state.spec
        node = self.cluster.nodes[state.node]
        plan = self.plan
        slot_held = False
        try:
            yield from self._acquire_slot(node.reducer_slots)
            slot_held = True
            state.status = "running"
            input_size = plan.reduce_input_size(task)
            output_size = plan.reduce_output_size(task)
            state.record = TaskRecord(self.ordinal, plan.kind, "reduce",
                                      task.task_id, state.node, self.sim.now,
                                      bytes_in=input_size,
                                      bytes_out=output_size)
            self.record.tasks.append(state.record)
            yield self.sim.timeout(self.task_overhead)

            # -- shuffle ------------------------------------------------
            # A reduce task copies every map's output slice; with a
            # per-transfer latency (SLOW SHUFFLE, §V-D) the copies
            # serialize over the reducer's copier-thread pool.
            waits = [self.sim.process(
                self._fetch(state, src, nbytes),
                name=f"r{task.task_id}.fetch{src}")
                for src, nbytes in self._source_bytes(task).items()]
            if self.shuffle_latency > 0:
                transfers = (len(plan.map_tasks)
                             + len(plan.reused_map_outputs))
                copiers = self.cluster.spec.node.reduce_parallel_copies
                waits.append(self.sim.timeout(
                    self.shuffle_latency * transfers / copiers))
            yield AllOf(self.sim, waits)

            # -- merge + UDF ---------------------------------------------
            if input_size > 0:
                merge = self._transfer(state, input_size, [node.disk],
                                       label=f"r{task.task_id}.merge")
                try:
                    yield merge.done
                except SimulationError:
                    # own-disk failure under the merge read (disk swap):
                    # the spilled shuffle data is gone.  Park the attempt —
                    # the already-scheduled failure handler restarts it
                    # (hadoop mode) or cancels the run (abort mode).
                    self._task_stalled(state)
                    return
            yield self.sim.timeout(input_size / self.cpu_reduce)

            # -- output write (retried on replica-target death) -----------
            while True:
                try:
                    yield from self._write_output(state, output_size)
                    break
                except SimulationError:
                    if self._abortive():
                        self._task_stalled(state)
                        return
            self._reduce_done(state)
        except Interrupt:
            self._task_killed(state)
        except JobFailed as exc:
            self._fatal(exc)
        finally:
            if slot_held and node.alive:
                node.reducer_slots.release()

    def _output_file_name(self, task: ReduceTaskSpec) -> str:
        return (f"job{self.plan.logical_index}"
                f"/part-{task.partition:05d}"
                f".{task.split_index}of{task.n_splits}"
                f".run{self.ordinal}")

    def _write_output(self, state: _TaskState, output_size: float
                      ) -> Generator:
        task: ReduceTaskSpec = state.spec
        name = self._output_file_name(task)
        tags = {"job_index": self.plan.logical_index,
                "partition": task.partition, "kind": "reduce-output"}
        if self.dfs.exists(name):  # leftover from a failed attempt
            self.dfs.delete(name)
        placement = SpreadPlacement() if self.plan.spread_output else None
        state.output_file = name
        done = self.dfs.write(name, output_size, writer=state.node,
                              replication=self.plan.output_replication,
                              tags=tags, placement=placement,
                              flow_sink=state.flows)
        yield done
        if self.plan.spread_output:
            meta = self.dfs.meta(name)
            state.output_pieces = [(b.replicas[0], b.size)
                                   for b in meta.blocks]

    def _source_bytes(self, task: ReduceTaskSpec) -> dict[int, float]:
        """Bytes this reduce task fetches from each source node."""
        plan = self.plan
        per_source: dict[int, float] = {}
        for state in self.maps.values():
            spec: MapTaskSpec = state.spec
            per_source[state.node] = per_source.get(state.node, 0.0) + \
                spec.slice_size(plan.n_partitions, task.fraction)
        for reused in plan.reused_map_outputs:
            per_source[reused.node] = per_source.get(reused.node, 0.0) + \
                reused.slice_size(plan.n_partitions, task.fraction)
        return {s: b for s, b in per_source.items() if b > 0}

    def _fetch(self, owner: _TaskState, src: int,
               nbytes: float) -> Generator:
        """Fetch ``nbytes`` of map output from source node ``src``.

        Survives source death by waiting for the source's maps to be
        re-executed and re-fetching from their new homes (recursively, so
        chained failures during recovery are handled too)."""
        dst = owner.node
        chunks = self.board.chunks
        per_chunk = nbytes / chunks
        chunk = 0
        while chunk < chunks:
            try:
                yield self.board.ready(src, chunk)
                flow = self._transfer(
                    owner, per_chunk, self.cluster.shuffle_path(src, dst),
                    label=f"shuf:{src}->{dst}.{chunk}")
                yield flow.done
                chunk += 1
            except SimulationError:
                if self._abortive() or not self.cluster.nodes[dst].alive:
                    return  # job cancelled / we ourselves died; park quietly
                mapping_event = self._redo_mapping(src)
                if mapping_event.triggered:
                    # The mapping resolved before this failure, so its
                    # info may be stale (the target has since died too).
                    # Following it costs no sim time, and chains of stale
                    # mappings can cycle — back off first, Hadoop-fetch-
                    # retry style, so pending declare timers fire and
                    # refresh the redo state before we follow it.
                    yield self.sim.timeout(
                        self.cluster.spec.failure_detection_timeout / 10)
                    if self._abortive() \
                            or not self.cluster.nodes[dst].alive:
                        return
                    mapping_event = self._redo_mapping(src)
                mapping = yield mapping_event
                remaining = nbytes - chunk * per_chunk
                subfetch = [self.sim.process(
                    self._fetch(owner, new_src, remaining * frac),
                    name=f"refetch:{new_src}->{dst}")
                    for new_src, frac in mapping.items()]
                yield AllOf(self.sim, subfetch)
                return

    def _reduce_done(self, state: _TaskState) -> None:
        state.status = "done"
        state.record.end = self.sim.now
        state.record.outcome = "done"
        self.reduces_left -= 1
        self._check_completion()

    # ------------------------------------------------------------- failures
    def _abortive(self) -> bool:
        return self.plan.recovery_mode == "abort" and bool(self.dead_nodes)

    def _task_killed(self, state: _TaskState) -> None:
        state.status = "dead"
        self._abort_task_flows(state)
        if state.record is not None and state.record.end is None:
            state.record.end = self.sim.now
            state.record.outcome = "killed"

    def _task_stalled(self, state: _TaskState) -> None:
        """The task saw an I/O failure a pending failure handler will deal
        with (abort mode cancels the whole run; hadoop mode re-launches the
        task), so just park the attempt."""
        state.status = "dead"
        self._abort_task_flows(state)
        if state.record is not None and state.record.end is None:
            state.record.end = self.sim.now
            state.record.outcome = "failed"

    def _fatal(self, exc: Exception) -> None:
        if not self.completion_event.triggered:
            self.completion_event.fail(exc)

    def _check_completion(self) -> None:
        if self.maps_left == 0 and self.reduces_left == 0 \
                and not self.completion_event.triggered:
            self.completion_event.succeed()

    def _watch_deaths(self) -> None:
        for node in self.cluster.nodes:
            if node.alive:
                node.on_death(self._on_node_death)
                node.on_disk_loss(self._on_disk_loss)
                self._death_watched.append(node)

    def _unwatch_deaths(self) -> None:
        for node in self._death_watched:
            node.remove_death_watcher(self._on_node_death)
            node.remove_disk_watcher(self._on_disk_loss)
        self._death_watched.clear()

    def _on_node_death(self, node: Node) -> None:
        self.dead_nodes.append(node.node_id)
        self.sim.process(self._handle_death(node.node_id),
                         name=f"death-handler-{node.node_id}")

    def _on_disk_loss(self, node: Node) -> None:
        """A node lost its data disk but keeps computing.  The master
        experiences this like a TaskTracker death — the node's map outputs
        are gone, its tasks must re-execute — except the node itself stays
        schedulable.  (Within the detection window, redo maps may still see
        the node listed among their input replicas: a deliberate
        approximation of reads racing a disk swap.)"""
        self.dead_nodes.append(node.node_id)
        self.sim.process(self._handle_death(node.node_id),
                         name=f"disk-handler-{node.node_id}")

    def _handle_death(self, node_id: int) -> Generator:
        yield self.sim.timeout(
            self.cluster.detector.declare_delay(self.sim.now))
        if self.finished or self.completion_event.triggered:
            return
        self.declare_death(node_id)

    def declare_death(self, node_id: int) -> None:
        """The master declared the failure: abort or recover the run."""
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "failure-detected", tid=node_id,
                           node=node_id, job=self.ordinal,
                           mode=self.plan.recovery_mode)
        if self.plan.recovery_mode == "abort":
            self._cancel_all(node_id)
            return
        self._recover_hadoop(node_id)

    def _cancel_all(self, node_id: int) -> None:
        """Abort mode: tear the whole run down and discard partial output."""
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "job-cancelled", tid=node_id,
                           job=self.ordinal, dead_nodes=list(self.dead_nodes))
        for state in (list(self.maps.values()) + list(self.reduces.values())
                      + list(self._spec_attempts.values())):
            if state.proc is not None and state.proc.is_alive:
                state.proc.interrupt("job aborted")
            self._abort_task_flows(state)
        for state in self.reduces.values():
            if state.output_file and self.dfs.exists(state.output_file):
                self.dfs.delete(state.output_file)
                state.output_file = None
        self._fatal(JobAborted(self.plan, list(self.dead_nodes)))

    def _recover_hadoop(self, node_id: int) -> None:
        """Hadoop-style within-job recovery after failure detection."""
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "hadoop-recovery", tid=node_id,
                           job=self.ordinal, node=node_id)
        if not self.cluster.alive_ids():
            self._fatal(JobFailed("no alive nodes left to recover on"))
            return
        self.board.fail_source(node_id)
        if self.cluster.nodes[node_id].alive:
            # disk loss, not a death: in-flight fetches just failed over to
            # the redo path; the node itself may serve redo outputs again
            self.board.revive_source(node_id)
        # 1. Re-execute every map task that was assigned to the dead node
        #    (completed outputs lived on its local disk and are gone).
        redo_ids: set[int] = set()
        for tid, state in self.maps.items():
            if state.node != node_id:
                continue
            if state.status == "done":
                self.maps_left += 1  # it must complete again
            if state.proc is not None and state.proc.is_alive:
                state.proc.interrupt("node died")
            self._abort_task_flows(state)
            redo_ids.add(tid)
        if redo_ids:
            event = self._redo_events.get(node_id)
            if event is None or event.triggered:
                event = self._redo_events[node_id] = Event(self.sim)
            self._redo_pending[node_id] = set(redo_ids)
            alive = self.cluster.alive_ids()
            for i, tid in enumerate(sorted(redo_ids)):
                state = self.maps[tid]
                task: MapTaskSpec = state.spec
                local = [n for n in task.input.locations
                         if self.cluster.nodes[n].alive]
                state.node = local[0] if local else alive[i % len(alive)]
                # the new home may be a node that died earlier and came
                # back (transient rejoin): make the board serve it again,
                # else fetches directed here by the redo mapping fail
                # forever against a permanently-dead source entry
                self.board.revive_source(state.node)
                state.status = "pending"
                state.is_redo = True
                state.redo_origins.add(node_id)
                self._launch(state, is_map=True)

        # 2. Restart unfinished reduce tasks that sat on the dead node.
        alive = self.cluster.alive_ids()
        k = 0
        for state in self.reduces.values():
            if state.node != node_id or state.status == "done":
                continue
            if state.proc is not None and state.proc.is_alive:
                state.proc.interrupt("node died")
            self._abort_task_flows(state)
            if state.record is not None and state.record.end is None:
                state.record.end = self.sim.now
                state.record.outcome = "killed"
            state.node = alive[k % len(alive)]
            k += 1
            state.status = "pending"
            self._launch(state, is_map=False)

    def _redo_mapping(self, src: int) -> Event:
        """Event succeeding with {new_node: fraction} once the dead source's
        maps have been re-executed."""
        event = self._redo_events.get(src)
        if event is None:
            event = self._redo_events[src] = Event(self.sim)
        return event

    def _redo_map_done(self, state: _TaskState) -> None:
        tid = state.spec.task_id
        for origin in list(self._redo_pending):
            pending = self._redo_pending[origin]
            pending.discard(tid)
            if pending:
                continue
            ids = [t for t, st in self.maps.items()
                   if origin in st.redo_origins]
            nodes = Counter(self.maps[t].node for t in ids)
            total = sum(nodes.values())
            mapping = {n: c / total for n, c in nodes.items()}
            # every alive mapping target must be fetchable before waiting
            # reducers are resumed (a target that was a dead source and
            # rejoined would otherwise bounce fetches back to its own
            # stale redo mapping, looping forever)
            for n in mapping:
                if self.cluster.nodes[n].alive:
                    self.board.revive_source(n)
            event = self._redo_events.get(origin)
            if event is not None and not event.triggered:
                event.succeed(mapping)
            del self._redo_pending[origin]
