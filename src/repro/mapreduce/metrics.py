"""Per-task and per-job timing collection.

The evaluation figures need, beyond total chain runtimes: per-job durations
(Figs. 10, 11, 13, 14 build speed-ups from them) and per-task duration
distributions (Fig. 12 plots mapper running-time CDFs during recomputation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np


@dataclass
class TaskRecord:
    """Execution record of one task attempt."""

    job_ordinal: int
    job_kind: str           # initial | recompute | rerun
    task_type: str          # map | reduce
    task_id: int
    node: int
    start: float
    end: Optional[float] = None
    bytes_in: float = 0.0
    bytes_out: float = 0.0
    outcome: str = "running"  # running | done | failed | killed

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("task still running")
        return self.end - self.start


@dataclass
class JobRecord:
    """Execution record of one job run."""

    ordinal: int            # start-order ID (paper's job numbering, §V-A)
    logical_index: int
    name: str
    kind: str
    start: float
    end: Optional[float] = None
    outcome: str = "running"  # running | done | aborted
    tasks: list[TaskRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError("job still running")
        return self.end - self.start

    def task_durations(self, task_type: str,
                       outcome: str = "done") -> np.ndarray:
        return np.array([t.duration for t in self.tasks
                         if t.task_type == task_type and t.outcome == outcome])


@dataclass
class RunMetrics:
    """All records of one multi-job chain execution."""

    jobs: list[JobRecord] = field(default_factory=list)
    failures: list[tuple[float, int]] = field(default_factory=list)
    #: (time, node, latency) of each non-instant failure detection
    detections: list[tuple[float, int, float]] = field(default_factory=list)
    #: (time, node) of each transient-failure rejoin
    rejoins: list[tuple[float, int]] = field(default_factory=list)

    # -- recording -------------------------------------------------------
    def open_job(self, ordinal: int, logical_index: int, name: str,
                 kind: str, now: float) -> JobRecord:
        record = JobRecord(ordinal, logical_index, name, kind, now)
        self.jobs.append(record)
        return record

    def record_failure(self, now: float, node_id: int) -> None:
        self.failures.append((now, node_id))

    def record_detection(self, now: float, node_id: int,
                         latency: float) -> None:
        self.detections.append((now, node_id, latency))

    def record_rejoin(self, now: float, node_id: int) -> None:
        self.rejoins.append((now, node_id))

    # -- queries -----------------------------------------------------------
    @property
    def total_runtime(self) -> float:
        """Wall-clock makespan over finished jobs (0.0 when none finished,
        e.g. a chain aborted during its first job)."""
        if not self.jobs:
            return 0.0
        ends = [j.end for j in self.jobs if j.end is not None]
        if not ends:
            return 0.0
        return max(ends) - min(j.start for j in self.jobs)

    @property
    def n_jobs_started(self) -> int:
        return len(self.jobs)

    def completed_jobs(self) -> list[JobRecord]:
        return [j for j in self.jobs if j.outcome == "done"]

    def jobs_of_kind(self, kind: str) -> list[JobRecord]:
        return [j for j in self.jobs if j.kind == kind]

    def job_durations(self, kind: Optional[str] = None) -> np.ndarray:
        jobs = self.jobs if kind is None else self.jobs_of_kind(kind)
        return np.array([j.duration for j in jobs if j.outcome == "done"])

    def mapper_durations(self, kinds: Iterable[str] = ("recompute",)
                         ) -> np.ndarray:
        """Pooled mapper durations over jobs of the given kinds (Fig. 12)."""
        kinds = set(kinds)
        out: list[float] = []
        for job in self.jobs:
            if job.kind in kinds:
                out.extend(job.task_durations("map"))
        return np.array(out)

    def reducer_durations(self, kinds: Iterable[str] = ("recompute",)
                          ) -> np.ndarray:
        kinds = set(kinds)
        out: list[float] = []
        for job in self.jobs:
            if job.kind in kinds:
                out.extend(job.task_durations("reduce"))
        return np.array(out)

    def mean_initial_job_duration(self) -> float:
        durations = self.job_durations("initial")
        if durations.size == 0:
            raise ValueError("no completed initial jobs")
        return float(durations.mean())

    def summary(self) -> dict:
        """Compact dict for experiment reporting."""
        return {
            "total_runtime": self.total_runtime,
            "jobs_started": self.n_jobs_started,
            "jobs_completed": len(self.completed_jobs()),
            "recomputations": len(self.jobs_of_kind("recompute")),
            "failures": list(self.failures),
            "rejoins": len(self.rejoins),
            "mean_detection_latency": (
                float(np.mean([d[2] for d in self.detections]))
                if self.detections else 0.0),
        }
