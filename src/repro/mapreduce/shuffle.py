"""Shuffle bookkeeping: when may a reducer fetch from which source node?

Hadoop reducers copy each mapper's output as it completes, so the first
reducer wave's shuffle overlaps the map phase (§II, §IV-B1 of the paper).
We model the transfer at node granularity: the bytes a reduce task needs
from source node *s* are fetched in ``chunks`` pieces, chunk *c* becoming
available once *s* has completed a ``(c+1)/chunks`` fraction of its map
tasks.  With one chunk per map wave this closely tracks real availability;
at large scale (DCO: 60x60 node pairs x 80 waves) the chunk count is capped
to keep flow counts tractable, which conservatively serializes shuffle after
the map phase by a small amount — the same amount for every strategy.

Persisted map outputs reused by a recomputation run (§IV-A) are available
from simulation time zero: the board marks their source nodes ready
immediately.
"""

from __future__ import annotations

from repro.simcore import Event, SimulationError, Simulator


class SourceLost(SimulationError):
    """A shuffle source node died before (or while) serving map outputs."""


class ShuffleBoard:
    """Tracks per-source map-output availability for one job run."""

    def __init__(self, sim: Simulator, chunks: int = 1):
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        self.sim = sim
        self.chunks = chunks
        # source node -> (completed map count, total map count)
        self._progress: dict[int, list[int]] = {}
        # (source node, chunk index) -> Event
        self._ready: dict[tuple[int, int], Event] = {}
        self._dead_sources: set[int] = set()

    # -- registration ----------------------------------------------------
    def register_source(self, node: int, n_map_tasks: int) -> None:
        """Declare that ``node`` will run ``n_map_tasks`` maps (additive)."""
        entry = self._progress.setdefault(node, [0, 0])
        entry[1] += n_map_tasks
        if n_map_tasks == 0:
            self._check(node)

    def register_reused_source(self, node: int) -> None:
        """Persisted outputs on ``node``: everything available immediately."""
        if node not in self._progress:
            self._progress[node] = [0, 0]
            self._check(node)

    def map_completed(self, node: int) -> None:
        entry = self._progress[node]
        entry[0] += 1
        self._check(node)

    def fail_source(self, node: int) -> None:
        """The node died: fail every pending readiness event for it, and
        make future ``ready()`` calls for it fail immediately.  Fetchers
        catch the failure and switch to the redo path."""
        self._dead_sources.add(node)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "shuffle-source-lost", tid=node,
                           node=node)
        for (src, _chunk), ev in self._ready.items():
            if src == node and not ev.triggered:
                ev.defused = True
                ev.fail(SourceLost(f"map source node {node} died"))

    def revive_source(self, node: int) -> None:
        """The source is serving again — after a disk loss (the node never
        stopped computing, only its stored map outputs vanished) or when a
        rejoined transient node becomes a redo target.  Cached failed
        readiness events are dropped so re-fetches wait on fresh ones; the
        progress counter restarts (redo maps are not re-registered, so —
        like every redo target — the node counts as immediately ready)."""
        if node not in self._dead_sources:
            return
        self._dead_sources.discard(node)
        for key in [k for k, ev in self._ready.items()
                    if k[0] == node and ev.triggered and not ev.ok]:
            del self._ready[key]
        self._progress[node] = [0, 0]

    # -- queries -----------------------------------------------------------
    def ready(self, node: int, chunk: int) -> Event:
        """Event that fires when ``chunk`` of ``node``'s outputs is ready.

        Fails (immediately or later) if the source node dies first."""
        if not 0 <= chunk < self.chunks:
            raise ValueError(f"chunk {chunk} out of range")
        key = (node, chunk)
        ev = self._ready.get(key)
        if ev is None:
            ev = self._ready[key] = Event(self.sim)
            if node in self._dead_sources:
                ev.defused = True
                ev.fail(SourceLost(f"map source node {node} is dead"))
            else:
                self._maybe_fire(node, chunk)
        return ev

    # -- internals ---------------------------------------------------------
    def _fraction_done(self, node: int) -> float:
        done, total = self._progress.get(node, (0, 0))
        return 1.0 if total == 0 else done / total

    def _check(self, node: int) -> None:
        for chunk in range(self.chunks):
            self._maybe_fire(node, chunk)

    def _maybe_fire(self, node: int, chunk: int) -> None:
        ev = self._ready.get((node, chunk))
        if ev is None or ev.triggered:
            return
        needed = (chunk + 1) / self.chunks
        if self._fraction_done(node) >= needed - 1e-12:
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.instant("phase", "shuffle-chunk-ready", tid=node,
                               node=node, chunk=chunk)
            ev.succeed()


def pick_chunk_count(n_sources: int, n_reduce_tasks: int, map_waves: int,
                     flow_budget: int = 20_000) -> int:
    """Choose the shuffle chunk granularity for a job run.

    One chunk per map wave when the resulting flow count fits the budget,
    otherwise as many chunks as fit (at least 1).
    """
    if map_waves < 1:
        map_waves = 1
    pairs = max(1, n_sources * n_reduce_tasks)
    return max(1, min(map_waves, flow_budget // pairs))
