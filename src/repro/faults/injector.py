"""Drives a :class:`~repro.faults.model.FaultModel` against a cluster.

Generalizes :class:`repro.cluster.failures.FailureInjector` (kept for the
paper's exact protocol and its tests).  Compatibility is a hard
requirement: for a model containing only planned fail-stop events, this
injector arms the same timers and draws victims from the same
``"failure-injector"`` RNG stream with the same draw sequence, so legacy
FAIL plans reproduce byte-identical runs.

Planned events trigger on job-start ordinals (armed when the middleware
reports a job start) or at absolute times (armed at construction).  The
stochastic arrival process — exponential gaps with the model's MTBF —
runs as its own simulation process, draws from a *separate* RNG stream
("fault-arrivals", or a dedicated seed) so it never perturbs placement or
victim-selection streams, and is capped at ``max_stochastic`` events so
every stochastic run terminates.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

import numpy as np

from repro.cluster.topology import Cluster, Node
from repro.faults.model import FaultEvent, FaultModel

#: callback signature: (node, event) at the instant the fault lands
FaultCallback = Callable[[Node, FaultEvent], None]


class FaultInjector:
    """Arms fault timers and strikes victims per the fault model."""

    def __init__(self, cluster: Cluster, model: Optional[FaultModel] = None,
                 on_fault: Optional[FaultCallback] = None,
                 on_revive: Optional[FaultCallback] = None,
                 on_slow: Optional[FaultCallback] = None):
        self.cluster = cluster
        self.model = model or FaultModel()
        self.on_fault = on_fault
        self.on_revive = on_revive
        self.on_slow = on_slow
        #: (time, node_id) of every node kill, in order (fail-stop,
        #: transient and rack events; disk losses do not kill the node)
        self.killed: list[tuple[float, int]] = []
        #: (time, kind, node_id) of every injected fault, in order
        self.faults: list[tuple[float, str, int]] = []
        #: node_id -> slowdown factor for struck ``slow`` events; the node
        #: stays alive and is never handed to on_fault (a straggler is not
        #: a loss — filing it as one would trigger a cascade)
        self.slowed: dict[int, float] = {}
        self._rng = cluster.seeds.stream("failure-injector")
        self._stopped = False
        self._pending: dict[int, list[FaultEvent]] = {}
        for ev in self.model.events:
            if ev.at_job is not None:
                self._pending.setdefault(ev.at_job, []).append(ev)
            else:
                self._arm_at_time(ev)
        if self.model.stochastic:
            self._arrival_rng = (
                np.random.default_rng(self.model.seed)
                if self.model.seed is not None
                else cluster.seeds.stream("fault-arrivals"))
            cluster.sim.process(self._arrival_loop(), name="fault-arrivals")

    # -- arming ----------------------------------------------------------
    def notify_job_start(self, job_ordinal: int) -> None:
        """Called by the middleware whenever a job (any run) starts."""
        for ev in self._pending.pop(job_ordinal, []):
            self._arm(ev, ev.offset)

    def _arm_at_time(self, ev: FaultEvent) -> None:
        self._arm(ev, max(0.0, ev.at_time - self.cluster.sim.now))

    def _arm(self, ev: FaultEvent, delay: float) -> None:
        timer = self.cluster.sim.timeout(delay)
        timer.add_callback(lambda _t, ev=ev: self._fire(ev))

    def stop(self) -> None:
        """Stop injecting (chain finished): armed timers become no-ops and
        the arrival process winds down, letting the simulation drain."""
        self._stopped = True

    @property
    def outstanding(self) -> int:
        """Planned job-triggered events not yet armed."""
        return sum(len(v) for v in self._pending.values())

    # -- stochastic arrivals ---------------------------------------------
    def _arrival_loop(self) -> Generator:
        model = self.model
        rng = self._arrival_rng
        sim = self.cluster.sim
        for _ in range(model.max_stochastic):
            gap = float(rng.exponential(model.mtbf))
            yield sim.timeout(max(gap, 1e-3))
            if self._stopped:
                return
            kinds = model.mtbf_kinds
            kind = kinds[int(rng.integers(len(kinds)))] if len(kinds) > 1 \
                else kinds[0]
            downtime = model.mtbf_downtime if kind == "transient" else 0.0
            self._fire(FaultEvent(
                kind=kind, at_time=sim.now, downtime=downtime,
                wipe=model.mtbf_wipe if kind == "transient" else False))

    # -- firing ----------------------------------------------------------
    def _fire(self, ev: FaultEvent) -> None:
        # Planned events still land after the chain finishes (the legacy
        # injector behaves the same way); only stochastic arrivals and
        # revives honour stop().
        if ev.kind == "rack":
            self._fire_rack(ev)
            return
        node_id = ev.node_id
        if node_id is None:
            candidates = self.cluster.alive_ids()
            if not candidates:
                return
            node_id = int(candidates[self._rng.integers(len(candidates))])
        node = self.cluster.nodes[node_id]
        if not node.alive:  # pick a different victim than an already-dead one
            candidates = self.cluster.alive_ids()
            if not candidates:
                return
            node_id = int(candidates[self._rng.integers(len(candidates))])
            node = self.cluster.nodes[node_id]
        self._strike(node, ev)

    def _fire_rack(self, ev: FaultEvent) -> None:
        rack = ev.rack
        if rack is None:
            racks = self.cluster.rack_ids()
            rack = int(racks[self._rng.integers(len(racks))])
        victims = [n for n in self.cluster.nodes
                   if n.rack == rack and n.alive]
        for node in victims:
            self._strike(node, ev)

    def _strike(self, node: Node, ev: FaultEvent) -> None:
        now = self.cluster.sim.now
        self.faults.append((now, ev.kind, node.node_id))
        if ev.kind == "slow":
            self.slowed[node.node_id] = max(
                self.slowed.get(node.node_id, 1.0), ev.factor)
            if self.on_slow is not None:
                self.on_slow(node, ev)
            return
        if ev.kind == "disk-loss":
            self.cluster.lose_disk(node.node_id)
        else:
            self.killed.append((now, node.node_id))
            self.cluster.kill_node(node.node_id)
            if ev.transient:
                timer = self.cluster.sim.timeout(ev.downtime)
                timer.add_callback(
                    lambda _t, n=node, e=ev: self._revive(n, e))
        if self.on_fault is not None:
            self.on_fault(node, ev)

    def _revive(self, node: Node, ev: FaultEvent) -> None:
        if self._stopped or node.alive:
            return
        self.cluster.revive_node(node.node_id)
        if self.on_revive is not None:
            self.on_revive(node, ev)
