"""The generalized fault model.

The paper's protocol (§V-A) only knows planned fail-stop kills at job
ordinals ("FAIL 7,14").  :class:`FaultModel` generalizes it to a set of
planned :class:`FaultEvent` plus an optional seeded Poisson (MTBF-driven)
arrival process, covering the failure classes studied by the resilience
literature the reproduction draws on:

``fail-stop``
    The paper's event: the node dies and never returns.
``transient``
    Crash-recover: the node dies and rejoins ``downtime`` seconds later.
    Its local data (DFS replicas, persisted map outputs) survives the
    outage unless ``wipe`` is set (disk replaced during the repair).
``disk-loss``
    The data disk fails and is replaced empty; the node keeps computing.
``rack``
    Correlated failure of every alive node in one rack (a rack switch or
    PDU event); with a ``downtime`` it is a transient rack outage whose
    nodes rejoin with their data intact.
``slow``
    A straggler, not a failure: the node stays alive and keeps
    heartbeating but its task loop and shuffle serving run at
    ``1/factor`` speed.  A slow node must never be declared lost — the
    runtimes handle it with suspicion + speculation instead of recovery.

Spec grammar (the CLI's ``--faults``), clauses separated by ``;``::

    kill@job2                 fail-stop 15 s into started-job 2 (paper)
    kill@job2+5:node=3        explicit offset and victim
    transient@job2:down=45    crash-recover, rejoins 45 s later, data intact
    transient@t120:down=60,wipe    at absolute time, disk wiped on return
    disk@job3+10              disk-loss during job 3
    rack@t300:rack=1,down=30  rack 1 power-cycles for 30 s
    slow@2:10                 node 2 runs 10x slow from chain start
    slow@job3+5:node=1,factor=4    straggler onset mid-chain
    slow@t30:factor=2         unpinned victim drawn by the seeded RNG
    mtbf=600                  Poisson fail-stop arrivals, mean 600 s
    mtbf=600:transient,kill,down=60,max=40    mixed stochastic kinds

The legacy "FAIL 7,14" notation is still accepted and maps to the paper's
exact protocol (second kill 15 s after the first when X == Y).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Optional

KINDS = ("fail-stop", "transient", "disk-loss", "rack", "slow")

_KIND_ALIASES = {
    "kill": "fail-stop", "fail-stop": "fail-stop", "failstop": "fail-stop",
    "transient": "transient", "crash-recover": "transient",
    "disk": "disk-loss", "disk-loss": "disk-loss",
    "rack": "rack",
    "slow": "slow", "straggler": "slow",
}

#: the paper's FAIL notation: an optional FAIL prefix, then ordinals
_LEGACY_RE = re.compile(r"(?i:fail)?[\s\d,]+")

#: default downtime for transient events that do not specify one
DEFAULT_DOWNTIME = 60.0


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    Triggered either ``offset`` seconds after started-job ``at_job``
    begins (the paper's job-ordinal trigger) or at absolute simulation
    time ``at_time``.  ``node_id`` / ``rack`` pin the victim; when absent
    the injector draws a random alive victim.
    """

    kind: str = "fail-stop"
    at_job: Optional[int] = None
    at_time: Optional[float] = None
    offset: float = 15.0
    node_id: Optional[int] = None
    rack: Optional[int] = None
    downtime: float = 0.0
    wipe: bool = False
    #: slowdown multiplier for ``slow`` events (the node runs at 1/factor)
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if (self.at_job is None) == (self.at_time is None):
            raise ValueError("exactly one of at_job/at_time must be set")
        if self.at_job is not None and self.at_job < 1:
            raise ValueError("job ordinals are 1-based")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be >= 0")
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        if self.downtime < 0:
            raise ValueError("downtime must be >= 0")
        if self.kind == "transient" and self.downtime <= 0:
            raise ValueError("transient faults need a positive downtime")
        if self.kind == "disk-loss" and self.downtime:
            raise ValueError("disk-loss keeps the node up; downtime does "
                             "not apply")
        if self.kind == "slow":
            if self.factor <= 1.0:
                raise ValueError("slow faults need factor > 1 (a 1x-slow "
                                 "node is healthy)")
            if self.downtime or self.wipe:
                raise ValueError("slow keeps the node up with its data; "
                                 "downtime/wipe do not apply")
            if self.rack is not None:
                raise ValueError("slow events pin a node, not a rack")
        elif self.factor != 1.0:
            raise ValueError("factor applies to slow faults only")

    @property
    def transient(self) -> bool:
        """Whether the killed node(s) rejoin after ``downtime``."""
        return self.downtime > 0

    @property
    def data_survives(self) -> bool:
        """Whether local data is intact when the node rejoins."""
        return self.transient and not self.wipe


@dataclass
class FaultModel:
    """Planned fault events plus an optional stochastic arrival process."""

    events: list[FaultEvent] = field(default_factory=list)
    #: mean time between stochastic failures (None disables arrivals)
    mtbf: Optional[float] = None
    #: kinds the arrival process draws from, uniformly
    mtbf_kinds: tuple[str, ...] = ("fail-stop",)
    #: downtime applied to stochastic transient events
    mtbf_downtime: float = DEFAULT_DOWNTIME
    #: whether stochastic transient events wipe the rejoining disk
    mtbf_wipe: bool = False
    #: hard cap on stochastic arrivals — bounds the event count so every
    #: stochastic run terminates
    max_stochastic: int = 64
    #: dedicated seed for the arrival process; None derives it from the
    #: run's root seed (the "fault-arrivals" stream)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError("mtbf must be positive")
        for kind in self.mtbf_kinds:
            if kind not in ("fail-stop", "transient", "disk-loss"):
                raise ValueError(f"stochastic kind {kind!r} not supported "
                                 "(rack and slow events must be planned)")
        if self.mtbf_downtime <= 0:
            raise ValueError("mtbf_downtime must be positive")
        if self.max_stochastic < 1:
            raise ValueError("max_stochastic must be >= 1")
        self.events = self._merge_slow(self.events)

    @staticmethod
    def _merge_slow(events: list[FaultEvent]) -> list[FaultEvent]:
        """Collapse duplicate pinned slow events per node: identical
        factors merge (keep the first), conflicting factors are a plan
        authoring error — one throttle per node."""
        merged: list[FaultEvent] = []
        factor_for: dict[int, float] = {}
        for ev in events:
            if ev.kind == "slow" and ev.node_id is not None:
                seen = factor_for.get(ev.node_id)
                if seen is not None:
                    if seen != ev.factor:
                        raise ValueError(
                            f"conflicting slow factors for node "
                            f"{ev.node_id}: {seen:g}x vs {ev.factor:g}x "
                            "— give each node at most one slow event")
                    continue
                factor_for[ev.node_id] = ev.factor
            merged.append(ev)
        return merged

    # -- views -----------------------------------------------------------
    @property
    def stochastic(self) -> bool:
        return self.mtbf is not None

    @property
    def has_transient(self) -> bool:
        """Whether any event may bring a killed node back (the lineage
        layer then keeps lost-file metadata for rejoin revalidation)."""
        if any(ev.transient for ev in self.events):
            return True
        return self.stochastic and "transient" in self.mtbf_kinds

    @property
    def n_planned(self) -> int:
        return len(self.events)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_plan(cls, plan) -> "FaultModel":
        """Convert a legacy :class:`repro.cluster.failures.FailurePlan`."""
        return cls([FaultEvent(kind="fail-stop", at_job=ev.at_job,
                               offset=ev.offset, node_id=ev.node_id)
                    for ev in plan.events])

    @classmethod
    def parse(cls, spec: str) -> "FaultModel":
        """Parse a ``--faults`` spec (grammar in the module docstring)."""
        text = spec.strip()
        if not text:
            raise ValueError("empty fault spec")
        if _LEGACY_RE.fullmatch(text):
            from repro.cluster.failures import FailurePlan
            return cls.from_plan(FailurePlan.parse(text))
        events: list[FaultEvent] = []
        mtbf_kw: Optional[dict] = None
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.lower().startswith("mtbf"):
                if mtbf_kw is not None:
                    raise ValueError("at most one mtbf clause allowed")
                mtbf_kw = cls._parse_mtbf(clause)
            else:
                events.append(cls._parse_event(clause))
        return cls(events, **(mtbf_kw or {}))

    @staticmethod
    def _parse_event(clause: str) -> FaultEvent:
        head, _, opts = clause.partition(":")
        kind_s, sep, trig = head.partition("@")
        if not sep:
            raise ValueError(
                f"fault clause {clause!r} needs a trigger: "
                f"kind@job<N>[+<OFFSET>] or kind@t<SECONDS>")
        kind = _KIND_ALIASES.get(kind_s.strip().lower())
        if kind is None:
            raise ValueError(f"unknown fault kind {kind_s.strip()!r} in "
                             f"{clause!r}; known: {sorted(_KIND_ALIASES)}")
        trig = trig.strip().lower()
        at_job = at_time = None
        offset = 15.0
        kwargs: dict = {"node_id": None, "rack": None,
                        "downtime": 0.0, "wipe": False, "factor": None}
        try:
            if trig.startswith("job"):
                body = trig[3:]
                if "+" in body:
                    ordinal, _, off = body.partition("+")
                    offset = float(off)
                else:
                    ordinal = body
                at_job = int(ordinal)
            elif trig.startswith("t"):
                at_time = float(trig[1:])
            elif kind == "slow" and trig.isdigit():
                # shorthand: slow@<node>:<factor> throttles from chain start
                kwargs["node_id"] = int(trig)
                at_time = 0.0
            else:
                raise ValueError
        except ValueError:
            expected = "job<N>[+<OFFSET>] or t<SECONDS>"
            if kind == "slow":
                expected += " or the slow@<NODE>:<FACTOR> shorthand"
            raise ValueError(f"cannot parse trigger {trig!r} in {clause!r}; "
                             f"expected {expected}") from None
        for opt in opts.split(","):
            opt = opt.strip()
            if not opt:
                continue
            key, _, val = opt.partition("=")
            key, val = key.strip().lower(), val.strip()
            if key == "node":
                kwargs["node_id"] = int(val)
            elif key == "rack":
                kwargs["rack"] = int(val)
            elif key in ("down", "downtime"):
                kwargs["downtime"] = float(val)
            elif key == "wipe":
                kwargs["wipe"] = val.lower() in ("", "1", "true", "yes")
            elif key == "factor" or key == "x":
                kwargs["factor"] = float(val)
            elif kind == "slow" and not val and _is_number(key):
                # bare factor in the slow@<node>:<factor> shorthand
                kwargs["factor"] = float(key)
            else:
                raise ValueError(f"unknown fault option {key!r} in "
                                 f"{clause!r}")
        if kind == "transient" and kwargs["downtime"] <= 0:
            kwargs["downtime"] = DEFAULT_DOWNTIME
        if kind == "slow" and kwargs["factor"] is None:
            raise ValueError(f"slow clause {clause!r} needs a factor: "
                             "slow@<NODE>:<FACTOR> or factor=<F>")
        if kwargs["factor"] is None:
            kwargs["factor"] = 1.0
        return FaultEvent(kind=kind, at_job=at_job, at_time=at_time,
                          offset=offset, **kwargs)

    @staticmethod
    def _parse_mtbf(clause: str) -> dict:
        head, _, opts = clause.partition(":")
        _, sep, val = head.partition("=")
        if not sep:
            raise ValueError(f"mtbf clause {clause!r} needs a value: "
                             f"mtbf=<SECONDS>")
        kw: dict = {"mtbf": float(val)}
        kinds: list[str] = []
        for opt in opts.split(","):
            opt = opt.strip()
            if not opt:
                continue
            key, _, oval = opt.partition("=")
            key, oval = key.strip().lower(), oval.strip()
            if key in _KIND_ALIASES and _KIND_ALIASES[key] != "rack":
                kinds.append(_KIND_ALIASES[key])
            elif key in ("down", "downtime"):
                kw["mtbf_downtime"] = float(oval)
            elif key == "wipe":
                kw["mtbf_wipe"] = oval.lower() in ("", "1", "true", "yes")
            elif key == "max":
                kw["max_stochastic"] = int(oval)
            else:
                raise ValueError(f"unknown mtbf option {key!r} in "
                                 f"{clause!r}")
        if kinds:
            kw["mtbf_kinds"] = tuple(kinds)
        return kw

    # -- transforms ------------------------------------------------------
    def clamp_to(self, max_job: int) -> "FaultModel":
        """Clamp job-triggered events for strategies that never exceed
        ``max_job`` started jobs (Hadoop runs exactly the chain length).
        Events collapsing onto one job keep their order by pushing the
        later offset 15 s past the earlier one, like the paper's
        back-to-back double kills."""
        clamped: list[FaultEvent] = []
        prev: Optional[FaultEvent] = None
        for ev in self.events:
            if ev.at_job is None:
                clamped.append(ev)
                continue
            at = min(ev.at_job, max_job)
            off = ev.offset
            if prev is not None and prev.at_job == at and off <= prev.offset:
                off = prev.offset + 15.0
            ev = replace(ev, at_job=at, offset=off)
            clamped.append(ev)
            prev = ev
        return replace(self, events=clamped)
