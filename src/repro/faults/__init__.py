"""Generalized fault modelling and injection (beyond the paper's §V-A).

* :mod:`repro.faults.model` — :class:`FaultModel` / :class:`FaultEvent`:
  fail-stop, transient crash-recover, disk-loss and correlated rack
  failures, planned or Poisson/MTBF-driven, plus the ``--faults`` grammar.
* :mod:`repro.faults.detector` — :class:`HeartbeatDetector`: detection
  latency policy (paper mode at expiry 0);
  :class:`ProgressRateTracker`: progress-rate suspicion policy (the
  *suspected-slow* verdict, distinct from *dead*).
* :mod:`repro.faults.injector` — :class:`FaultInjector`: drives a model
  against a cluster, byte-compatible with the legacy
  :class:`repro.cluster.failures.FailureInjector` for planned fail-stop
  plans.
"""

from repro.faults.detector import HeartbeatDetector, ProgressRateTracker
from repro.faults.injector import FaultInjector
from repro.faults.model import DEFAULT_DOWNTIME, KINDS, FaultEvent, FaultModel

__all__ = ["DEFAULT_DOWNTIME", "KINDS", "FaultEvent", "FaultModel",
           "FaultInjector", "HeartbeatDetector", "ProgressRateTracker"]
