"""Heartbeat-based failure detection policy.

Real clusters do not learn about a dead node instantly: workers heartbeat
the master every ``interval`` seconds and the master declares a node lost
only once ``expiry`` seconds have passed since its last heartbeat (Hadoop's
``mapred.tasktracker.expiry.interval``; related work such as Binocular
Speculation treats this detection latency as a first-order recovery cost).

The detector is a pure *timing policy*: it owns no simulation events and
keeps no per-node state, so constructing it never perturbs the event
stream.  The two consumers apply its delays themselves:

* the middleware delays lineage/metadata updates (replica drops, damage
  records, cascade planning) by :meth:`detection_delay`;
* the jobtracker delays declaring a node dead (task re-execution or job
  cancellation) by :meth:`declare_delay`.

``expiry == 0`` selects **paper mode** (§V-A protocol): the middleware is
omniscient (zero detection delay, applied synchronously at the kill) and
the master uses the fixed ``failure_detection_timeout`` (30 s in the
paper).  Deterministic paper figures are byte-identical in this mode.
"""

from __future__ import annotations

import math


class HeartbeatDetector:
    """Detection-latency model shared by middleware and jobtracker."""

    def __init__(self, interval: float = 3.0, expiry: float = 0.0,
                 declare_timeout: float = 30.0):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if expiry != 0 and expiry < interval:
            raise ValueError("expiry must be 0 (paper mode) or >= interval")
        if declare_timeout < 0:
            raise ValueError("declare_timeout must be >= 0")
        self.interval = float(interval)
        self.expiry = float(expiry)
        self.declare_timeout = float(declare_timeout)

    @classmethod
    def from_spec(cls, spec) -> "HeartbeatDetector":
        """Build from a :class:`repro.cluster.spec.ClusterSpec`."""
        return cls(interval=spec.heartbeat_interval,
                   expiry=spec.heartbeat_expiry,
                   declare_timeout=spec.failure_detection_timeout)

    @property
    def paper_mode(self) -> bool:
        """True when detection follows the paper's §V-A protocol."""
        return self.expiry == 0.0

    def detection_delay(self, t_death: float) -> float:
        """Seconds after a death at ``t_death`` until the master's metadata
        reflects it.  The node's last heartbeat was the latest tick at or
        before ``t_death``; the timer expires ``expiry`` later."""
        if self.paper_mode:
            return 0.0
        last_beat = math.floor(t_death / self.interval) * self.interval
        return max(0.0, last_beat + self.expiry - t_death)

    def declare_delay(self, t_death: float) -> float:
        """Seconds until the master declares the node dead and acts on it
        (re-executes its tasks, or cancels the job in abort mode)."""
        if self.paper_mode:
            return self.declare_timeout
        return self.detection_delay(t_death)

    def rejoin_delay(self, t_up: float) -> float:
        """Seconds after a node comes back up at ``t_up`` until the master
        sees its first heartbeat (re-registration)."""
        if self.paper_mode:
            return 0.0
        return self.interval - math.fmod(t_up, self.interval)

    def __repr__(self) -> str:  # pragma: no cover
        mode = "paper" if self.paper_mode else \
            f"hb={self.interval:g}s/exp={self.expiry:g}s"
        return f"<HeartbeatDetector {mode}>"
