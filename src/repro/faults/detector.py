"""Heartbeat-based failure detection policy.

Real clusters do not learn about a dead node instantly: workers heartbeat
the master every ``interval`` seconds and the master declares a node lost
only once ``expiry`` seconds have passed since its last heartbeat (Hadoop's
``mapred.tasktracker.expiry.interval``; related work such as Binocular
Speculation treats this detection latency as a first-order recovery cost).

The detector is a pure *timing policy*: it owns no simulation events and
keeps no per-node state, so constructing it never perturbs the event
stream.  The two consumers apply its delays themselves:

* the middleware delays lineage/metadata updates (replica drops, damage
  records, cascade planning) by :meth:`detection_delay`;
* the jobtracker delays declaring a node dead (task re-execution or job
  cancellation) by :meth:`declare_delay`.

``expiry == 0`` selects **paper mode** (§V-A protocol): the middleware is
omniscient (zero detection delay, applied synchronously at the kill) and
the master uses the fixed ``failure_detection_timeout`` (30 s in the
paper).  Deterministic paper figures are byte-identical in this mode.
"""

from __future__ import annotations

import math
import threading
from collections import deque


class HeartbeatDetector:
    """Detection-latency model shared by middleware and jobtracker."""

    def __init__(self, interval: float = 3.0, expiry: float = 0.0,
                 declare_timeout: float = 30.0):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if expiry != 0 and expiry < interval:
            raise ValueError("expiry must be 0 (paper mode) or >= interval")
        if declare_timeout < 0:
            raise ValueError("declare_timeout must be >= 0")
        self.interval = float(interval)
        self.expiry = float(expiry)
        self.declare_timeout = float(declare_timeout)

    @classmethod
    def from_spec(cls, spec) -> "HeartbeatDetector":
        """Build from a :class:`repro.cluster.spec.ClusterSpec`."""
        return cls(interval=spec.heartbeat_interval,
                   expiry=spec.heartbeat_expiry,
                   declare_timeout=spec.failure_detection_timeout)

    @property
    def paper_mode(self) -> bool:
        """True when detection follows the paper's §V-A protocol."""
        return self.expiry == 0.0

    def detection_delay(self, t_death: float) -> float:
        """Seconds after a death at ``t_death`` until the master's metadata
        reflects it.  The node's last heartbeat was the latest tick at or
        before ``t_death``; the timer expires ``expiry`` later."""
        if self.paper_mode:
            return 0.0
        last_beat = math.floor(t_death / self.interval) * self.interval
        return max(0.0, last_beat + self.expiry - t_death)

    def declare_delay(self, t_death: float) -> float:
        """Seconds until the master declares the node dead and acts on it
        (re-executes its tasks, or cancels the job in abort mode)."""
        if self.paper_mode:
            return self.declare_timeout
        return self.detection_delay(t_death)

    def rejoin_delay(self, t_up: float) -> float:
        """Seconds after a node comes back up at ``t_up`` until the master
        sees its first heartbeat (re-registration)."""
        if self.paper_mode:
            return 0.0
        return self.interval - math.fmod(t_up, self.interval)

    def __repr__(self) -> str:  # pragma: no cover
        mode = "paper" if self.paper_mode else \
            f"hb={self.interval:g}s/exp={self.expiry:g}s"
        return f"<HeartbeatDetector {mode}>"


class ProgressRateTracker:
    """Progress-rate suspicion policy: *suspected-slow* is a verdict
    distinct from *dead*.

    A node whose heartbeats flow but whose task commits lag the fleet is
    a straggler, never a loss — suspicion feeds speculation and
    pre-replication, and must never feed death declaration (declaring a
    throttled node lost would cascade-recover data that is still there).

    The rule is an age test (LATE-style): a node is suspected at ``now``
    when

    * the fleet committed at least ``min_commits`` tasks inside the
      trailing ``window`` (warm-up guard: an idle or just-started fleet
      yields no verdicts — there is no baseline to lag behind), and
    * the node has work in flight whose **oldest dispatch** is older
      than ``ratio`` times the fleet's median committed task duration.

    Comparing task *age* against the fleet's demonstrated task duration
    (rather than windowed commit counts) keeps the verdict meaningful
    across phase boundaries: a node that finished its share and went
    idle still anchors the baseline through the durations it committed,
    and a straggler steadily trickling commits cannot hide behind its
    own accumulated count.  Durations pair dispatches with commits FIFO
    per node — an approximation under slot concurrency, but a median
    over the fleet absorbs it.  ``MIN_SUSPECT_AGE`` floors the
    threshold so scheduler jitter on sub-millisecond tasks never
    suspects a healthy node.

    Pure policy over caller-supplied timestamps (unit-testable with a
    synthetic clock); a lock serializes the counters because the process
    runtime records dispatches from chain-driver threads and commits
    from the event-pump thread."""

    #: absolute floor on the suspicion age threshold, seconds
    MIN_SUSPECT_AGE = 0.05

    def __init__(self, window: float = 1.0, ratio: float = 3.0,
                 min_commits: int = 3):
        if window <= 0:
            raise ValueError("suspicion window must be positive")
        if ratio <= 1:
            raise ValueError("suspicion ratio must be > 1 (a node is only "
                             "suspect when clearly behind the fleet)")
        if min_commits < 1:
            raise ValueError("min_commits must be >= 1")
        self.window = float(window)
        self.ratio = float(ratio)
        self.min_commits = int(min_commits)
        self._lock = threading.Lock()
        #: node -> FIFO of in-flight dispatch timestamps
        self._pending: dict[int, deque] = {}
        #: node -> commit timestamps (rate reporting only)
        self._commits: dict[int, deque] = {}
        #: (commit time, duration) samples across the fleet
        self._samples: deque = deque(maxlen=4096)

    # -- recording -------------------------------------------------------
    def record_dispatch(self, node: int, now: float) -> None:
        with self._lock:
            self._pending.setdefault(node, deque()).append(now)

    def record_commit(self, node: int, now: float) -> None:
        with self._lock:
            self._commits.setdefault(node, deque()).append(now)
            pending = self._pending.get(node)
            if pending:
                started = pending.popleft()
                self._samples.append((now, max(0.0, now - started)))

    def record_settled(self, node: int) -> None:
        """An attempt ended without committing (task-failed): frees the
        in-flight slot without counting progress."""
        with self._lock:
            pending = self._pending.get(node)
            if pending:
                pending.popleft()

    def forget(self, node: int) -> None:
        """The node died (or was replaced): drop its history."""
        with self._lock:
            self._commits.pop(node, None)
            self._pending.pop(node, None)

    def clear_outstanding(self) -> None:
        """An epoch bump cancelled every in-flight dispatch."""
        with self._lock:
            self._pending.clear()

    # -- verdicts --------------------------------------------------------
    def _median_duration(self, now: float):
        """Median committed task duration in the window, or None while
        warming up.  Caller holds the lock."""
        horizon = now - self.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()
        if len(self._samples) < self.min_commits:
            return None
        durations = sorted(d for _, d in self._samples)
        return durations[len(durations) // 2]

    def load(self, node: int) -> int:
        with self._lock:
            return len(self._pending.get(node, ()))

    def rate(self, node: int, now: float) -> float:
        """The node's commits per second over the trailing window."""
        with self._lock:
            commits = self._commits.get(node)
            if not commits:
                return 0.0
            horizon = now - self.window
            while commits and commits[0] < horizon:
                commits.popleft()
            return len(commits) / self.window

    def suspects(self, now: float, alive) -> set[int]:
        """The alive nodes currently suspected slow."""
        with self._lock:
            median = self._median_duration(now)
            if median is None:
                return set()
            threshold = max(self.ratio * median, self.MIN_SUSPECT_AGE)
            out = set()
            for node in alive:
                pending = self._pending.get(node)
                if pending and now - pending[0] > threshold:
                    out.add(node)
            return out
