"""repro — a reproduction of RCMP (Dinu & Ng, IPDPS 2014).

RCMP makes *job recomputation* a first-order failure resilience strategy for
multi-job MapReduce computations, replacing most uses of data replication for
intermediate job outputs.  This package contains:

``repro.simcore``
    A discrete-event simulation engine with fluid (bandwidth-shared)
    resources, used to model disks, NICs and oversubscribed core links.
``repro.cluster``
    Cluster topology, node/disk/network models, failure injection and
    availability-trace generation (paper Fig. 2).
``repro.dfs``
    An HDFS-like block-replicated distributed file system.
``repro.mapreduce``
    A slot/wave-based MapReduce engine (mappers, all-to-all shuffle,
    reducers, a JobTracker with Hadoop-style within-job recovery).
``repro.core``
    RCMP itself: persisted-output store, lineage cascade planner, reducer
    splitting, multi-job middleware and failure-resilience strategies.
``repro.localexec``
    A record-level in-process MapReduce running the paper's actual UDFs;
    used to validate the *semantic correctness* of recomputation.
``repro.workloads``
    The paper's 7-job I/O-intensive chain and the failure scenarios of
    Fig. 7 / Fig. 9.
``repro.analysis``
    Closed-form models (paper §IV), the OPTIMISTIC numerical analysis and
    the Fig. 10 chain-length extrapolation.
``repro.experiments``
    One module per evaluation figure (Figs. 2, 8-14).

Quickstart::

    from repro import presets, run_chain, strategies
    cluster_spec = presets.stic(slots=(1, 1))
    result = run_chain(cluster_spec, n_jobs=7, strategy=strategies.RCMP,
                       failures=[(2, 15.0)])
    print(result.total_runtime)
"""

__version__ = "1.0.0"

__all__ = [
    "ChainResult",
    "ChainSpec",
    "build_chain",
    "presets",
    "run_chain",
    "strategies",
    "__version__",
]

_LAZY = {
    "presets": ("repro.cluster", "presets"),
    "strategies": ("repro.core", "strategies"),
    "ChainResult": ("repro.core.middleware", "ChainResult"),
    "run_chain": ("repro.core.middleware", "run_chain"),
    "ChainSpec": ("repro.workloads.chain", "ChainSpec"),
    "build_chain": ("repro.workloads.chain", "build_chain"),
}


def __getattr__(name):  # PEP 562 lazy top-level API
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") \
            from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
