"""Paper-vs-measured reporting used by the experiment harness.

Every experiment emits :class:`Comparison` rows; ``format_table`` renders
them in the console and EXPERIMENTS.md.  We do not expect to match the
paper's absolute seconds (our substrate is a calibrated simulator, not the
authors' testbed) — the comparisons target the *shape*: orderings, rough
factors and crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Comparison:
    """One reported quantity: what the paper shows vs what we measured."""

    label: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def row(self) -> tuple[str, str, str, str, str]:
        paper = f"{self.paper:.2f}" if self.paper is not None else "-"
        ratio = f"{self.ratio:.2f}" if self.ratio is not None else "-"
        return (self.label, f"{self.measured:.2f}", paper, ratio, self.note)


@dataclass
class ExperimentReport:
    """A figure's full regenerated dataset."""

    figure: str
    title: str
    rows: list[Comparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, measured: float,
            paper: Optional[float] = None, unit: str = "",
            note: str = "") -> Comparison:
        comparison = Comparison(label, measured, paper, unit, note)
        self.rows.append(comparison)
        return comparison

    def render(self) -> str:
        return format_table(self)


def format_table(report: ExperimentReport) -> str:
    """Render a report as a fixed-width text table."""
    header = ("series / point", "measured", "paper", "meas/paper", "note")
    rows = [header] + [c.row() for c in report.rows]
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]

    def fmt(row: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths))

    lines = [f"== {report.figure}: {report.title} ==", fmt(header),
             fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(r) for r in rows[1:])
    for note in report.notes:
        lines.append(f"   note: {note}")
    return "\n".join(lines)
