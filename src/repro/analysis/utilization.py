"""Utilization reporting over exported traces (``rcmp-repro analyze``).

Consumes the ``utilization`` snapshot embedded in Chrome-trace JSON or
JSONL exports (see :mod:`repro.obs.tracer` for the schema) and renders a
per-link throughput table plus a **hot-spot concentration index** — the
normalized Herfindahl–Hirschman index of per-link bytes, 0 when load is
spread evenly over the links of a class and 1 when a single link carries
everything.  Under NO-SPLIT recomputation the disk index spikes (the
paper's §IV-B2 hot-spot, Fig. 12); splitting flattens it.
"""

from __future__ import annotations

import json
from typing import Optional


def load_trace(path: str) -> dict:
    """Load an exported trace (Chrome JSON or JSONL).

    Returns ``{"schema": ..., "events": [...], "utilization": {...}}``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.read(1)
        fh.seek(0)
        if first == "{" and not path.endswith(".jsonl"):
            data = json.load(fh)
            return {"schema": data.get("schema", {}),
                    "events": data.get("traceEvents", []),
                    "utilization": data.get("utilization", {})}
        schema: dict = {}
        events: list = []
        utilization: dict = {}
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "schema" in obj and "ph" not in obj:
                schema = obj["schema"]
            elif "utilization" in obj and "ph" not in obj:
                utilization = obj["utilization"]
            else:
                events.append(obj)
        return {"schema": schema, "events": events,
                "utilization": utilization}


def link_class(name: str) -> str:
    """Classify a capacity by its conventional name suffix."""
    if name.endswith(".disk"):
        return "disk"
    if name.endswith((".nic_in", ".nic_out")):
        return "nic"
    if "uplink" in name:
        return "uplink"
    return "other"


def hotspot_concentration(bytes_by_link: dict[str, float]) -> float:
    """Normalized HHI of the byte distribution across links, in [0, 1].

    ``sum(share^2)`` rescaled so an even spread over ``n`` links maps to 0
    and total concentration on one link maps to 1.  Returns 0.0 for fewer
    than two links or zero total bytes (no contention possible).
    """
    values = [v for v in bytes_by_link.values() if v > 0]
    total = sum(values)
    if len(bytes_by_link) < 2 or total <= 0:
        return 0.0
    hhi = sum((v / total) ** 2 for v in values)
    n = len(bytes_by_link)
    return (hhi - 1.0 / n) / (1.0 - 1.0 / n)


def peak_overlap(intervals: list[tuple[float, float]]) -> int:
    """Maximum number of simultaneously-open ``(start, end)`` intervals.

    Used for trace-derived concurrency analyses (e.g. how many mapper
    reads hit one disk at once during a recomputation, Fig. 12)."""
    points = sorted([(s, 1) for s, _ in intervals]
                    + [(e, -1) for _, e in intervals])
    best = current = 0
    for _, delta in points:
        current += delta
        if current > best:
            best = current
    return best


def utilization_report(utilization: dict,
                       top: Optional[int] = None) -> str:
    """Render the per-link utilization table and hot-spot indices."""
    if not utilization:
        return "(trace carries no utilization data)"
    rows = sorted(utilization.items(),
                  key=lambda kv: (-kv[1].get("bytes", 0.0), kv[0]))
    if top is not None:
        rows = rows[:top]
    header = ("link", "GB moved", "busy s", "peak", "mean",
              "MB/s busy", "flows", "aborted")
    table = [header]
    for name, u in rows:
        table.append((
            name,
            f"{u.get('bytes', 0.0) / 1e9:.2f}",
            f"{u.get('busy_time', 0.0):.1f}",
            f"{u.get('peak_concurrency', 0)}",
            f"{u.get('mean_concurrency', 0.0):.1f}",
            f"{u.get('throughput', 0.0) / 1e6:.1f}",
            f"{u.get('flows_completed', 0)}",
            f"{u.get('flows_aborted', 0)}",
        ))
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]

    def fmt(row: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(row, widths))

    lines = ["== per-link utilization ==", fmt(header),
             fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(r) for r in table[1:])

    by_class: dict[str, dict[str, float]] = {}
    for name, u in utilization.items():
        by_class.setdefault(link_class(name), {})[name] = \
            u.get("bytes", 0.0)
    for cls in ("disk", "nic", "uplink"):
        links = by_class.get(cls)
        if links:
            index = hotspot_concentration(links)
            lines.append(f"hot-spot concentration ({cls:4s}): {index:.3f}")
    if utilization:
        name = max(utilization,
                   key=lambda n: (utilization[n].get("peak_concurrency", 0),
                                  n))
        lines.append(f"top-concurrency link: {name} "
                     f"(peak {utilization[name].get('peak_concurrency', 0)} "
                     f"concurrent flows)")
    return "\n".join(lines)


def speculation_report(events: list[dict]) -> str:
    """Per-node straggler table from the runtime's cascade instants.

    Aggregates ``node-throttled`` / ``suspected-slow`` /
    ``speculative-attempt`` / ``speculative-result`` /
    ``speculation-loser`` / ``speculation-swept`` / ``pre-replicate``
    instants into one row per node: how often it was suspected, how
    many of its tasks were backed up, how many backups it ran and won,
    and the bytes its losing attempts wasted.  Returns "" when the
    trace carries no straggler activity (the section is omitted)."""
    nodes: dict[int, dict[str, float]] = {}
    pre_replicated = 0

    def row(node) -> dict[str, float]:
        return nodes.setdefault(int(node), {
            "factor": 0.0, "suspected": 0, "backed_up": 0,
            "backups_run": 0, "wins": 0, "wasted": 0, "swept": 0})

    for ev in events:
        if ev.get("ph") != "i":
            continue
        name, args = ev.get("name"), ev.get("args", {})
        if name == "node-throttled":
            row(args["node"])["factor"] = float(args.get("factor", 0.0))
        elif name == "suspected-slow":
            row(args["node"])["suspected"] += 1
        elif name == "speculative-attempt":
            row(args["original"])["backed_up"] += 1
            row(args["backup"])["backups_run"] += 1
        elif name == "speculative-result":
            row(args["winner"])["wins"] += 1
        elif name == "speculation-loser":
            row(args["node"])["wasted"] += int(args.get("wasted", 0))
        elif name == "speculation-swept":
            row(args["node"])["swept"] += int(args.get("freed", 0))
        elif name == "pre-replicate":
            pre_replicated += int(args.get("pieces", 0))
    if not nodes:
        return ""
    header = ("node", "slow x", "suspected", "backed-up", "backups",
              "wins", "wasted B", "swept B")
    table = [header]
    for node in sorted(nodes):
        r = nodes[node]
        table.append((
            str(node),
            f"{r['factor']:g}" if r["factor"] else "-",
            f"{int(r['suspected'])}",
            f"{int(r['backed_up'])}",
            f"{int(r['backups_run'])}",
            f"{int(r['wins'])}",
            f"{int(r['wasted'])}",
            f"{int(r['swept'])}",
        ))
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]

    def fmt(row_: tuple[str, ...]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(row_, widths))

    lines = ["== straggler / speculation ==", fmt(header),
             fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(r) for r in table[1:])
    if pre_replicated:
        lines.append(f"pre-replicated pieces: {pre_replicated}")
    return "\n".join(lines)


def report_from_file(path: str, top: Optional[int] = None) -> str:
    """Convenience: load ``path`` and render its utilization report,
    plus the straggler/speculation table when the trace has one."""
    trace = load_trace(path)
    report = utilization_report(trace["utilization"], top=top)
    spec = speculation_report(trace["events"])
    if spec:
        report = f"{report}\n\n{spec}" if report else spec
    return report
