"""Dependency-free ASCII plotting for experiment series.

The experiment modules expose raw series (``fig2.series()``,
``fig10.curves()``, ``fig12.mapper_cdf_data()``); these helpers render them
as terminal plots so the repository can show every figure without a
graphics stack.  Used by the CLI's ``--plot`` flag and the examples.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

#: glyphs assigned to series in insertion order
GLYPHS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, cells: int
           ) -> np.ndarray:
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    pos = (values - lo) / (hi - lo) * (cells - 1)
    return np.clip(np.round(pos).astype(int), 0, cells - 1)


def line_plot(series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
              width: int = 64, height: int = 18, title: str = "",
              x_label: str = "", y_label: str = "") -> str:
    """Render ``{name: (x, y)}`` as an ASCII scatter/line plot."""
    if not series:
        raise ValueError("no series to plot")
    all_x = np.concatenate([np.asarray(x, dtype=float)
                            for x, _y in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float)
                            for _x, y in series.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, (xs, ys)) in zip(GLYPHS, series.items()):
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        cols = _scale(xs, x_lo, x_hi, width)
        rows = _scale(ys, y_lo, y_hi, height)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph
        del name
    lines = []
    if title:
        lines.append(title.center(width + 10))
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:8.2f} |"
        elif i == height - 1:
            label = f"{y_lo:8.2f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    left = f"{x_lo:.6g}"
    right = f"{x_hi:.6g}"
    pad = " " * max(1, width - len(left) - len(right))
    lines.append("          " + left + pad + right)
    if x_label:
        lines.append(("[" + x_label + "]").center(width + 10))
    legend = "   ".join(f"{glyph}={name}"
                        for glyph, name in zip(GLYPHS, series))
    lines.append(legend)
    if y_label:
        lines.insert(1 if title else 0, f"y: {y_label}")
    return "\n".join(lines)


def cdf_plot(datasets: Mapping[str, Sequence[float]], width: int = 64,
             height: int = 16, title: str = "",
             x_label: str = "value") -> str:
    """Render empirical CDFs of one or more datasets (paper-style)."""
    from repro.analysis.cdf import empirical_cdf
    series = {}
    for name, values in datasets.items():
        x, f = empirical_cdf(values)
        series[name] = (x, f)
    return line_plot(series, width=width, height=height, title=title,
                     x_label=x_label, y_label="CDF (%)")


def bar_chart(values: Mapping[str, float], width: int = 48,
              title: str = "", unit: str = "") -> str:
    """Horizontal bar chart for slowdown-factor style comparisons."""
    if not values:
        raise ValueError("no values to chart")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar_chart needs a positive maximum")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{name.ljust(label_w)} {value:8.2f}{unit} |{bar}")
    return "\n".join(lines)
