"""Numerical analysis: OPTIMISTIC runtimes and the Fig. 10 extrapolation.

The paper obtains OPTIMISTIC's numbers by numerical analysis, combining the
average job running times before and after a failure measured from RCMP's
(no-splitting) runs; and Fig. 10 extrapolates the 7-job measurements to
chains of 10-100 jobs.  The extrapolation composes, per strategy, the
measured per-job averages: jobs that ran with all N nodes before the
failure, the wasted time of the job interrupted by the failure, the
recomputation runs, and the jobs completed with N-1 survivors afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.middleware import ChainResult


@dataclass(frozen=True)
class RunAverages:
    """Per-category averages extracted from one measured chain execution."""

    #: average duration of initial-run jobs completed before the failure
    #: (full cluster)
    job_before: float
    #: average duration of jobs completed after the failure (N-1 nodes);
    #: falls back to job_before when the run had no failure
    job_after: float
    #: average duration of one recomputation run (0 when none occurred)
    recompute: float
    #: number of recomputation runs observed
    n_recomputes: int
    #: wasted time of the job interrupted by the failure (start to abort)
    wasted: float


def extract_averages(result: ChainResult) -> RunAverages:
    """Pull the extrapolation inputs from one measured execution."""
    metrics = result.metrics
    fail_time = metrics.failures[0][0] if metrics.failures else float("inf")
    before, after, wasted = [], [], 0.0
    for job in metrics.jobs:
        if job.outcome == "aborted":
            wasted += (job.end or job.start) - job.start
            continue
        if job.kind == "recompute" or job.outcome != "done":
            continue
        if job.end is not None and job.end <= fail_time:
            before.append(job.duration)
        else:
            after.append(job.duration)
    recomputes = metrics.job_durations("recompute")
    job_before = float(np.mean(before)) if before else float("nan")
    job_after = float(np.mean(after)) if after else job_before
    if not before:
        job_before = job_after
    return RunAverages(
        job_before=job_before,
        job_after=job_after,
        recompute=float(recomputes.mean()) if recomputes.size else 0.0,
        n_recomputes=int(recomputes.size),
        wasted=wasted,
    )


def optimistic_runtime(averages: RunAverages, n_jobs: int,
                       fail_at: int) -> float:
    """OPTIMISTIC under a single failure at started-job ``fail_at``:
    ``fail_at - 1`` full-cluster jobs, the wasted partial job, then the
    entire chain again on N-1 nodes (the paper's §V-A analysis, built from
    unreplicated per-job averages)."""
    if not 1 <= fail_at <= n_jobs:
        raise ValueError("fail_at must be within the chain")
    return ((fail_at - 1) * averages.job_before
            + averages.wasted
            + n_jobs * averages.job_after)


def rcmp_runtime(averages: RunAverages, n_jobs: int, fail_at: int) -> float:
    """RCMP under a single failure at job ``fail_at`` of an ``n_jobs``
    chain: full-cluster jobs before, the wasted partial job, one
    recomputation run per prior job, then the rest on N-1 nodes."""
    if not 1 <= fail_at <= n_jobs:
        raise ValueError("fail_at must be within the chain")
    return ((fail_at - 1) * averages.job_before
            + averages.wasted
            + (fail_at - 1) * averages.recompute
            + (n_jobs - fail_at + 1) * averages.job_after)


def hadoop_runtime(averages: RunAverages, n_jobs: int, fail_at: int) -> float:
    """A replication baseline under the same failure: no recomputation;
    the interrupted job's extra cost is folded into ``job_after`` measured
    from the run that absorbed the failure.  ``wasted`` is 0 for Hadoop
    (the job continues through the failure)."""
    if not 1 <= fail_at <= n_jobs:
        raise ValueError("fail_at must be within the chain")
    return ((fail_at - 1) * averages.job_before
            + averages.wasted
            + (n_jobs - fail_at + 1) * averages.job_after)


def extrapolate_chain_length(rcmp_avgs: RunAverages,
                             baseline_avgs: dict[str, RunAverages],
                             chain_lengths, fail_at: int = 2
                             ) -> dict[str, np.ndarray]:
    """Fig. 10: slowdown of each baseline relative to RCMP for longer
    chains, a failure injected at job ``fail_at``.

    Returns ``{name: slowdown_array}`` aligned with ``chain_lengths``."""
    chain_lengths = np.asarray(list(chain_lengths), dtype=int)
    rcmp = np.array([rcmp_runtime(rcmp_avgs, int(n), fail_at)
                     for n in chain_lengths])
    out: dict[str, np.ndarray] = {"RCMP": rcmp / rcmp}
    for name, avgs in baseline_avgs.items():
        base = np.array([hadoop_runtime(avgs, int(n), fail_at)
                         for n in chain_lengths])
        out[name] = base / rcmp
    return out
