"""The replicate-vs-recompute economics of paper §III.

The paper's argument against always-on replication has three parts:

* failures are rare at moderate cluster scale (Fig. 2), so the *expected*
  cost of recomputation is small;
* replication's overhead is paid on every single run;
* replication inflates provisioning: extra nodes/disks are needed to
  sustain a given job-completion rate (§III-B).

This module quantifies all three from measured chain runtimes and a
failure-day probability, giving the break-even failure rate at which
always-on replication starts to pay off.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StrategyCosts:
    """Measured runtimes of one strategy (seconds per chain execution)."""

    name: str
    runtime_clean: float
    runtime_with_failure: float

    def __post_init__(self) -> None:
        if self.runtime_clean <= 0 or self.runtime_with_failure <= 0:
            raise ValueError("runtimes must be positive")

    def expected_runtime(self, failure_probability: float) -> float:
        """Expected runtime when a run hits a failure with probability p."""
        if not 0 <= failure_probability <= 1:
            raise ValueError("failure_probability must be in [0, 1]")
        p = failure_probability
        return (1 - p) * self.runtime_clean + p * self.runtime_with_failure


def break_even_failure_probability(recompute: StrategyCosts,
                                   replicate: StrategyCosts) -> float:
    """Failure probability p* above which the replication strategy has the
    lower expected runtime.

    Solves E_repl(p) = E_recomp(p).  Returns ``inf`` when recomputation
    wins at every p (its failure-time penalty is smaller than replication's
    standing overhead), and 0 when replication wins even failure-free.
    """
    # E(p) = clean + p * (failure - clean); equate and solve for p.
    clean_gap = replicate.runtime_clean - recompute.runtime_clean
    penalty_gap = ((recompute.runtime_with_failure
                    - recompute.runtime_clean)
                   - (replicate.runtime_with_failure
                      - replicate.runtime_clean))
    if penalty_gap <= 0:
        # recomputation's failure penalty doesn't exceed replication's:
        # recomputation wins everywhere iff it also wins failure-free
        return float("inf") if clean_gap >= 0 else 0.0
    p_star = clean_gap / penalty_gap
    if p_star < 0:
        return 0.0
    return min(p_star, 1.0) if p_star <= 1.0 else float("inf")


def provisioning_overhead(runtime_clean_repl: float,
                          runtime_clean_rcmp: float) -> float:
    """§III-B: the extra capacity needed to sustain a target job rate under
    replication — the fraction of additional node-seconds consumed per
    chain (0.65 means 65 % more cluster time per unit of work)."""
    if runtime_clean_rcmp <= 0:
        raise ValueError("baseline runtime must be positive")
    return runtime_clean_repl / runtime_clean_rcmp - 1.0


def runs_between_failures(failure_day_fraction: float,
                          runs_per_day: float) -> float:
    """Expected number of chain runs between failure *days* given a trace's
    failure-day fraction (Fig. 2) and a cluster's daily job load."""
    if not 0 < failure_day_fraction <= 1:
        raise ValueError("failure_day_fraction must be in (0, 1]")
    if runs_per_day <= 0:
        raise ValueError("runs_per_day must be positive")
    return runs_per_day / failure_day_fraction


def expected_slowdown_table(strategies: list[StrategyCosts],
                            failure_probabilities: list[float]
                            ) -> dict[str, list[float]]:
    """Expected-runtime matrix, normalized per-probability to the best
    strategy — the §III trade-off at a glance."""
    table: dict[str, list[float]] = {s.name: [] for s in strategies}
    for p in failure_probabilities:
        expected = {s.name: s.expected_runtime(p) for s in strategies}
        best = min(expected.values())
        for name, value in expected.items():
            table[name].append(value / best)
    return table
