"""Closed-form model of the recomputation arithmetic (paper §IV).

The paper's illustration model: N compute nodes, S mapper and S reducer
slots each, WM waves of mappers and WR waves of reducers per node, balanced
work.  After a single node failure RCMP recomputes 1/N of the mappers and
1/N of the reducers (and 1/N of the shuffle traffic); with splitting over
the N-1 survivors the recomputed mappers take ceil(WM/(N-1)) waves instead
of WM.

These formulas cross-validate the simulator in tests and drive the Fig. 10
extrapolation.
"""

from __future__ import annotations

import math


def waves(n_tasks: int, n_nodes: int, slots: int) -> int:
    """Waves needed to run ``n_tasks`` over ``n_nodes`` with ``slots``
    concurrent tasks per node."""
    if min(n_tasks, n_nodes, slots) < 0 or n_nodes == 0 or slots == 0:
        raise ValueError("invalid wave arithmetic inputs")
    return math.ceil(n_tasks / (n_nodes * slots))


def recomputation_waves(wm: int, n_nodes: int) -> int:
    """§IV-B: tasks worth WM waves on one node, recomputed over the N-1
    survivors: ceil((WM*S) / ((N-1)*S)) = ceil(WM / (N-1))."""
    if wm < 0 or n_nodes < 2:
        raise ValueError("need wm >= 0 and at least 2 nodes")
    return math.ceil(wm / (n_nodes - 1))


def recomputed_fraction(n_nodes: int, n_failures: int = 1) -> float:
    """Fraction of a job's tasks (and shuffle traffic) RCMP recomputes
    after ``n_failures`` distinct node losses (balanced layout)."""
    if not 0 <= n_failures <= n_nodes:
        raise ValueError("0 <= n_failures <= n_nodes required")
    return n_failures / n_nodes


def storage_contention(slots: int, n_nodes: int,
                       split: bool) -> tuple[int, int]:
    """§IV-B2: (initial-run, recomputation) concurrent mapper accesses on
    one storage location.  Initial runs see ~S concurrent accesses; an
    unsplit recomputation concentrates up to S*N accesses on the single
    node holding the regenerated data; splitting spreads the data so the
    per-node access count returns to ~S."""
    initial = slots
    recomputation = slots if split else slots * n_nodes
    return initial, recomputation


def ideal_split_speedup(n_nodes: int) -> float:
    """Upper bound on the reduce-phase recomputation speed-up from
    splitting: the lost reducer's work is divided over N-1 survivors
    instead of one node."""
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    return float(n_nodes - 1)


def replication_disk_bytes(replication: int) -> float:
    """Relative per-input-byte disk traffic of one 1/1/1 job: read input,
    write map output, serve + spill shuffle, merge, write r output copies.
    Used to sanity-check the simulator's failure-free ordering."""
    if replication < 1:
        raise ValueError("replication must be >= 1")
    return 5.0 + replication
