"""Closed-form models, numerical analysis and reporting utilities."""

from repro.analysis.cdf import empirical_cdf
from repro.analysis.extrapolation import (
    RunAverages,
    extract_averages,
    extrapolate_chain_length,
    optimistic_runtime,
)
from repro.analysis.model import (
    recomputation_waves,
    recomputed_fraction,
    storage_contention,
    waves,
)
from repro.analysis.reporting import Comparison, format_table
from repro.analysis.utilization import (
    hotspot_concentration,
    load_trace,
    speculation_report,
    utilization_report,
)

__all__ = [
    "Comparison",
    "RunAverages",
    "empirical_cdf",
    "extract_averages",
    "extrapolate_chain_length",
    "format_table",
    "hotspot_concentration",
    "load_trace",
    "optimistic_runtime",
    "speculation_report",
    "utilization_report",
    "recomputation_waves",
    "recomputed_fraction",
    "storage_contention",
    "waves",
]
