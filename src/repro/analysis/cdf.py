"""Empirical CDF utilities for Figs. 2 and 12."""

from __future__ import annotations

import numpy as np


def empirical_cdf(values, as_percent: bool = True
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F)`` with ``F[i] = P(value <= x[i])``.

    ``x`` is the sorted unique values; ``F`` is in percent by default
    (matching the paper's CDF axes)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empirical_cdf needs at least one value")
    x = np.sort(np.unique(values))
    counts = np.searchsorted(np.sort(values), x, side="right")
    f = counts / values.size
    return x, f * 100.0 if as_percent else f


def cdf_at(values, points) -> np.ndarray:
    """Evaluate the empirical CDF at arbitrary points (percent)."""
    values = np.sort(np.asarray(values, dtype=float))
    points = np.asarray(points, dtype=float)
    return np.searchsorted(values, points, side="right") / values.size * 100.0


def percentile(values, pct: float) -> float:
    """Inverse CDF (inclusive), e.g. ``percentile(d, 50)`` is the median."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("percentile of empty data")
    return float(np.percentile(values, pct, method="inverted_cdf"))
