"""Command-line entry point: regenerate any evaluation figure.

Usage::

    rcmp-repro list
    rcmp-repro fig8 --scale bench
    rcmp-repro all --scale ci
    rcmp-repro run --cluster stic --strategy rcmp --failures 7
    rcmp-repro run --cluster tiny --failures 2 --trace /tmp/run.json
    rcmp-repro analyze /tmp/run.json
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.experiments import ALL_FIGURES
from repro.workloads.chain import build_chain

STRATEGIES = {
    "rcmp": strategies.RCMP,
    "rcmp-nosplit": strategies.RCMP_NOSPLIT,
    "repl2": strategies.REPL2,
    "repl3": strategies.REPL3,
    "optimistic": strategies.OPTIMISTIC,
    "hybrid": strategies.HYBRID,
}

CLUSTERS = {
    "stic": lambda: presets.stic(),
    "stic22": lambda: presets.stic((2, 2)),
    "dco": lambda: presets.dco(),
    "tiny": lambda: presets.tiny(4),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcmp-repro",
        description="Reproduction of RCMP (Dinu & Ng, IPDPS 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible figures")

    trace_help = ("record a structured trace of every simulated run into "
                  "FILE (Chrome trace-event JSON; use a .jsonl suffix for "
                  "JSON Lines)")

    for name in ALL_FIGURES:
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--scale", default="bench",
                       choices=("ci", "bench", "paper"))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--trace", default=None, metavar="FILE",
                       help=trace_help)
        p.add_argument("--plot", action="store_true",
                       help="also render an ASCII plot when the figure "
                            "exposes raw series (fig2, fig10)")

    p = sub.add_parser("all", help="regenerate every figure")
    p.add_argument("--scale", default="bench",
                   choices=("ci", "bench", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)

    p = sub.add_parser("run", help="run one chain execution")
    p.add_argument("--cluster", default="tiny", choices=sorted(CLUSTERS))
    p.add_argument("--strategy", default="rcmp", choices=sorted(STRATEGIES))
    p.add_argument("--jobs", type=int, default=7)
    fault_group = p.add_mutually_exclusive_group()
    fault_group.add_argument("--failures", default=None,
                             help='FAIL spec, e.g. "2" or "7,14"')
    fault_group.add_argument(
        "--faults", default=None,
        help='generalized fault spec, clauses separated by ";", e.g. '
             '"transient@job2:down=45; disk@job3+10" or '
             '"mtbf=600:transient,kill,down=60" '
             '(see repro.faults.model for the grammar)')
    p.add_argument("--mtbf", type=float, default=None,
                   help="add seeded Poisson fail-stop arrivals with this "
                        "mean time between failures (seconds)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="dedicated RNG seed for the stochastic fault "
                        "arrival process (default: derived from --seed)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   help="failure-detector heartbeat period (seconds)")
    p.add_argument("--heartbeat-expiry", type=float, default=None,
                   help="heartbeat silence before a node is declared dead "
                        "(0 = the paper's omniscient detector)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)

    p = sub.add_parser("analyze",
                       help="utilization report from a recorded trace")
    p.add_argument("trace", help="trace file written by --trace")
    p.add_argument("--top", type=int, default=None,
                   help="only show the N busiest links")
    return parser


def _maybe_plot(name, module, args) -> None:
    from repro.analysis.plotting import line_plot

    if name == "fig2" and hasattr(module, "series"):
        series = module.series(args.scale, args.seed)
        print()
        print(line_plot(series, title="Fig. 2: CDF of new failures/day",
                        x_label="new failures per day"))
    elif name == "fig10" and hasattr(module, "curves"):
        curves = module.curves(args.scale, args.seed)
        from repro.experiments.fig10 import CHAIN_LENGTHS
        series = {k: (list(CHAIN_LENGTHS), list(v))
                  for k, v in curves.items()}
        print()
        print(line_plot(series, title="Fig. 10: slowdown vs chain length",
                        x_label="chain length (jobs)"))
    else:
        print("(no raw series exposed for this figure)")


def _traced(trace_path):
    """Context manager: record every run into ``trace_path`` (no-op when
    the path is falsy)."""
    from contextlib import nullcontext

    if not trace_path:
        return nullcontext(None)
    try:  # fail before the (possibly long) simulation, not after
        with open(trace_path, "w", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"rcmp-repro: cannot write trace file: {exc}")
    from repro.obs import RecordingTracer, tracing

    return tracing(RecordingTracer())


def _export_trace(tracer, trace_path) -> None:
    if tracer is None:
        return
    tracer.export(trace_path)
    print(f"trace written to {trace_path} "
          f"({len(tracer.events)} events; load in chrome://tracing, "
          f"or run: rcmp-repro analyze {trace_path})")


def _build_fault_input(args):
    """Combine --failures/--faults/--mtbf/--fault-seed into the run's
    fault input (None when no fault option was given)."""
    from dataclasses import replace

    from repro.faults import FaultModel

    if args.faults is None and args.mtbf is None \
            and args.fault_seed is None:
        return args.failures
    if args.failures is not None:
        raise SystemExit("rcmp-repro: --mtbf/--fault-seed require --faults "
                         "(or no plan at all), not the legacy --failures")
    try:
        model = FaultModel.parse(args.faults) if args.faults \
            else FaultModel()
        if args.mtbf is not None:
            model = replace(model, mtbf=args.mtbf)
        if args.fault_seed is not None:
            if not model.stochastic:
                raise ValueError("--fault-seed needs stochastic arrivals "
                                 "(--mtbf or an mtbf clause in --faults)")
            model = replace(model, seed=args.fault_seed)
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    return model


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, module in sorted(ALL_FIGURES.items()):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.command in ALL_FIGURES:
        module = ALL_FIGURES[args.command]
        with _traced(args.trace) as tracer:
            report = module.run(scale=args.scale, seed=args.seed)
        print(report.render())
        if getattr(args, "plot", False):
            _maybe_plot(args.command, module, args)
        _export_trace(tracer, args.trace)
        return 0
    if args.command == "all":
        with _traced(args.trace) as tracer:
            for name in sorted(ALL_FIGURES):
                report = ALL_FIGURES[name].run(scale=args.scale,
                                               seed=args.seed)
                print(report.render())
                print()
        _export_trace(tracer, args.trace)
        return 0
    if args.command == "run":
        cluster = CLUSTERS[args.cluster]()
        if args.heartbeat_interval is not None \
                or args.heartbeat_expiry is not None:
            from dataclasses import replace

            overrides = {}
            if args.heartbeat_interval is not None:
                overrides["heartbeat_interval"] = args.heartbeat_interval
            if args.heartbeat_expiry is not None:
                overrides["heartbeat_expiry"] = args.heartbeat_expiry
            cluster = replace(cluster, **overrides)
        failures = _build_fault_input(args)
        if args.cluster == "tiny":
            chain = build_chain(n_jobs=args.jobs,
                                per_node_input=256 * (1 << 20),
                                block_size=64 * (1 << 20))
        else:
            chain = build_chain(n_jobs=args.jobs)
        with _traced(args.trace) as tracer:
            result = run_chain(cluster, STRATEGIES[args.strategy],
                               chain=chain, failures=failures,
                               seed=args.seed)
        print(result)
        for job in result.metrics.jobs:
            print(f"  job #{job.ordinal:<3d} {job.name:<14s} "
                  f"kind={job.kind:<9s} outcome={job.outcome:<8s} "
                  f"duration={job.duration:8.1f}s")
        _export_trace(tracer, args.trace)
        return 0
    if args.command == "analyze":
        import json

        from repro.analysis.utilization import report_from_file

        try:
            print(report_from_file(args.trace, top=args.top))
        except OSError as exc:
            print(f"rcmp-repro: cannot read trace file: {exc}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"rcmp-repro: {args.trace} is not a recorded trace "
                  f"({exc})", file=sys.stderr)
            return 2
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
