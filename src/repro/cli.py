"""Command-line entry point: regenerate any evaluation figure.

Usage::

    rcmp-repro list
    rcmp-repro fig8 --scale bench
    rcmp-repro all --scale ci
    rcmp-repro run --cluster stic --strategy rcmp --failures 7
    rcmp-repro run --cluster tiny --failures 2 --trace /tmp/run.json
    rcmp-repro exec --backend process --nodes 4 --faults "kill@job2+0.1"
    rcmp-repro serve --nodes 4 --port 7421 --task-slots 2 --mtbf 30
    rcmp-repro submit --port 7421 --jobs 3 --records 64 --wait
    rcmp-repro status --port 7421
    rcmp-repro analyze /tmp/run.json
"""

from __future__ import annotations

import argparse
import sys

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.experiments import ALL_FIGURES
from repro.workloads.chain import build_chain

STRATEGIES = {
    "rcmp": strategies.RCMP,
    "rcmp-nosplit": strategies.RCMP_NOSPLIT,
    "repl2": strategies.REPL2,
    "repl3": strategies.REPL3,
    "optimistic": strategies.OPTIMISTIC,
    "hybrid": strategies.HYBRID,
}

CLUSTERS = {
    "stic": lambda: presets.stic(),
    "stic22": lambda: presets.stic((2, 2)),
    "dco": lambda: presets.dco(),
    "tiny": lambda: presets.tiny(4),
}


def _split_ratio(text: str):
    """argparse type for --split-ratio: an int, or "auto" (-> None)."""
    if text.lower() == "auto":
        return None
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}")


def _task_slots(text: str):
    """argparse type for --task-slots: a positive int, or "auto"."""
    if text.lower() == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("--task-slots must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rcmp-repro",
        description="Reproduction of RCMP (Dinu & Ng, IPDPS 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible figures")

    trace_help = ("record a structured trace of every simulated run into "
                  "FILE (Chrome trace-event JSON; use a .jsonl suffix for "
                  "JSON Lines)")

    for name in ALL_FIGURES:
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--scale", default="bench",
                       choices=("ci", "bench", "paper"))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--trace", default=None, metavar="FILE",
                       help=trace_help)
        p.add_argument("--plot", action="store_true",
                       help="also render an ASCII plot when the figure "
                            "exposes raw series (fig2, fig10)")

    p = sub.add_parser("all", help="regenerate every figure")
    p.add_argument("--scale", default="bench",
                   choices=("ci", "bench", "paper"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)

    p = sub.add_parser("run", help="run one chain execution")
    p.add_argument("--cluster", default="tiny", choices=sorted(CLUSTERS))
    p.add_argument("--strategy", default="rcmp", choices=sorted(STRATEGIES))
    p.add_argument("--jobs", type=int, default=7)
    fault_group = p.add_mutually_exclusive_group()
    fault_group.add_argument("--failures", default=None,
                             help='FAIL spec, e.g. "2" or "7,14"')
    fault_group.add_argument(
        "--faults", default=None,
        help='generalized fault spec, clauses separated by ";", e.g. '
             '"transient@job2:down=45; disk@job3+10" or '
             '"mtbf=600:transient,kill,down=60" '
             '(see repro.faults.model for the grammar)')
    p.add_argument("--mtbf", type=float, default=None,
                   help="add seeded Poisson fail-stop arrivals with this "
                        "mean time between failures (seconds)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="dedicated RNG seed for the stochastic fault "
                        "arrival process (default: derived from --seed)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   help="failure-detector heartbeat period (seconds)")
    p.add_argument("--heartbeat-expiry", type=float, default=None,
                   help="heartbeat silence before a node is declared dead "
                        "(0 = the paper's omniscient detector)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)

    p = sub.add_parser(
        "exec",
        help="run a record-level chain on an execution backend")
    p.add_argument("--backend", default="process",
                   choices=("inproc", "process"),
                   help="inproc = the in-process LocalCluster; process = "
                        "real worker processes with live SIGKILL injection")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--jobs", type=int, default=3)
    p.add_argument("--dag", default=None, metavar="SHAPE",
                   help='DAG shape instead of a linear chain: "diamond", '
                        '"fanin:K", "fanout:K", "tree:DEPTH", '
                        '"cube:DIMS" (the cuboid lattice), or "linear"; '
                        "the shape sets the job count (--jobs is "
                        "ignored)")
    p.add_argument("--partitions", type=int, default=4)
    p.add_argument("--records", type=int, default=64,
                   help="chain input records per node")
    p.add_argument("--block", type=int, default=16,
                   help="records per map-input block")
    p.add_argument("--value-size", type=int, default=16,
                   help="record value bytes")
    p.add_argument("--split-ratio", type=_split_ratio, default=None,
                   metavar="K",
                   help='k-way reducer splitting during recovery, or '
                        '"auto" (the default) for survivors-1 — the '
                        "paper's choice, matching the simulator's "
                        "Strategy.effective_split; capped at the "
                        "surviving-node count")
    p.add_argument("--strategy", default="rcmp",
                   choices=("rcmp", "optimistic", "repl2", "repl3",
                            "hybrid"))
    p.add_argument("--hybrid-interval", type=int, default=2,
                   help="replicate every k-th job output "
                        "(--strategy hybrid)")
    p.add_argument("--hybrid-replication", type=int, default=2,
                   help="replication factor at hybrid anchors")
    p.add_argument("--hybrid-reclaim", action="store_true",
                   help="reclaim persisted outputs behind each intact "
                        "hybrid anchor")
    p.add_argument("--faults", default=None,
                   help='planned fault events, e.g. "kill@job1+5", '
                        '"kill@job2:node=3; kill@job2+0.5", or a '
                        'straggler "slow@2:10" (node 2 runs 10x slow; '
                        'the process backend throttles the live worker; '
                        'the inproc backend kills at the job boundary '
                        'and takes fail-stop only)')
    p.add_argument("--speculation", action="store_true",
                   help="launch backup attempts for tail tasks on idle "
                        "slots; first commit wins, the loser's partial "
                        "output is swept (process backend)")
    p.add_argument("--speculation-slowdown", type=float, default=2.0,
                   metavar="X",
                   help="a tail task older than X times the batch's "
                        "median committed wall earns a backup attempt")
    p.add_argument("--pre-replicate", action="store_true",
                   help="eagerly copy outputs held by a suspected-slow "
                        "node to a healthy peer so its later death "
                        "cascades nothing (process backend)")
    p.add_argument("--suspect-ratio", type=float, default=3.0,
                   metavar="R",
                   help="suspect a node slow when its commit rate times "
                        "R sits below the fleet median")
    p.add_argument("--suspect-window", type=float, default=1.0,
                   metavar="SECS",
                   help="trailing window for progress-rate suspicion")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="RNG seed picking unpinned kill victims")
    p.add_argument("--fault-scale", type=float, default=1.0,
                   help="multiply fault-plan offsets (shrink simulated-"
                        "seconds plans onto fast real runs)")
    p.add_argument("--task-slots", type=_task_slots, default=1,
                   metavar="N",
                   help='concurrent tasks per worker process: 1 (the '
                        'default) keeps classic single-slot semantics, '
                        'N > 1 runs tasks on a slot thread pool, "auto" '
                        "splits the host's cores across the workers "
                        "(process backend)")
    p.add_argument("--fetch-parallelism", type=int, default=4,
                   metavar="N",
                   help="concurrent shuffle fetches per reduce/replicate "
                        "task — source nodes are fetched in parallel and "
                        "merged as responses land (process backend)")
    p.add_argument("--no-server-filter", action="store_true",
                   help="disable server-side split filtering: k-way "
                        "split reducers pull the full partition bytes "
                        "and filter client-side (the pre-pipelining "
                        "data plane; for A/B measurement)")
    p.add_argument("--memory-budget", type=int, default=64,
                   metavar="MiB",
                   help="hot-tier bytes each worker pins in RAM: "
                        "committed map slices and reduce pieces are "
                        "served from memory and spill to their on-disk "
                        "files (the durability tier) above the budget; "
                        "0 disables the tier (default 64)")
    p.add_argument("--shared-memory", action="store_true",
                   help="publish committed outputs as shared-memory "
                        "segments so colocated workers attach instead "
                        "of fetching over loopback TCP (experimental)")
    p.add_argument("--heartbeat-interval", type=float, default=0.05,
                   help="worker heartbeat period, wall-clock seconds "
                        "(process backend)")
    p.add_argument("--heartbeat-expiry", type=float, default=0.0,
                   help="heartbeat silence before a node is declared dead "
                        "(0 = the paper's omniscient detector)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the per-node output directories here "
                        "(default: a deleted temporary directory)")
    p.add_argument("--trace", default=None, metavar="FILE", help=trace_help)

    p = sub.add_parser(
        "serve",
        help="run a resident chain service: one shared worker pool "
             "accepting submitted chains over a TCP front door")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421,
                   help="front-door TCP port (0 = pick a free one)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--task-slots", type=_task_slots, default=2,
                   metavar="N",
                   help="concurrent task slots per worker (chains from "
                        "different tenants share the slots)")
    p.add_argument("--policy", default="fifo", choices=("fifo", "fair"),
                   help="admission order: strict FIFO, or fair-share "
                        "(least-loaded tenant first)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="chains allowed to run simultaneously")
    p.add_argument("--mtbf", type=float, default=None,
                   help="inject service-level fail-stop arrivals with "
                        "this mean time between failures (seconds)")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--min-alive", type=int, default=2,
                   help="never let MTBF kills reduce the pool below "
                        "this many live workers")
    p.add_argument("--replace-dead", action="store_true",
                   help="respawn a replacement worker for each dead "
                        "node so the pool does not bleed capacity")
    p.add_argument("--speculation", action="store_true",
                   help="default straggler speculation for submitted "
                        "chains (overridable per submission)")
    p.add_argument("--pre-replicate", action="store_true",
                   help="default straggler pre-replication for "
                        "submitted chains")
    p.add_argument("--heartbeat-interval", type=float, default=0.05)
    p.add_argument("--heartbeat-expiry", type=float, default=0.0)
    p.add_argument("--cache-budget", type=int, default=64, metavar="MiB",
                   help="cross-run result cache byte budget in MiB "
                        "(0 disables caching; default 64).  Cached job "
                        "outputs survive in the workdir and overlapping "
                        "submissions skip their cached prefix")
    p.add_argument("--memory-budget", type=int, default=64,
                   metavar="MiB",
                   help="per-worker hot-tier byte budget in MiB "
                        "(0 disables the memory tier; default 64)")
    p.add_argument("--shared-memory", action="store_true",
                   help="shared-memory handoff between the pool's "
                        "colocated workers (experimental)")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the per-node chain namespaces here "
                        "(default: a deleted temporary directory; a "
                        "persistent dir keeps the result cache warm "
                        "across service restarts)")

    p = sub.add_parser("submit",
                       help="submit one chain to a running service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--tenant", default="default",
                   help="tenant name (drives fair-share admission)")
    p.add_argument("--jobs", type=int, default=3)
    p.add_argument("--dag", default=None, metavar="SHAPE",
                   help='DAG shape instead of a linear chain: "diamond", '
                        '"fanin:K", "fanout:K", "tree:DEPTH", '
                        '"cube:DIMS", or "linear"; the shape sets the '
                        "job count (--jobs is ignored)")
    p.add_argument("--partitions", type=int, default=4)
    p.add_argument("--records", type=int, default=64,
                   help="chain input records per node")
    p.add_argument("--block", type=int, default=16,
                   help="records per map-input block")
    p.add_argument("--value-size", type=int, default=16)
    p.add_argument("--strategy", default="rcmp",
                   choices=("rcmp", "optimistic", "repl2", "repl3",
                            "hybrid"))
    p.add_argument("--speculation", action="store_true",
                   help="straggler speculation for this chain")
    p.add_argument("--pre-replicate", action="store_true",
                   help="straggler pre-replication for this chain")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-cache", action="store_true",
                   help="opt this chain out of the cross-run result "
                        "cache (no prefix adoption, no admission)")
    p.add_argument("--wait", action="store_true",
                   help="block until the chain finishes and print its "
                        "report")

    p = sub.add_parser("status",
                       help="query a running service (whole service, or "
                            "one chain with --id)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--id", default=None, metavar="CHAIN",
                   help="one chain's status instead of the service's")

    p = sub.add_parser("analyze",
                       help="utilization report from a recorded trace")
    p.add_argument("trace", help="trace file written by --trace")
    p.add_argument("--top", type=int, default=None,
                   help="only show the N busiest links")
    return parser


def _maybe_plot(name, module, args) -> None:
    from repro.analysis.plotting import line_plot

    if name == "fig2" and hasattr(module, "series"):
        series = module.series(args.scale, args.seed)
        print()
        print(line_plot(series, title="Fig. 2: CDF of new failures/day",
                        x_label="new failures per day"))
    elif name == "fig10" and hasattr(module, "curves"):
        curves = module.curves(args.scale, args.seed)
        from repro.experiments.fig10 import CHAIN_LENGTHS
        series = {k: (list(CHAIN_LENGTHS), list(v))
                  for k, v in curves.items()}
        print()
        print(line_plot(series, title="Fig. 10: slowdown vs chain length",
                        x_label="chain length (jobs)"))
    else:
        print("(no raw series exposed for this figure)")


def _traced(trace_path):
    """Context manager: record every run into ``trace_path`` (no-op when
    the path is falsy)."""
    from contextlib import nullcontext

    if not trace_path:
        return nullcontext(None)
    try:  # fail before the (possibly long) simulation, not after
        with open(trace_path, "w", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"rcmp-repro: cannot write trace file: {exc}")
    from repro.obs import RecordingTracer, tracing

    return tracing(RecordingTracer())


def _export_trace(tracer, trace_path) -> None:
    if tracer is None:
        return
    tracer.export(trace_path)
    print(f"trace written to {trace_path} "
          f"({len(tracer.events)} events; load in chrome://tracing, "
          f"or run: rcmp-repro analyze {trace_path})")


def _build_fault_input(args):
    """Combine --failures/--faults/--mtbf/--fault-seed into the run's
    fault input (None when no fault option was given)."""
    from dataclasses import replace

    from repro.faults import FaultModel

    if args.faults is None and args.mtbf is None \
            and args.fault_seed is None:
        return args.failures
    if args.failures is not None:
        raise SystemExit("rcmp-repro: --mtbf/--fault-seed require --faults "
                         "(or no plan at all), not the legacy --failures")
    try:
        model = FaultModel.parse(args.faults) if args.faults \
            else FaultModel()
        if args.mtbf is not None:
            model = replace(model, mtbf=args.mtbf)
        if args.fault_seed is not None:
            if not model.stochastic:
                raise ValueError("--fault-seed needs stochastic arrivals "
                                 "(--mtbf or an mtbf clause in --faults)")
            model = replace(model, seed=args.fault_seed)
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    return model


def _exec_fault_model(args):
    if not args.faults:
        return None
    from repro.faults import FaultModel

    try:
        return FaultModel.parse(args.faults)
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")


def _exec_process(args, chain, model, tracer):
    import tempfile
    from contextlib import nullcontext

    from repro.runtime import Coordinator, RuntimeConfig

    try:
        kwargs = {}
        if args.strategy == "hybrid":
            kwargs = {"hybrid_interval": args.hybrid_interval,
                      "hybrid_replication": args.hybrid_replication,
                      "hybrid_reclaim": args.hybrid_reclaim}
        config = RuntimeConfig(n_nodes=args.nodes, chain=chain,
                               heartbeat_interval=args.heartbeat_interval,
                               heartbeat_expiry=args.heartbeat_expiry,
                               strategy=args.strategy,
                               task_slots=args.task_slots,
                               fetch_parallelism=args.fetch_parallelism,
                               server_split_filter=not args.no_server_filter,
                               memory_budget=args.memory_budget * (1 << 20),
                               shared_memory=args.shared_memory,
                               speculation=args.speculation,
                               speculation_slowdown=args.speculation_slowdown,
                               pre_replicate=args.pre_replicate,
                               suspect_ratio=args.suspect_ratio,
                               suspect_window=args.suspect_window,
                               **kwargs)
        workctx = (nullcontext(args.workdir) if args.workdir
                   else tempfile.TemporaryDirectory(prefix="rcmp-exec-"))
        with workctx as workdir:
            with Coordinator(config, workdir, tracer=tracer,
                             fault_model=model,
                             fault_seed=args.fault_seed,
                             fault_time_scale=args.fault_scale) as coord:
                return coord.run_chain()
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")


def _exec_inproc(args, chain, model, tracer):
    """The in-process backend: LocalCluster + the shared recovery rules.

    Kills land at job boundaries — the backend has no wall clock, so a
    ``+offset`` in the plan is ignored and time-anchored triggers
    (``kill@t30``) are rejected."""
    import random
    import time

    from repro.localexec import LocalCluster
    from repro.localexec.recovery import recompute_job
    from repro.obs import NULL_TRACER
    from repro.runtime import RunReport, chain_checksum
    from repro.runtime.recovery import cascade_jobs

    if args.strategy != "rcmp":
        raise SystemExit("rcmp-repro: the inproc backend recovers with "
                         "rcmp only; use --backend process for "
                         f"--strategy {args.strategy}")
    if args.speculation or args.pre_replicate:
        raise SystemExit("rcmp-repro: speculation and pre-replication "
                         "run real backup attempts on worker processes; "
                         "use --backend process")
    by_job = {}
    if model is not None:
        if model.stochastic:
            raise SystemExit("rcmp-repro: the inproc backend executes "
                             "planned kills only; mtbf arrivals are "
                             "simulator-only")
        for ev in model.events:
            if ev.kind != "fail-stop":
                raise SystemExit("rcmp-repro: the inproc backend cannot "
                                 f"inject {ev.kind!r} faults")
            if ev.at_job is None:
                raise SystemExit("rcmp-repro: the inproc backend has no "
                                 "wall clock; anchor kills to jobs "
                                 "(kill@jobN) or use --backend process")
            by_job.setdefault(ev.at_job, []).append(ev)

    tracer = tracer if tracer is not None else NULL_TRACER
    rng = random.Random(args.fault_seed)
    cluster = LocalCluster(args.nodes, chain)
    t_chain = time.monotonic()
    tracer.bind(lambda: time.monotonic() - t_chain, label="inproc-runtime")
    deaths = []
    job_times = []

    def timed(job, kind, fn):
        t0 = time.monotonic()
        span = tracer.span("job", f"job-{job}", job=job, kind=kind)
        try:
            fn()
        finally:
            span.end()
        job_times.append((job, kind, time.monotonic() - t0))

    def recover_damage():
        # the cascade is a cut over the dependency graph (ascending is
        # topological, so damaged parents recompute before consumers)
        cascade = cascade_jobs(
            cluster.graph, cluster.done_jobs,
            (j for j, d in cluster.damage.items() if any(d.values())))
        for j in cascade:
            timed(j, "recompute", lambda j=j: recompute_job(cluster, j))

    span = tracer.span("chain", f"chain-x{chain.n_jobs}",
                       nodes=args.nodes, strategy="rcmp")
    try:
        for job in range(1, chain.n_jobs + 1):
            recover_damage()
            timed(job, "run", lambda: cluster.run_job(job))
            for ev in by_job.pop(job, ()):
                victim = ev.node_id
                if victim is None:
                    candidates = sorted(cluster.alive)
                    if len(candidates) <= 1:
                        continue  # never strand the chain
                    victim = rng.choice(candidates)
                if victim in cluster.alive and len(cluster.alive) > 1:
                    cluster.kill(victim)
                    deaths.append((time.monotonic() - t_chain, victim))
                    tracer.instant("cascade", "node-death", node=victim)
        recover_damage()
    finally:
        span.end(deaths=len(deaths))
    return RunReport(checksum=chain_checksum(cluster.final_output()),
                     job_times=job_times, deaths=deaths,
                     n_nodes=args.nodes, strategy="rcmp")


def _cmd_serve(args) -> int:
    import tempfile
    from contextlib import nullcontext

    from repro.localexec import LocalJobConfig
    from repro.runtime import ChainService, MTBFKills, RuntimeConfig

    try:
        config = RuntimeConfig(
            n_nodes=args.nodes, chain=LocalJobConfig(),
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_expiry=args.heartbeat_expiry,
            task_slots=args.task_slots,
            memory_budget=args.memory_budget * (1 << 20),
            shared_memory=args.shared_memory,
            speculation=args.speculation,
            pre_replicate=args.pre_replicate)
        faults = (MTBFKills(args.mtbf, seed=args.fault_seed,
                            min_alive=args.min_alive)
                  if args.mtbf is not None else None)
        workctx = (nullcontext(args.workdir) if args.workdir
                   else tempfile.TemporaryDirectory(prefix="rcmp-serve-"))
        cache_budget = (args.cache_budget * (1 << 20)
                        if args.cache_budget > 0 else None)
        with workctx as workdir:
            with ChainService(config, workdir, policy=args.policy,
                              max_concurrent=args.max_concurrent,
                              faults=faults,
                              replace_dead=args.replace_dead,
                              cache_budget=cache_budget) as service:
                port = service.serve(host=args.host, port=args.port)
                cache_note = (f"cache={args.cache_budget}MiB"
                              if cache_budget else "cache=off")
                print(f"chain service on {args.host}:{port}  "
                      f"nodes={args.nodes} slots={args.task_slots} "
                      f"policy={args.policy} "
                      f"max_concurrent={args.max_concurrent} "
                      f"{cache_note}",
                      flush=True)
                try:
                    service.shutdown_requested.wait()
                except KeyboardInterrupt:
                    pass
                print("shutting down (draining running chains)")
        return 0
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")


def _cmd_submit(args) -> int:
    from repro.runtime.service import request
    from repro.workloads import shape_dependencies

    try:
        dependencies = (shape_dependencies(args.dag)
                        if args.dag else None)
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    n_jobs = (len(dependencies) if dependencies is not None
              else args.jobs)
    payload = {
        "op": "submit",
        "tenant": args.tenant,
        "chain": {"n_jobs": n_jobs, "n_partitions": args.partitions,
                  "records_per_node": args.records,
                  "records_per_block": args.block,
                  "value_size": args.value_size, "seed": args.seed},
        "overrides": {"strategy": args.strategy},
    }
    if dependencies is not None:
        payload["chain"]["dependencies"] = [list(d)
                                            for d in dependencies]
    if args.speculation:
        payload["overrides"]["speculation"] = True
    if args.pre_replicate:
        payload["overrides"]["pre_replicate"] = True
    if args.no_cache:
        payload["no_cache"] = True
    try:
        chain_id = request(args.port, payload, host=args.host)["id"]
    except (OSError, RuntimeError) as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    print(f"submitted {chain_id}")
    if not args.wait:
        return 0
    try:
        job = request(args.port, {"op": "wait", "id": chain_id},
                      host=args.host, timeout=600.0)["job"]
    except (OSError, RuntimeError) as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    _print_job(job)
    return 0 if job["state"] == "done" else 1


def _print_job(job: dict) -> None:
    line = (f"{job['id']:8s} {job['tenant']:<10s} {job['state']:<8s} "
            f"{job['strategy']:<10s}")
    if job.get("cached_jobs"):
        line += f" cached={job['cached_jobs']}"
    report = job.get("report")
    if report:
        line += (f" wall={report['wall_time']:.3f}s "
                 f"deaths={len(report['deaths'])} "
                 f"checksum={report['checksum'][:16]}")
    if job.get("error"):
        line += f" error: {job['error']}"
    print(line)


def _cmd_status(args) -> int:
    from repro.runtime.service import request

    try:
        status = request(args.port, {"op": "status", "id": args.id},
                         host=args.host)["status"]
    except (OSError, RuntimeError) as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    if args.id is not None:
        _print_job(status)
        return 0
    print(f"policy={status['policy']} "
          f"alive={status['alive']} epoch={status['epoch']} "
          f"queued={status['queued']} running={status['running']} "
          f"(peak {status['running_peak']}) "
          f"deaths={len(status['deaths'])}")
    cache = status.get("cache")
    if cache:
        print(f"cache: hits={cache['hits']} misses={cache['misses']} "
              f"(rate {cache['hit_rate']}) evicted={cache['evictions']} "
              f"invalidated={cache['invalidated']} "
              f"entries={cache['entries']} "
              f"bytes={cache['bytes']}/{cache['budget_bytes']}")
    for job in status["jobs"]:
        _print_job(job)
    return 0


def _cmd_exec(args) -> int:
    from repro.localexec import LocalJobConfig
    from repro.workloads import shape_dependencies

    try:
        dependencies = (shape_dependencies(args.dag)
                        if args.dag else None)
        n_jobs = (len(dependencies) if dependencies is not None
                  else args.jobs)
        chain = LocalJobConfig(n_jobs=n_jobs,
                               n_partitions=args.partitions,
                               records_per_node=args.records,
                               records_per_block=args.block,
                               value_size=args.value_size,
                               split_ratio=args.split_ratio,
                               seed=args.seed,
                               dependencies=dependencies)
    except ValueError as exc:
        raise SystemExit(f"rcmp-repro: {exc}")
    model = _exec_fault_model(args)
    with _traced(args.trace) as tracer:
        if args.backend == "process":
            report = _exec_process(args, chain, model, tracer)
        else:
            report = _exec_inproc(args, chain, model, tracer)
    print(f"backend={args.backend}  nodes={report.n_nodes}  "
          f"strategy={report.strategy}")
    print(report.render())
    _export_trace(tracer, args.trace)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, module in sorted(ALL_FIGURES.items()):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.command in ALL_FIGURES:
        module = ALL_FIGURES[args.command]
        with _traced(args.trace) as tracer:
            report = module.run(scale=args.scale, seed=args.seed)
        print(report.render())
        if getattr(args, "plot", False):
            _maybe_plot(args.command, module, args)
        _export_trace(tracer, args.trace)
        return 0
    if args.command == "all":
        with _traced(args.trace) as tracer:
            for name in sorted(ALL_FIGURES):
                report = ALL_FIGURES[name].run(scale=args.scale,
                                               seed=args.seed)
                print(report.render())
                print()
        _export_trace(tracer, args.trace)
        return 0
    if args.command == "run":
        cluster = CLUSTERS[args.cluster]()
        if args.heartbeat_interval is not None \
                or args.heartbeat_expiry is not None:
            from dataclasses import replace

            overrides = {}
            if args.heartbeat_interval is not None:
                overrides["heartbeat_interval"] = args.heartbeat_interval
            if args.heartbeat_expiry is not None:
                overrides["heartbeat_expiry"] = args.heartbeat_expiry
            cluster = replace(cluster, **overrides)
        failures = _build_fault_input(args)
        if args.cluster == "tiny":
            chain = build_chain(n_jobs=args.jobs,
                                per_node_input=256 * (1 << 20),
                                block_size=64 * (1 << 20))
        else:
            chain = build_chain(n_jobs=args.jobs)
        with _traced(args.trace) as tracer:
            result = run_chain(cluster, STRATEGIES[args.strategy],
                               chain=chain, failures=failures,
                               seed=args.seed)
        print(result)
        for job in result.metrics.jobs:
            print(f"  job #{job.ordinal:<3d} {job.name:<14s} "
                  f"kind={job.kind:<9s} outcome={job.outcome:<8s} "
                  f"duration={job.duration:8.1f}s")
        _export_trace(tracer, args.trace)
        return 0
    if args.command == "exec":
        return _cmd_exec(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "analyze":
        import json

        from repro.analysis.utilization import report_from_file

        try:
            print(report_from_file(args.trace, top=args.top))
        except OSError as exc:
            print(f"rcmp-repro: cannot read trace file: {exc}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"rcmp-repro: {args.trace} is not a recorded trace "
                  f"({exc})", file=sys.stderr)
            return 2
        return 0
    return 1  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
