"""Fig. 9: double failures on STIC (10 nodes, SLOTS 1-1, 40 GB).

FAIL X,Y injects one kill at started-job X and one at started-job Y;
the comparison is RCMP (split-8 and no-split) against Hadoop REPL-3 only —
REPL-2 cannot protect against all double failures.  Paper findings: RCMP
with splitting beats REPL-3 in every case; splitting matters most for
FAIL 7,14 (the most recomputation); the nested FAIL 4,7 (second failure
during recovery of the first) is handled seamlessly.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentReport
from repro.core import strategies
from repro.core.strategies import rcmp
from repro.experiments.common import check_scale, execute, stic_testbed

#: the paper's five double-failure cases
CASES = ("2,2", "7,7", "7,14", "2,4", "4,7")

#: approximate slowdown factors from the figure (vs the fastest run of
#: each case); RCMP-S8 is ~1.0 everywhere except where noted
PAPER = {
    ("2,2", "HADOOP REPL-3"): 1.25,
    ("7,7", "HADOOP REPL-3"): 1.2,
    ("7,14", "HADOOP REPL-3"): 1.05,
    ("7,14", "RCMP NO-SPLIT"): 1.3,
    ("2,4", "HADOOP REPL-3"): 1.3,
    ("2,4", "RCMP NO-SPLIT"): 1.1,
    ("4,7", "HADOOP REPL-3"): 1.2,
    ("4,7", "RCMP NO-SPLIT"): 1.1,
}


def run(scale: str = "bench", seed: int = 0,
        cases=CASES) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport("Fig. 9", "Double failures: RCMP vs REPL-3")
    bed = stic_testbed(scale, (1, 1))
    split_ratio = 8 if scale != "ci" else None
    for case in cases:
        runs = {
            "RCMP S8": execute(bed, rcmp(split_ratio=split_ratio),
                               failures=case, seed=seed),
            "RCMP NO-SPLIT": execute(bed, strategies.RCMP_NOSPLIT,
                                     failures=case, seed=seed),
            "HADOOP REPL-3": execute(bed, strategies.REPL3,
                                     failures=case, seed=seed),
        }
        fastest = min(r.total_runtime for r in runs.values())
        for name, result in runs.items():
            paper_key = "RCMP NO-SPLIT" if name == "RCMP NO-SPLIT" else name
            report.add(
                f"FAIL {case} {name}", result.total_runtime / fastest,
                paper=PAPER.get((case, paper_key)),
                note="" if result.completed
                else f"FAILED: {result.failure_reason}")
    report.notes.append("REPL-2 omitted: cannot protect against all double "
                        "failures (paper §V-B)")
    report.notes.append("FAIL 4,7 is the nested case: the second failure "
                        "lands during recomputation for the first")
    return report
