"""Survivability under stochastic faults: MTBF vs completion probability.

Not a paper figure — a robustness extension.  The paper only studies
planned single/double kills (Figs. 8-9); this sweep drives the
generalized fault model's Poisson arrival process (mixed fail-stop and
crash-recover events) against each strategy and measures, per MTBF:

* the fraction of seeded runs that complete the chain, and
* the runtime distribution (p10/p50/p90) of the completed runs.

Every recomputing strategy runs with graceful-degradation caps
(``max_cascade_depth`` + bounded restarts with exponential backoff), and
OPTIMISTIC with a restart budget, so *every* stochastic run terminates:
either ``completed`` or with a ``failure_reason`` — never an infinite
recompute/restart loop.  That termination property is asserted here.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentReport
from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.experiments.common import check_scale
from repro.faults import FaultModel
from repro.workloads.chain import build_chain
from repro.cluster.spec import MB

#: runs per (MTBF, strategy) cell, by scale
RUNS = {"ci": 3, "bench": 5, "paper": 10}

#: MTBF sweep points (seconds), by scale
MTBFS = {
    "ci": (30.0, 120.0),
    "bench": (600.0, 2400.0, 9600.0),
    "paper": (300.0, 600.0, 1200.0, 2400.0, 4800.0, 9600.0),
}


def _strategy_set() -> dict[str, strategies.Strategy]:
    degrade = dict(max_cascade_depth=6, max_restarts=4, restart_backoff=1.0)
    return {
        "RCMP": strategies.RCMP.with_degradation(**degrade),
        "RCMP HYBRID": strategies.HYBRID.with_degradation(**degrade),
        "HADOOP REPL-2": strategies.REPL2,
        "OPTIMISTIC": strategies.OPTIMISTIC.with_degradation(
            max_restarts=4, restart_backoff=1.0),
    }


def _testbed(scale: str):
    if scale == "ci":
        return presets.tiny(5), build_chain(
            n_jobs=4, per_node_input=256 * MB, block_size=64 * MB)
    return presets.stic(), build_chain(n_jobs=7)


def _fault_model(mtbf: float) -> FaultModel:
    # half crash-recover (45 s outage, data intact), half permanent kills
    return FaultModel.parse(f"mtbf={mtbf}:transient,kill,down=45,max=24")


def sweep(scale: str = "bench", seed: int = 0) -> dict:
    """Raw sweep data: {(mtbf, strategy): {"completed": [...],
    "runtimes": [...], "restarts": int}}."""
    check_scale(scale)
    cluster, chain = _testbed(scale)
    runs = RUNS[scale]
    cells: dict = {}
    for mtbf in MTBFS[scale]:
        for name, strategy in _strategy_set().items():
            completed, runtimes, restarts = [], [], 0
            for k in range(runs):
                result = run_chain(cluster, strategy, chain=chain,
                                   failures=_fault_model(mtbf),
                                   seed=seed * 1000 + k)
                # the termination guarantee the degradation caps buy
                assert result.completed or result.failure_reason, (
                    f"mtbf={mtbf} {name} seed={seed * 1000 + k}: run "
                    f"ended in neither completion nor a failure reason")
                completed.append(result.completed)
                restarts += result.restarts
                if result.completed:
                    runtimes.append(result.total_runtime)
            cells[(mtbf, name)] = {"completed": completed,
                                   "runtimes": runtimes,
                                   "restarts": restarts}
    return cells


def run(scale: str = "bench", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Survivability", "MTBF vs completion probability (extension)")
    cells = sweep(scale, seed)
    n = RUNS[scale]
    for (mtbf, name), cell in cells.items():
        frac = sum(cell["completed"]) / len(cell["completed"])
        if cell["runtimes"]:
            p10, p50, p90 = np.percentile(cell["runtimes"], (10, 50, 90))
            note = (f"runtime p10/p50/p90 = {p10:.0f}/{p50:.0f}/{p90:.0f} s"
                    f"; restarts={cell['restarts']}")
        else:
            note = f"no run completed; restarts={cell['restarts']}"
        report.add(f"MTBF {mtbf:.0f}s {name}", frac,
                   unit="frac", note=f"n={n}; {note}")
    report.notes.append(
        "fault mix: Poisson arrivals, 50% crash-recover (45 s outage, "
        "data intact) / 50% permanent kills, capped at 24 events")
    report.notes.append(
        "RCMP variants run with max_cascade_depth=6 and a 4-restart "
        "budget (exponential backoff); OPTIMISTIC with the same budget")
    return report
