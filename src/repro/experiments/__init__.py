"""Experiment harness: one module per evaluation figure (Figs. 2, 8-14).

Each module exposes ``run(scale=...) -> ExperimentReport``.  Scales:

* ``"ci"`` — tiny clusters/inputs, seconds of wall time; used by tests.
* ``"bench"`` — STIC at full paper scale, DCO scaled down (the default for
  the benchmark harness).
* ``"paper"`` — both testbeds at the paper's full scale (minutes of wall
  time for the DCO columns).
"""

from repro.experiments import (
    common,
    fig2,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    ratios,
    survivability,
)

ALL_FIGURES = {
    "fig2": fig2,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "ratios": ratios,
    "survivability": survivability,
}

__all__ = ["ALL_FIGURES", "common", "fig2", "fig8", "fig9", "fig10",
           "fig11", "fig12", "fig13", "fig14", "ratios", "survivability"]
