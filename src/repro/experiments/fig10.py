"""Fig. 10: extrapolation to longer chains (numerical analysis).

The paper extrapolates the 7-job STIC measurements (SLOTS 2-2, failure at
job 2) to chains of 10-100 jobs, composing measured per-job averages:
full-cluster jobs before the failure, recomputation with 9 nodes, and
post-failure jobs with 9 nodes.  Finding: RCMP's relative benefit is
essentially flat in chain length — the early-failure speed-up reduces to
the ratio of a baseline's 9-node job time to RCMP's.
"""

from __future__ import annotations

from repro.analysis.extrapolation import extract_averages, extrapolate_chain_length
from repro.analysis.reporting import ExperimentReport
from repro.core import strategies
from repro.core.strategies import rcmp
from repro.experiments.common import check_scale, execute, stic_testbed

CHAIN_LENGTHS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)

#: Fig. 10's roughly flat levels for SLOTS 2-2 STIC, failure at job 2
PAPER_LEVEL = {"HADOOP REPL-2": 1.3, "HADOOP REPL-3": 1.9}


def run(scale: str = "bench", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 10", "Slowdown vs chain length (failure at job 2, "
        "numerical analysis from measured 7-job averages)")
    bed = stic_testbed(scale, (2, 2))
    fail_at = 2
    split_ratio = 8 if scale != "ci" else None
    rcmp_result = execute(bed, rcmp(split_ratio=split_ratio),
                          failures=str(fail_at), seed=seed)
    baselines = {
        "HADOOP REPL-2": execute(bed, strategies.REPL2,
                                 failures=str(fail_at), seed=seed),
        "HADOOP REPL-3": execute(bed, strategies.REPL3,
                                 failures=str(fail_at), seed=seed),
    }
    rcmp_avgs = extract_averages(rcmp_result)
    base_avgs = {name: extract_averages(res)
                 for name, res in baselines.items()}
    curves = extrapolate_chain_length(rcmp_avgs, base_avgs,
                                      CHAIN_LENGTHS, fail_at=fail_at)
    for name in ("HADOOP REPL-2", "HADOOP REPL-3"):
        curve = curves[name]
        report.add(f"{name} slowdown @ L=10", float(curve[0]),
                   paper=PAPER_LEVEL[name])
        report.add(f"{name} slowdown @ L=50", float(curve[4]),
                   paper=PAPER_LEVEL[name])
        report.add(f"{name} slowdown @ L=100", float(curve[-1]),
                   paper=PAPER_LEVEL[name])
        flatness = float(curve.max() - curve.min())
        report.add(f"{name} spread over L (max-min)", flatness, paper=None,
                   note="paper: curves are nearly flat in chain length")
    return report


def curves(scale: str = "bench", seed: int = 0):
    """Raw {strategy: slowdown array} over CHAIN_LENGTHS, for plotting."""
    bed = stic_testbed(scale, (2, 2))
    split_ratio = 8 if scale != "ci" else None
    rcmp_result = execute(bed, rcmp(split_ratio=split_ratio), failures="2",
                          seed=seed)
    baselines = {
        "HADOOP REPL-2": execute(bed, strategies.REPL2, failures="2",
                                 seed=seed),
        "HADOOP REPL-3": execute(bed, strategies.REPL3, failures="2",
                                 seed=seed),
    }
    return extrapolate_chain_length(
        extract_averages(rcmp_result),
        {k: extract_averages(v) for k, v in baselines.items()},
        CHAIN_LENGTHS, fail_at=2)
