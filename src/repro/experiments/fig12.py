"""Fig. 12: hot-spot mitigation — mapper running-time CDFs (STIC 2-2).

During recomputation without splitting, every recomputed mapper of the next
job reads its input from the single node that regenerated the lost reducer
output; those concurrent reads contend on one disk and mapper times balloon
(up to ~80 s in the paper's figure).  Splitting spreads the regenerated
data, so the recomputed mappers read from many disks and stay fast.  The
paper also reports the reducer-side effect: median recomputed reducer 103 s
without splitting vs 53 s with.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import percentile
from repro.analysis.reporting import ExperimentReport
from repro.core import strategies
from repro.core.strategies import rcmp
from repro.experiments.common import check_scale, execute, stic_testbed

#: paper's reducer medians during recomputation (seconds)
PAPER_REDUCER_MEDIAN = {"split": 53.0, "nosplit": 103.0}


def mapper_cdf_data(scale: str = "bench", seed: int = 0):
    """Pooled recomputation mapper/reducer durations for both variants."""
    bed = stic_testbed(scale, (2, 2))
    split_ratio = 8 if scale != "ci" else None
    failures = "7" if scale != "ci" else "3"
    out = {}
    for name, strategy in (("split", rcmp(split_ratio=split_ratio)),
                           ("nosplit", strategies.RCMP_NOSPLIT)):
        result = execute(bed, strategy, failures=failures, seed=seed)
        out[name] = {
            # only recomputation runs: the paper pools the recomputation
            # mappers of the Fig. 8c executions (the restarted job 7 runs
            # at full width and is not hot-spotted)
            "mappers": result.metrics.mapper_durations(("recompute",)),
            "reducers": result.metrics.reducer_durations(("recompute",)),
        }
    return out


def run(scale: str = "bench", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 12", "Hot-spots: mapper running times during recomputation")
    data = mapper_cdf_data(scale, seed)
    med_split = percentile(data["split"]["mappers"], 50)
    med_nosplit = percentile(data["nosplit"]["mappers"], 50)
    p90_split = percentile(data["split"]["mappers"], 90)
    p90_nosplit = percentile(data["nosplit"]["mappers"], 90)
    report.add("median recomputation mapper, SPLIT-8 (s)", med_split)
    report.add("median recomputation mapper, NO-SPLIT (s)", med_nosplit,
               note="hot-spot: all mappers read one node's disk")
    report.add("p90 recomputation mapper, SPLIT-8 (s)", p90_split)
    report.add("p90 recomputation mapper, NO-SPLIT (s)", p90_nosplit,
               note="paper's NO-SPLIT tail reaches ~80 s")
    report.add("mapper slowdown factor NO-SPLIT/SPLIT (median)",
               med_nosplit / med_split, paper=None,
               note="paper CDF: NO-SPLIT shifted far right of SPLIT")
    for name in ("split", "nosplit"):
        reducers = data[name]["reducers"]
        if reducers.size:
            report.add(f"median recomputation reducer, {name.upper()} (s)",
                       percentile(reducers, 50),
                       paper=PAPER_REDUCER_MEDIAN[name])
    report.notes.append("distributions pooled over all recomputation runs "
                        "of a failure-at-job-7 execution (STIC SLOTS 2-2)")
    return report
