"""Fig. 14: speed-up vs number of mapper waves during recomputation (§V-D).

The reduce side is pinned to one wave in both the initial run and the
recomputation; the number of mapper waves executed during recomputation is
swept by forcing extra mapper re-execution beyond the minimum (the paper
varies how much map-side work the recomputation performs).

Findings: under SLOW SHUFFLE the speed-up barely moves with mapper waves —
finishing the maps earlier cannot shrink the network-bottlenecked shuffle;
under FAST SHUFFLE the shuffle ends shortly after the last map output, so
fewer recomputed mapper waves translate near-linearly into speed-up.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import ExperimentReport
from repro.core.strategies import Strategy
from repro.experiments.common import check_scale, stic_testbed, execute
from repro.workloads.chain import build_chain
from repro.cluster.presets import STIC_PER_NODE_INPUT
from repro.cluster.spec import MB

#: mapper waves to force during recomputation (paper x-axis: 2..18)
WAVE_POINTS = (2, 6, 10, 14, 18)

#: approximate paper speed-ups at those wave counts
PAPER = {
    "FAST SHUFFLE": {2: 2.2, 6: 1.8, 10: 1.5, 14: 1.25, 18: 1.1},
    "SLOW SHUFFLE": {2: 1.15, 6: 1.1, 10: 1.05, 14: 1.0, 18: 1.0},
}

NOSPLIT = Strategy("RCMP NO-SPLIT", replication=1, recompute=True,
                   split_ratio=1)


def _testbed(scale: str, slow: bool):
    bed = stic_testbed(scale, (1, 1), n_jobs=2)
    if scale == "ci":
        chain = build_chain(n_jobs=2, per_node_input=256 * MB,
                            block_size=64 * MB, reducers_per_node=1.0)
    else:
        chain = build_chain(n_jobs=2, per_node_input=STIC_PER_NODE_INPUT,
                            reducers_per_node=1.0)
    cluster = bed.cluster.with_slow_shuffle(10.0) if slow else bed.cluster
    return dataclasses.replace(bed, cluster=cluster, chain=chain)


def job_speedup(result) -> float:
    initial = result.metrics.job_durations("initial")
    recomps = result.metrics.job_durations("recompute")
    if recomps.size == 0:
        raise RuntimeError("no recomputation occurred")
    return float(np.mean(initial) / np.mean(recomps))


def waves_to_mappers(bed, waves: int) -> int:
    """Mapper count that occupies ``waves`` waves on the survivors."""
    survivors = bed.cluster.n_nodes - 1
    slots = bed.cluster.node.mapper_slots
    return waves * survivors * slots


def run(scale: str = "bench", seed: int = 0,
        wave_points=WAVE_POINTS) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 14", "Speed-up vs mapper waves during recomputation")
    if scale == "ci":
        wave_points = (1, 2)
    for label, slow in (("FAST SHUFFLE", False), ("SLOW SHUFFLE", True)):
        bed = _testbed(scale, slow)
        for waves in wave_points:
            forced = waves_to_mappers(bed, waves)
            result = execute(bed, NOSPLIT, failures="2", seed=seed,
                             min_rerun_mappers=forced)
            report.add(f"{label} {waves} mapper waves", job_speedup(result),
                       paper=PAPER[label].get(waves))
    report.notes.append("1 reducer wave in both runs; mapper waves forced "
                        "by re-executing extra mappers beyond the minimum")
    return report
