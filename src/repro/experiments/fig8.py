"""Fig. 8: overall system comparison (slowdown factors).

(a) no failure, (b) single failure early (job 2), (c) single failure late
(job 7), on STIC (SLOTS 1-1 and 2-2, 40 GB) and DCO (SLOTS 1-1, 1.2 TB).
Results are normalized to the fastest run in each experiment, matching the
paper's y-axis.  The paper's split ratios: 8 on STIC, 59 on DCO.

Paper reference values (read off the figure):
* 8a: REPL-2 ~1.3x, REPL-3 ~1.65-2.0x (2.0 for SLOTS 2-2 on STIC, where
  replication + doubled slots causes extra contention); OPTIMISTIC == RCMP.
* 8b: RCMP SPLIT fastest; NO-SPLIT slightly behind; OPTIMISTIC ~1.45x.
* 8c: NO-SPLIT gap grows (6 recomputations); OPTIMISTIC ~2.23x; the hybrid
  variant (REPL-2 every 5 jobs) lands at 0.93 of RCMP SPLIT on STIC 1-1.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentReport
from repro.core import strategies
from repro.core.strategies import rcmp
from repro.experiments.common import (
    check_scale,
    dco_testbed,
    execute,
    slowdown_factors,
    stic_testbed,
)

#: paper slowdown factors per case (approximate figure readings), keyed by
#: (panel, strategy, testbed-label-prefix)
PAPER = {
    ("a", "HADOOP REPL-2"): 1.30,
    ("a", "HADOOP REPL-3"): 1.75,
    ("a", "OPTIMISTIC"): 1.0,
    ("b", "RCMP NO-SPLIT"): 1.08,
    ("b", "HADOOP REPL-2"): 1.25,
    ("b", "HADOOP REPL-3"): 1.6,
    ("b", "OPTIMISTIC"): 1.45,
    ("c", "RCMP NO-SPLIT"): 1.2,
    ("c", "HADOOP REPL-2"): 1.15,
    ("c", "HADOOP REPL-3"): 1.45,
    ("c", "OPTIMISTIC"): 2.23,
}

FAILURES = {"a": None, "b": "2", "c": "7"}


def _testbeds(scale: str):
    beds = [("STIC 1-1", stic_testbed(scale, (1, 1)), 8),
            ("STIC 2-2", stic_testbed(scale, (2, 2)), 8)]
    if scale == "bench":
        # trimmed DCO column: 24 nodes x 5 GB; strategy orderings are
        # insensitive to the cut, wall time is not
        beds.append(("DCO 1-1", dco_testbed(scale, (1, 1), n_nodes=24), 23))
    elif scale == "paper":
        beds.append(("DCO 1-1", dco_testbed(scale, (1, 1)), 59))
    return beds


def run(scale: str = "bench", seed: int = 0,
        panels: str = "abc") -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 8", "RCMP vs Hadoop vs OPTIMISTIC (slowdown factors)")
    for panel in panels:
        failures = FAILURES[panel]
        for bed_name, bed, split in _testbeds(scale):
            split_ratio = split if scale != "ci" else None
            runs = {
                "RCMP SPLIT": execute(bed, rcmp(split_ratio=split_ratio),
                                      failures=failures, seed=seed),
                "RCMP NO-SPLIT": execute(bed, strategies.RCMP_NOSPLIT,
                                         failures=failures, seed=seed),
                "HADOOP REPL-2": execute(bed, strategies.REPL2,
                                         failures=failures, seed=seed),
                "HADOOP REPL-3": execute(bed, strategies.REPL3,
                                         failures=failures, seed=seed),
                "OPTIMISTIC": execute(bed, strategies.OPTIMISTIC,
                                      failures=failures, seed=seed),
            }
            if panel == "a":
                # no failure: SPLIT and NO-SPLIT are the same system
                runs.pop("RCMP NO-SPLIT")
            factors = slowdown_factors(
                {k: v.total_runtime for k, v in runs.items()})
            for name, factor in sorted(factors.items(), key=lambda kv: kv[1]):
                report.add(f"8{panel} [{bed_name}] {name}", factor,
                           paper=PAPER.get((panel, name)),
                           note="" if runs[name].completed else "FAILED")
            if panel == "c" and bed_name == "STIC 1-1":
                hybrid = execute(
                    bed, rcmp(split_ratio=split_ratio, hybrid_interval=5),
                    failures=failures, seed=seed)
                rcmp_time = runs["RCMP SPLIT"].total_runtime
                report.add(f"8c [{bed_name}] RCMP HYBRID-5 (vs RCMP SPLIT)",
                           hybrid.total_runtime / rcmp_time, paper=0.93,
                           note="paper: hybrid = 0.93 of RCMP at 8c")
    report.notes.append(
        "slowdown factor = runtime / fastest runtime per experiment")
    return report
