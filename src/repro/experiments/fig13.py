"""Fig. 13: speed-up from fewer reducer waves during recomputation (§V-D).

To isolate the reduce side, no map outputs are reused (all mappers are
recomputed) and splitting is off.  The initial run computes 10/20/40
reducers with 1 reducer slot per node (1/2/4 waves); on recomputation only
the failed node's reducers (1/2/4 of them) remain and all fit in one wave.

FAST SHUFFLE is the plain STIC network; SLOW SHUFFLE adds a 10 s delay to
the end of every shuffle transfer.  Paper findings: SLOW's speed-up grows
linearly with the initial/recomputation wave ratio (every initial wave
costs the same, shuffle-dominated); FAST grows sub-linearly because only
the first initial wave overlaps the map phase and is the most expensive.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.reporting import ExperimentReport
from repro.core.strategies import Strategy
from repro.experiments.common import check_scale, execute, stic_testbed
from repro.workloads.chain import build_chain
from repro.cluster.presets import STIC_PER_NODE_INPUT
from repro.cluster.spec import MB

WAVE_RATIOS = (1, 2, 4)

#: approximate paper values: speed-up at wave ratios 1:1 / 2:1 / 4:1
PAPER = {
    "FAST SHUFFLE": {1: 1.3, 2: 2.0, 4: 2.7},
    "SLOW SHUFFLE": {1: 1.1, 2: 2.0, 4: 3.8},
}

#: RCMP without splitting and without map-output reuse (paper's isolation)
NO_REUSE = Strategy("RCMP NO-SPLIT NO-REUSE", replication=1, recompute=True,
                    split_ratio=1, reuse_map_outputs=False)


def _testbed(scale: str, slow: bool, reducers_per_node: float):
    if scale == "ci":
        bed = stic_testbed(scale, (1, 1), n_jobs=2)
        chain = build_chain(n_jobs=2, per_node_input=256 * MB,
                            block_size=64 * MB,
                            reducers_per_node=reducers_per_node)
        cluster = bed.cluster
    else:
        bed = stic_testbed(scale, (1, 1), n_jobs=2)
        chain = build_chain(n_jobs=2, per_node_input=STIC_PER_NODE_INPUT,
                            reducers_per_node=reducers_per_node)
        cluster = bed.cluster
    if slow:
        cluster = cluster.with_slow_shuffle(10.0)
    return dataclasses.replace(bed, cluster=cluster, chain=chain)


def job_speedup(result) -> float:
    initial = result.metrics.job_durations("initial")
    recomps = result.metrics.job_durations("recompute")
    if recomps.size == 0:
        raise RuntimeError("no recomputation occurred")
    return float(np.mean(initial) / np.mean(recomps))


def run(scale: str = "bench", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 13", "Speed-up vs reducer waves (initial:recomputation)")
    for label, slow in (("FAST SHUFFLE", False), ("SLOW SHUFFLE", True)):
        for waves in WAVE_RATIOS:
            bed = _testbed(scale, slow, reducers_per_node=float(waves))
            # single failure during the last job; its predecessor is
            # recomputed with all mappers re-executed (no reuse)
            result = execute(bed, NO_REUSE, failures="2", seed=seed)
            report.add(f"{label} waves {waves}:1", job_speedup(result),
                       paper=PAPER[label].get(waves))
    report.notes.append("no map-output reuse, no splitting; reducer slots "
                        "= 1 per node; recomputed reducers fit in 1 wave")
    report.notes.append("paper: SLOW scales linearly with the wave ratio; "
                        "FAST sub-linearly (first wave overlaps the maps)")
    return report
