"""Fig. 11: recomputation speed-up vs number of nodes (DCO, 20 GB/node).

The per-node work stays constant while the node count grows 12 -> 60; after
a single failure the 20 GB that lived on the failed node is recomputed.
"Speed-up" is the ratio of the initial run time of a job to the time of its
recomputation run.  The paper's reducer split ratio is N-1.

Findings: without splitting the speed-up is nearly flat (~2-3x, from map
reuse and fewer map waves only — one node still recomputes the whole lost
reducer); with splitting it grows strongly with N (~5x at 12 nodes to
~15-20x at 60).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentReport
from repro.core import strategies
from repro.experiments.common import check_scale, dco_testbed, execute

NODE_COUNTS = (12, 24, 36, 48, 60)

#: approximate speed-ups read off the paper's figure
PAPER_SPLIT = {12: 5.0, 24: 8.0, 36: 11.0, 48: 13.0, 60: 15.0}
PAPER_NOSPLIT = {12: 2.0, 24: 2.5, 36: 2.5, 48: 3.0, 60: 3.0}


def speedup(result) -> float:
    """Initial-run duration over average recomputation-run duration."""
    initial = result.metrics.job_durations("initial")
    recomps = result.metrics.job_durations("recompute")
    if recomps.size == 0:
        raise RuntimeError("run had no recomputations")
    return float(np.mean(initial) / np.mean(recomps))


def run(scale: str = "bench", seed: int = 0,
        node_counts=NODE_COUNTS) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 11", "Recomputation speed-up vs cluster size (split = N-1)")
    if scale == "ci":
        node_counts = (4, 6)
    for n in node_counts:
        bed = dco_testbed(scale, (1, 1), n_jobs=3, n_nodes=n)
        # fail late so recomputations exist; constant per-node work
        split = execute(bed, strategies.RCMP, failures="3", seed=seed)
        nosplit = execute(bed, strategies.RCMP_NOSPLIT, failures="3",
                          seed=seed)
        report.add(f"N={n} RCMP SPLIT", speedup(split),
                   paper=PAPER_SPLIT.get(n))
        report.add(f"N={n} RCMP NO-SPLIT", speedup(nosplit),
                   paper=PAPER_NOSPLIT.get(n))
    report.notes.append("speed-up = mean initial job time / mean "
                        "recomputation run time, per-node work constant")
    return report
