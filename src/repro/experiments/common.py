"""Shared experiment plumbing: scales, cluster/chain configs, run helpers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import presets
from repro.cluster.presets import DCO_PER_NODE_INPUT, STIC_PER_NODE_INPUT
from repro.cluster.spec import GB, MB, ClusterSpec
from repro.core.middleware import ChainResult, run_chain
from repro.core.strategies import Strategy
from repro.workloads.chain import ChainSpec, build_chain

SCALES = ("ci", "bench", "paper")


@dataclass(frozen=True)
class TestbedConfig:
    """A (cluster, chain) pair at a chosen scale."""

    label: str
    cluster: ClusterSpec
    chain: ChainSpec


def check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def stic_testbed(scale: str, slots: tuple[int, int] = (1, 1),
                 n_jobs: int = 7) -> TestbedConfig:
    """STIC: 10 nodes x 4 GB (40 GB total) at bench/paper scale."""
    check_scale(scale)
    if scale == "ci":
        cluster = presets.tiny(4, slots)
        chain = build_chain(n_jobs=min(n_jobs, 3),
                            per_node_input=256 * MB, block_size=64 * MB)
    else:
        cluster = presets.stic(slots)
        chain = build_chain(n_jobs=n_jobs,
                            per_node_input=STIC_PER_NODE_INPUT)
    return TestbedConfig(f"SLOTS {slots[0]}-{slots[1]}, STIC, 40GB",
                         cluster, chain)


def dco_testbed(scale: str, slots: tuple[int, int] = (1, 1),
                n_jobs: int = 7, n_nodes: int = 60) -> TestbedConfig:
    """DCO: 60 nodes x 20 GB (1.2 TB total) at paper scale; the bench scale
    trims the node count and per-node input to bound wall time (the
    strategy orderings are insensitive to both)."""
    check_scale(scale)
    if scale == "ci":
        cluster = presets.tiny(5, slots)
        chain = build_chain(n_jobs=min(n_jobs, 3),
                            per_node_input=256 * MB, block_size=64 * MB)
    elif scale == "bench":
        cluster = presets.dco(slots, n_nodes=n_nodes)
        chain = build_chain(n_jobs=n_jobs, per_node_input=5 * GB)
    else:
        cluster = presets.dco(slots, n_nodes=n_nodes)
        chain = build_chain(n_jobs=n_jobs,
                            per_node_input=DCO_PER_NODE_INPUT)
    return TestbedConfig(f"SLOTS {slots[0]}-{slots[1]}, DCO, 1.2TB",
                         cluster, chain)


def execute(testbed: TestbedConfig, strategy: Strategy,
            failures=None, seed: int = 0, **kw) -> ChainResult:
    """Run one chain execution on a testbed."""
    return run_chain(testbed.cluster, strategy, chain=testbed.chain,
                     failures=failures, seed=seed, **kw)


def slowdown_factors(results: dict[str, float]) -> dict[str, float]:
    """Normalize runtimes to the fastest run (the paper's 'slowdown
    factor' y-axis in Figs. 8-10)."""
    fastest = min(results.values())
    return {name: value / fastest for name, value in results.items()}
