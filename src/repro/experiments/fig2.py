"""Fig. 2: CDF of new failures per day for the STIC and SUG@R clusters.

The paper's point (§III-A): at moderate cluster scale, failure days are the
exception — only 17 % (STIC) / 12 % (SUG@R) of trace days show any new
failure, so paying replication's cost on *every* run is unwarranted.  We
regenerate the CDF from synthetic traces calibrated to those statistics.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import ExperimentReport
from repro.cluster.traces import STIC_TRACE, SUGAR_TRACE, generate_trace
from repro.experiments.common import check_scale

#: CDF values the paper's figure shows at 0 failures/day (100% - the
#: failure-day fraction quoted in §III-A).
PAPER_CDF_AT_ZERO = {"STIC": 83.0, "SUG@R": 88.0}


def run(scale: str = "bench", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Fig. 2", "CDF of new failures per day (synthetic Rice traces)")
    rng = np.random.default_rng(seed)
    for config in (STIC_TRACE, SUGAR_TRACE):
        trace = generate_trace(config, rng)
        x, f = trace.cdf()
        report.add(f"{config.name}: CDF at 0 failures/day (%)",
                   float(f[0]), paper=PAPER_CDF_AT_ZERO[config.name])
        report.add(f"{config.name}: CDF at 5 failures/day (%)",
                   float(f[min(5, len(f) - 1)]), paper=None,
                   note="long tail: rare mass-outage days")
        report.add(f"{config.name}: max failures in one day",
                   float(x[-1]), paper=None,
                   note="paper's x-axis extends to ~40")
        report.add(f"{config.name}: mean days between failure days",
                   trace.mean_time_between_failure_days(), paper=None)
    report.notes.append(
        "original traces are offline-unavailable; the generator is "
        "calibrated to the fractions the paper quotes in §III-A")
    return report


def series(scale: str = "bench", seed: int = 0):
    """Raw (x, F) series per cluster, for plotting."""
    rng = np.random.default_rng(seed)
    out = {}
    for config in (STIC_TRACE, SUGAR_TRACE):
        trace = generate_trace(config, rng)
        out[config.name] = trace.cdf()
    return out
