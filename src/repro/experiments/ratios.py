"""Input:shuffle:output ratio sweep (paper §V-A's prediction).

The paper evaluates the sort-like 1/1/1 ratio and predicts that "the
relative benefits of RCMP vs Hadoop are expected to increase when the job
output is relatively larger compared to the input and shuffle (i.e. ratios
of the form x:y:z where z > y and/or z > x, encountered in jobs like Pig
Cogroup or creating a web index)".  Replication cost scales with *output*
bytes, so output-heavy jobs pay it hardest.  This experiment sweeps the
ratio and measures REPL-3's failure-free slowdown over RCMP.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentReport
from repro.cluster.presets import STIC_PER_NODE_INPUT
from repro.cluster.spec import MB
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.experiments.common import check_scale, stic_testbed
from repro.workloads.chain import build_chain

#: (label, map_output_ratio, reduce_output_ratio): shuffle = x*input,
#: output = z*shuffle
RATIOS = (
    ("1:1:0.5 (filter-like)", 1.0, 0.5),
    ("1:1:1 (sort, the paper's job)", 1.0, 1.0),
    ("1:1:2 (cogroup-like)", 1.0, 2.0),
    ("1:1:4 (index-building-like)", 1.0, 4.0),
)


def run(scale: str = "bench", seed: int = 0) -> ExperimentReport:
    check_scale(scale)
    report = ExperimentReport(
        "Ratio sweep", "REPL-3 failure-free slowdown vs output weight "
        "(§V-A prediction; no paper figure)")
    bed = stic_testbed(scale, (1, 1), n_jobs=3)
    per_node = 256 * MB if scale == "ci" else STIC_PER_NODE_INPUT
    block = 64 * MB if scale == "ci" else bed.chain.block_size
    for label, x, z in RATIOS:
        chain = build_chain(n_jobs=3, per_node_input=per_node,
                            block_size=block, ratios=(x, z))
        rcmp = run_chain(bed.cluster, strategies.RCMP, chain=chain,
                         seed=seed)
        repl3 = run_chain(bed.cluster, strategies.REPL3, chain=chain,
                          seed=seed)
        report.add(f"{label}: REPL-3 / RCMP",
                   repl3.total_runtime / rcmp.total_runtime)
    report.notes.append("the paper predicts this slowdown grows with the "
                        "output weight z; replication cost is per output "
                        "byte")
    return report
