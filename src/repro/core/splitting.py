"""Reducer splitting for recomputation runs (paper §IV-B1).

During a recomputation run RCMP switches to a finer task-scheduling
granularity: a lost reducer output is divided key-wise among k split tasks,
each responsible for all the values of its keys (which preserves reducer
semantics).  The splits are assigned round-robin over the surviving nodes so
that recomputation uses all available compute-node parallelism (Fig. 4) and
— because each split writes its share of the partition where it ran — the
regenerated data is spread out, defusing the hot-spot that the next job's
mappers would otherwise create on a single node (Fig. 6).

A piece that is already a fractional split (from a previous recovery) is
recomputed as a single task with its original key fraction; re-splitting
splits is not attempted (the paper never needs it either).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.mapreduce.types import ReduceTaskSpec


@dataclass(frozen=True)
class LostPiece:
    """A damaged piece of a job's reducer output awaiting regeneration.

    ``file`` remembers which DFS file held the piece; when the failed node
    was transient and rejoins with its data intact, the lineage layer heals
    the damage by re-adopting that file instead of recomputing it.
    """

    partition: int
    fraction: float = 1.0
    split_index: int = 0
    n_splits: int = 1
    file: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


@dataclass
class ReducePlan:
    """Reduce tasks for one recomputation run plus their placement."""

    tasks: list[ReduceTaskSpec]
    assignment: dict[int, int]      # task_id -> node
    #: partitions whose block boundaries will change (they were split),
    #: triggering the Fig. 5 invalidation in the persisted store
    split_partitions: set[int]


def plan_reduce_recomputation(
        lost: Sequence[LostPiece],
        split_ratio: int,
        alive_nodes: Sequence[int],
        start_task_id: int = 0,
        exclude_nodes: Optional[set[int]] = None) -> ReducePlan:
    """Build the reduce side of a recomputation run.

    Parameters
    ----------
    lost:
        The damaged pieces (tagged on the recomputation job by the
        middleware, §IV-A).
    split_ratio:
        k-way splitting for whole-partition pieces; 1 disables splitting.
    alive_nodes:
        Nodes available for placement, in deterministic order.
    start_task_id:
        First task id to use (ids only need to be unique within the run).
    exclude_nodes:
        Optionally keep splits off certain nodes (unused by the paper's
        experiments but useful for tests).
    """
    if split_ratio < 1:
        raise ValueError("split_ratio must be >= 1")
    if not alive_nodes:
        raise ValueError("no alive nodes")
    nodes = [n for n in alive_nodes
             if not exclude_nodes or n not in exclude_nodes] or \
        list(alive_nodes)

    tasks: list[ReduceTaskSpec] = []
    assignment: dict[int, int] = {}
    split_partitions: set[int] = set()
    tid = start_task_id
    rr = 0
    for piece in sorted(lost, key=lambda p: (p.partition, p.split_index)):
        whole = piece.fraction >= 1.0 - 1e-12
        if whole and split_ratio > 1:
            k = min(split_ratio, max(1, len(nodes)))
            split_partitions.add(piece.partition)
            for s in range(k):
                task = ReduceTaskSpec(tid, piece.partition,
                                      fraction=1.0 / k,
                                      split_index=s, n_splits=k)
                tasks.append(task)
                assignment[tid] = nodes[rr % len(nodes)]
                rr += 1
                tid += 1
        else:
            task = ReduceTaskSpec(tid, piece.partition,
                                  fraction=piece.fraction,
                                  split_index=piece.split_index,
                                  n_splits=piece.n_splits)
            tasks.append(task)
            assignment[tid] = nodes[rr % len(nodes)]
            rr += 1
            tid += 1
    return ReducePlan(tasks, assignment, split_partitions)
