"""The multi-job middleware (paper §IV-A, Fig. 3).

The middleware knows the job dependencies and submits jobs to the Master
(our :class:`~repro.mapreduce.jobtracker.JobTracker`) one at a time.  Its
failure behaviour depends on the strategy:

* **RCMP**: when the Master reports irreversible data loss, the running job
  is cancelled; the middleware infers from the dependency information which
  jobs must be recomputed and in which order, tags each recomputation run
  with the reducer outputs damaged *by all failures so far* (so one
  recomputation run can service any number of data-loss events, including
  nested failures), then restarts the interrupted job from scratch.
* **Hadoop REPL-k**: failures are absorbed inside the job by task
  re-execution; the chain simply continues.  If replication turns out to be
  insufficient (all replicas of some block lost) the computation fails.
* **OPTIMISTIC**: any data loss discards everything and restarts the chain
  from job 1.
* **Hybrid** (§IV-C): RCMP plus replication of every k-th job output, which
  bounds the cascade at the last replication point and optionally lets the
  middleware reclaim persisted outputs behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Union

from repro.cluster.failures import FailureInjector, FailurePlan
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import Cluster, Node
from repro.core.lineage import ChainState
from repro.core.persistence import PersistedStore
from repro.core.strategies import Strategy
from repro.dfs import DistributedFileSystem
from repro.mapreduce.jobtracker import JobAborted, JobFailed, JobTracker
from repro.mapreduce.metrics import RunMetrics
from repro.obs.tracer import Tracer
from repro.simcore import AllOf, SeedSequenceRegistry, SimulationError, Simulator
from repro.workloads.chain import ChainSpec, build_chain


@dataclass
class ChainResult:
    """Outcome of one chain execution."""

    strategy: Strategy
    chain: ChainSpec
    cluster_name: str
    metrics: RunMetrics
    completed: bool
    failure_reason: Optional[str] = None
    killed_nodes: list[int] = field(default_factory=list)
    persisted_bytes: float = 0.0
    dfs_bytes: float = 0.0

    @property
    def total_runtime(self) -> float:
        return self.metrics.total_runtime

    @property
    def jobs_started(self) -> int:
        return self.metrics.n_jobs_started

    def __repr__(self) -> str:  # pragma: no cover
        status = "ok" if self.completed else f"FAILED({self.failure_reason})"
        return (f"<ChainResult {self.strategy.name} on {self.cluster_name}: "
                f"{self.total_runtime:.1f}s, {self.jobs_started} jobs, "
                f"{status}>")


class Middleware:
    """Drives one chain execution on an instantiated cluster."""

    def __init__(self, cluster: Cluster, dfs: DistributedFileSystem,
                 chain: ChainSpec, strategy: Strategy,
                 failure_plan: Optional[FailurePlan] = None,
                 min_rerun_mappers: int = 0):
        self.cluster = cluster
        self.sim = cluster.sim
        self.dfs = dfs
        self.chain = chain
        self.strategy = strategy
        self.min_rerun_mappers = min_rerun_mappers
        self.metrics = RunMetrics()
        self.store = PersistedStore()
        self.state = ChainState(chain, cluster, dfs, self.store, strategy)
        self.jt = JobTracker(cluster, dfs, self.metrics)
        plan = failure_plan or FailurePlan()
        if strategy.recovery_mode == "hadoop":
            # Hadoop starts exactly n_jobs jobs; the paper injects its
            # Hadoop failures at jobs 2 or 7 (§V-A).
            plan = plan.clamp_to(chain.n_jobs)
        self.injector = FailureInjector(cluster, plan, on_kill=self._on_kill)
        self.failure_reason: Optional[str] = None
        self._done = False

    # --------------------------------------------------------------- events
    def _on_kill(self, node: Node) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "node-killed", tid=node.node_id,
                           node=node.node_id)
        self.metrics.record_failure(self.sim.now, node.node_id)
        self.state.note_node_death(node.node_id)
        if self.strategy.re_replicate_after_failure:
            self.sim.process(self._re_replicate(),
                             name=f"re-replicate-{node.node_id}")

    def _re_replicate(self) -> Generator:
        """HDFS-style background restoration of lost replicas, starting
        once the namenode has detected the failure."""
        yield self.sim.timeout(self.cluster.spec.failure_detection_timeout)
        try:
            yield self.dfs.restore_replication()
        except SimulationError:
            pass  # a target died mid-restore; the next kill retriggers us

    def _notify_job_start(self) -> None:
        self.injector.notify_job_start(self.jt.peek_ordinal())

    # ----------------------------------------------------------------- run
    def run(self) -> Generator:
        """Simulation process body for the whole chain."""
        tracer = self.sim.tracer
        chain_span = tracer.span(
            "chain", f"chain:{self.strategy.name}",
            n_jobs=self.chain.n_jobs,
            cluster=self.cluster.spec.name) if tracer.enabled else None
        self.state.seed_input()
        idx = 1
        rerun = False
        while idx <= self.chain.n_jobs:
            # Service any damage the next job transitively depends on.
            if self.state.needed_cascade(idx):
                if self.strategy.recompute:
                    yield from self._recover(idx)
                    if self.failure_reason:
                        break  # recovery itself is impossible (input lost)
                elif self.strategy.optimistic:
                    self.state.reset()
                    idx, rerun = 1, False
                else:
                    self.failure_reason = ("irrecoverable data loss: "
                                           "replication was insufficient")
                    break
            kind = "rerun" if rerun else "initial"
            try:
                plan = self.state.build_initial_plan(idx, kind=kind)
            except RuntimeError as exc:
                # e.g. the chain input itself lost all replicas: nothing
                # any strategy can do (the paper assumes the computation's
                # input is safely replicated)
                self.failure_reason = str(exc)
                break
            self._notify_job_start()
            try:
                completion = yield from self.jt.run_job(plan)
            except JobAborted:
                if self.strategy.optimistic:
                    self.state.reset()
                    idx, rerun = 1, False
                else:
                    rerun = True
                continue
            except JobFailed as exc:
                self.failure_reason = str(exc)
                break
            self.state.apply_completion(completion, plan)
            if self._is_hybrid_point(idx):
                yield from self._replicate_output(idx)
            idx += 1
            rerun = False
        self._done = True
        result = self._result(completed=self.failure_reason is None
                              and idx > self.chain.n_jobs)
        if chain_span is not None:
            chain_span.end(completed=result.completed,
                           jobs_started=result.jobs_started,
                           failure_reason=self.failure_reason)
        return result

    def _recover(self, current_job: int) -> Generator:
        """Run the minimal recomputation cascade for ``current_job``
        (§IV-A).  Each iteration re-reads the damage set, so failures that
        land during recovery (nested failures, Fig. 7 case f) are folded
        into the next recomputation run automatically."""
        tracer = self.sim.tracer
        recover_span = tracer.span(
            "cascade", f"recover-for-job{current_job}",
            for_job=current_job) if tracer.enabled else None
        while True:
            cascade = self.state.needed_cascade(current_job)
            if not cascade:
                if recover_span is not None:
                    recover_span.end()
                return
            if tracer.enabled:
                tracer.instant("cascade", "cascade-plan",
                               for_job=current_job, cascade=list(cascade))
            j = cascade[0]
            try:
                plan = self.state.build_recompute_plan(
                    j, min_rerun_mappers=self.min_rerun_mappers)
            except RuntimeError as exc:
                self.failure_reason = str(exc)
                if recover_span is not None:
                    recover_span.end(failure_reason=self.failure_reason)
                return
            self._notify_job_start()
            try:
                completion = yield from self.jt.run_job(plan)
            except JobAborted:
                continue  # replan with the union of all damage
            self.state.apply_completion(completion, plan)

    # -------------------------------------------------------------- hybrid
    def _is_hybrid_point(self, idx: int) -> bool:
        k = self.strategy.hybrid_interval
        return bool(k) and idx % k == 0 and idx < self.chain.n_jobs

    def _replicate_output(self, idx: int) -> Generator:
        """§IV-C: replicate job ``idx``'s output to bound the cascade."""
        extra = self.strategy.hybrid_replication - 1
        if extra <= 0:
            return
        while True:
            files = [piece.file
                     for pieces in self.state.jobs[idx].layout.values()
                     for piece in pieces
                     if self.dfs.exists(piece.file)]
            try:
                events = [self.dfs.replicate_file(f, extra) for f in files]
                yield AllOf(self.sim, events)
                break
            except SimulationError:
                # a target died mid-replication; recover then retry
                if self.state.needed_cascade(idx + 1):
                    yield from self._recover(idx + 1)
        if self.strategy.hybrid_reclaim and idx >= 2:
            self.store.reclaim_jobs(idx - 1)
            self._reclaim_outputs(idx - 2)

    def _reclaim_outputs(self, up_to_job: int) -> None:
        """Delete reducer-output files of jobs <= ``up_to_job`` whose
        consumers have all completed (their data sits safely behind the
        replication point; in a DAG a later job may still need an early
        output, so those are kept)."""
        completed = {j for j in self.state.jobs
                     if not self.state.jobs[j].has_damage}
        for j in list(self.state.jobs):
            if j > up_to_job:
                continue
            consumers = self.chain.consumers(j)
            if any(c not in completed for c in consumers):
                continue
            state = self.state.jobs[j]
            for pieces in state.layout.values():
                for piece in pieces:
                    if self.dfs.exists(piece.file):
                        self.dfs.delete(piece.file)
            del self.state.jobs[j]

    # -------------------------------------------------------------- result
    def _result(self, completed: bool) -> ChainResult:
        return ChainResult(
            strategy=self.strategy,
            chain=self.chain,
            cluster_name=self.cluster.spec.name,
            metrics=self.metrics,
            completed=completed,
            failure_reason=self.failure_reason,
            killed_nodes=[n for _, n in self.injector.killed],
            persisted_bytes=self.store.total_bytes,
            dfs_bytes=self.dfs.total_bytes(),
        )


FailureInput = Union[FailurePlan, str, list, None]


def _coerce_failures(failures: FailureInput) -> FailurePlan:
    if failures is None:
        return FailurePlan()
    if isinstance(failures, FailurePlan):
        return failures
    if isinstance(failures, str):
        return FailurePlan.parse(failures)
    # list of (job, offset) pairs
    from repro.cluster.failures import FailureEvent
    return FailurePlan([FailureEvent(job, offset)
                        for job, offset in failures])


def run_chain(cluster_spec: ClusterSpec,
              strategy: Strategy,
              chain: Optional[ChainSpec] = None,
              n_jobs: int = 7,
              failures: FailureInput = None,
              seed: int = 0,
              min_rerun_mappers: int = 0,
              tracer: Optional[Tracer] = None) -> ChainResult:
    """Top-level entry point: simulate one chain execution.

    Parameters
    ----------
    cluster_spec:
        Hardware/configuration, e.g. ``presets.stic()`` or ``presets.dco()``.
    strategy:
        A :mod:`repro.core.strategies` preset or custom :class:`Strategy`.
    chain:
        The multi-job workload; defaults to the paper's uniform 1/1/1 chain
        of ``n_jobs`` jobs.
    failures:
        ``None``, a ``FailurePlan``, a FAIL spec string ("2", "7,14"), or a
        list of ``(job_ordinal, offset_seconds)`` pairs.
    seed:
        Root seed for all stochastic choices (placement, victim selection).
    min_rerun_mappers:
        Forces recomputation runs to re-execute at least this many mappers
        (Fig. 14's wave-count sweep).
    tracer:
        Observability sink (see :mod:`repro.obs`); defaults to the ambient
        tracer (a no-op unless one was installed via ``obs.tracing``).
    """
    sim = Simulator(tracer=tracer,
                    trace_label=f"{strategy.name} on {cluster_spec.name}")
    cluster = Cluster(sim, cluster_spec, SeedSequenceRegistry(seed))
    chain = chain or build_chain(n_jobs=n_jobs)
    dfs = DistributedFileSystem(cluster, chain.block_size)
    middleware = Middleware(cluster, dfs, chain, strategy,
                            _coerce_failures(failures),
                            min_rerun_mappers=min_rerun_mappers)
    proc = sim.process(middleware.run(), name="middleware")
    sim.run()
    if not proc.triggered or not proc.ok:
        raise RuntimeError(
            f"chain execution did not finish cleanly: "
            f"{proc.value if proc.triggered else 'deadlock'}")
    return proc.value
