"""The multi-job middleware (paper §IV-A, Fig. 3).

The middleware knows the job dependencies and submits jobs to the Master
(our :class:`~repro.mapreduce.jobtracker.JobTracker`) one at a time.  Its
failure behaviour depends on the strategy:

* **RCMP**: when the Master reports irreversible data loss, the running job
  is cancelled; the middleware infers from the dependency information which
  jobs must be recomputed and in which order, tags each recomputation run
  with the reducer outputs damaged *by all failures so far* (so one
  recomputation run can service any number of data-loss events, including
  nested failures), then restarts the interrupted job from scratch.
* **Hadoop REPL-k**: failures are absorbed inside the job by task
  re-execution; the chain simply continues.  If replication turns out to be
  insufficient (all replicas of some block lost) the computation fails.
* **OPTIMISTIC**: any data loss discards everything and restarts the chain
  from job 1.
* **Hybrid** (§IV-C): RCMP plus replication of every k-th job output, which
  bounds the cascade at the last replication point and optionally lets the
  middleware reclaim persisted outputs behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Union

from repro.cluster.failures import FailurePlan
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import Cluster, Node
from repro.core.lineage import ChainState
from repro.core.persistence import PersistedStore
from repro.core.strategies import Strategy
from repro.dfs import DistributedFileSystem
from repro.dfs.filesystem import DataLossError
from repro.faults import FaultEvent, FaultInjector, FaultModel
from repro.mapreduce.jobtracker import JobAborted, JobFailed, JobTracker
from repro.mapreduce.metrics import RunMetrics
from repro.obs.tracer import Tracer
from repro.simcore import AllOf, SeedSequenceRegistry, SimulationError, Simulator
from repro.workloads.chain import ChainSpec, build_chain


@dataclass
class ChainResult:
    """Outcome of one chain execution."""

    strategy: Strategy
    chain: ChainSpec
    cluster_name: str
    metrics: RunMetrics
    completed: bool
    failure_reason: Optional[str] = None
    killed_nodes: list[int] = field(default_factory=list)
    persisted_bytes: float = 0.0
    dfs_bytes: float = 0.0
    #: chain restarts consumed (OPTIMISTIC resets + degradation rollbacks)
    restarts: int = 0
    #: every injected fault as (time, kind, node_id), in order
    fault_log: list[tuple[float, str, int]] = field(default_factory=list)

    @property
    def total_runtime(self) -> float:
        return self.metrics.total_runtime

    @property
    def jobs_started(self) -> int:
        return self.metrics.n_jobs_started

    def __repr__(self) -> str:  # pragma: no cover
        status = "ok" if self.completed else f"FAILED({self.failure_reason})"
        return (f"<ChainResult {self.strategy.name} on {self.cluster_name}: "
                f"{self.total_runtime:.1f}s, {self.jobs_started} jobs, "
                f"{status}>")


class Middleware:
    """Drives one chain execution on an instantiated cluster."""

    def __init__(self, cluster: Cluster, dfs: DistributedFileSystem,
                 chain: ChainSpec, strategy: Strategy,
                 failure_plan: "FaultInput" = None,
                 min_rerun_mappers: int = 0):
        self.cluster = cluster
        self.sim = cluster.sim
        self.dfs = dfs
        self.chain = chain
        self.strategy = strategy
        self.min_rerun_mappers = min_rerun_mappers
        self.metrics = RunMetrics()
        self.store = PersistedStore()
        self.state = ChainState(chain, cluster, dfs, self.store, strategy)
        self.jt = JobTracker(cluster, dfs, self.metrics)
        self.detector = cluster.detector
        model = _coerce_faults(failure_plan)
        if strategy.recovery_mode == "hadoop":
            # Hadoop starts exactly n_jobs jobs; the paper injects its
            # Hadoop failures at jobs 2 or 7 (§V-A).
            model = model.clamp_to(chain.n_jobs)
        self.model = model
        self.state.keep_lost_files = model.has_transient
        self.injector = FaultInjector(cluster, model,
                                      on_fault=self._on_fault,
                                      on_revive=self._on_revive)
        self.failure_reason: Optional[str] = None
        self.restarts = 0
        self._done = False
        # losses noticed by the detector but not yet applied to metadata:
        # (node, event, death_time, due_time)
        self._pending_losses: list[tuple] = []

    # --------------------------------------------------------------- events
    def _on_fault(self, node: Node, event: FaultEvent) -> None:
        """A fault landed.  Metadata consequences (replica drops, damage
        records, stash discards) are applied when the *detector* notices —
        immediately in paper mode, one heartbeat-expiry later otherwise."""
        tracer = self.sim.tracer
        if tracer.enabled:
            if event.kind == "fail-stop" and not event.transient:
                tracer.instant("cascade", "node-killed", tid=node.node_id,
                               node=node.node_id)
            else:
                tracer.instant("cascade", "fault-injected", tid=node.node_id,
                               node=node.node_id, kind=event.kind,
                               downtime=event.downtime, wipe=event.wipe)
        self.metrics.record_failure(self.sim.now, node.node_id)
        delay = self.detector.detection_delay(self.sim.now)
        if delay <= 0:
            self._commit_loss(node, event, self.sim.now)
        else:
            entry = (node, event, self.sim.now, self.sim.now + delay)
            self._pending_losses.append(entry)
            self.sim.process(
                self._delayed_commit(entry, delay),
                name=f"detect-{node.node_id}")

    def _delayed_commit(self, entry: tuple, delay: float) -> Generator:
        yield self.sim.timeout(delay)
        if self._done or entry not in self._pending_losses:
            return  # already flushed by a recovery-planning path
        self._pending_losses.remove(entry)
        node, event, death_time, _due = entry
        self._commit_loss(node, event, death_time)

    def _flush_detections(self) -> None:
        """Apply every detection whose expiry has already passed.

        The jobtracker's declare timer and our detection commit can land
        on the same timestep; an abort then resumes the planner *before*
        the commit callback runs.  Recovery paths call this first so plans
        never read metadata the detector has already invalidated."""
        now = self.sim.now + 1e-9
        due = [e for e in self._pending_losses if e[3] <= now]
        for entry in due:
            self._pending_losses.remove(entry)
            node, event, death_time, _due = entry
            self._commit_loss(node, event, death_time)

    def _commit_loss(self, node: Node, event: FaultEvent,
                     death_time: float) -> None:
        """The detector declared the fault: apply its metadata effects.

        If a transient node already rejoined with its data intact (the
        outage fit inside the detection window), the loss never becomes
        visible at all — a *blip*.  If it rejoined with a wiped disk, the
        loss is applied and the stashed data is unsalvageable."""
        now = self.sim.now
        tracer = self.sim.tracer
        if now > death_time:
            latency = now - death_time
            self.metrics.record_detection(now, node.node_id, latency)
            if tracer.enabled:
                tracer.instant("cascade", "loss-detected", tid=node.node_id,
                               node=node.node_id, latency=latency)
                tracer.counter("detection-latency", {"seconds": latency},
                               tid=node.node_id)
        if node.alive and event.data_survives:
            return  # blip: back up, data intact, nobody noticed
        self.state.note_node_death(node.node_id)
        if not event.transient or node.alive:
            # fail-stop / disk-loss, or a wiped disk that already rejoined:
            # the stashed data can never be healed
            self.state.discard_offline(node.node_id)
        # A run launched inside the detection window never saw this node
        # fail (death watchers attach to alive nodes only) yet its plan may
        # reference the node's outputs; hand it the declaration directly.
        self.jt.notify_declared_loss(node.node_id)
        if self.strategy.re_replicate_after_failure:
            wait = self.cluster.spec.failure_detection_timeout \
                if self.detector.paper_mode else 0.0
            self.sim.process(self._re_replicate(wait),
                             name=f"re-replicate-{node.node_id}")

    def _on_revive(self, node: Node, event: FaultEvent) -> None:
        delay = self.detector.rejoin_delay(self.sim.now)
        if delay <= 0:
            self._commit_rejoin(node, event)
        else:
            self.sim.process(self._delayed_rejoin(node, event, delay),
                             name=f"rejoin-{node.node_id}")

    def _delayed_rejoin(self, node: Node, event: FaultEvent,
                        delay: float) -> Generator:
        yield self.sim.timeout(delay)
        if self._done or not node.alive:
            return
        self._commit_rejoin(node, event)

    def _commit_rejoin(self, node: Node, event: FaultEvent) -> None:
        healed = self.state.note_node_rejoin(node.node_id,
                                             event.data_survives)
        self.metrics.record_rejoin(self.sim.now, node.node_id)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "node-rejoined", tid=node.node_id,
                           node=node.node_id,
                           data_intact=event.data_survives, healed=healed)

    def _re_replicate(self, delay: float) -> Generator:
        """HDFS-style background restoration of lost replicas, starting
        once the namenode has detected the failure."""
        yield self.sim.timeout(delay)
        try:
            yield self.dfs.restore_replication()
        except SimulationError:
            pass  # a target died mid-restore; the next kill retriggers us

    def _notify_job_start(self) -> None:
        self.injector.notify_job_start(self.jt.peek_ordinal())

    # ----------------------------------------------------------------- run
    def run(self) -> Generator:
        """Simulation process body for the whole chain."""
        tracer = self.sim.tracer
        chain_span = tracer.span(
            "chain", f"chain:{self.strategy.name}",
            n_jobs=self.chain.n_jobs,
            cluster=self.cluster.spec.name) if tracer.enabled else None
        self.state.seed_input()
        idx = 1
        rerun = False
        while idx <= self.chain.n_jobs:
            self._flush_detections()
            # Service any damage the next job transitively depends on.
            if self.state.needed_cascade(idx):
                if self.strategy.recompute:
                    status = yield from self._recover(idx)
                    if self.failure_reason:
                        break  # recovery itself is impossible (input lost)
                    if status == "degrade":
                        anchor = yield from self._degrade(idx)
                        if self.failure_reason:
                            break
                        idx, rerun = anchor + 1, False
                        continue
                elif self.strategy.optimistic:
                    if not (yield from self._consume_restart()):
                        break
                    self.state.reset()
                    idx, rerun = 1, False
                else:
                    self.failure_reason = ("irrecoverable data loss: "
                                           "replication was insufficient")
                    break
            kind = "rerun" if rerun else "initial"
            try:
                plan = self.state.build_initial_plan(idx, kind=kind)
            except (RuntimeError, ValueError) as exc:
                # e.g. the chain input itself lost all replicas: nothing
                # any strategy can do (the paper assumes the computation's
                # input is safely replicated)
                self.failure_reason = str(exc)
                break
            self._notify_job_start()
            try:
                completion = yield from self.jt.run_job(plan)
            except JobAborted:
                if self.strategy.optimistic:
                    if not (yield from self._consume_restart()):
                        break
                    self.state.reset()
                    idx, rerun = 1, False
                else:
                    rerun = True
                continue
            except JobFailed as exc:
                self.failure_reason = str(exc)
                break
            except SimulationError as exc:
                # defensive: a fault landed somewhere the jobtracker does
                # not shield (stochastic fuzzing); fail the run cleanly
                self.failure_reason = f"simulation error: {exc}"
                break
            self.state.apply_completion(completion, plan)
            if self._is_hybrid_point(idx):
                status = yield from self._replicate_output(idx)
                if self.failure_reason:
                    break
                if status == "degrade":
                    anchor = yield from self._degrade(idx + 1)
                    if self.failure_reason:
                        break
                    idx, rerun = anchor + 1, False
                    continue
            idx += 1
            rerun = False
        self._done = True
        self.injector.stop()
        result = self._result(completed=self.failure_reason is None
                              and idx > self.chain.n_jobs)
        if chain_span is not None:
            chain_span.end(completed=result.completed,
                           jobs_started=result.jobs_started,
                           failure_reason=self.failure_reason)
        return result

    def _recover(self, current_job: int) -> Generator:
        """Run the minimal recomputation cascade for ``current_job``
        (§IV-A).  Each iteration re-reads the damage set, so failures that
        land during recovery (nested failures, Fig. 7 case f) are folded
        into the next recomputation run automatically.

        Returns ``"ok"`` when the cascade drained, ``"failed"`` when
        recovery is impossible (``failure_reason`` is set), or
        ``"degrade"`` when the strategy's ``max_cascade_depth`` tripped
        and the chain should fall back to its last intact anchor."""
        tracer = self.sim.tracer
        recover_span = tracer.span(
            "cascade", f"recover-for-job{current_job}",
            for_job=current_job) if tracer.enabled else None
        runs = 0
        bound = self.strategy.max_cascade_depth
        while True:
            self._flush_detections()
            cascade = self.state.needed_cascade(current_job)
            if not cascade:
                if recover_span is not None:
                    recover_span.end()
                return "ok"
            if bound and runs >= bound:
                if recover_span is not None:
                    recover_span.end(degraded=True, runs=runs)
                return "degrade"
            if tracer.enabled:
                tracer.instant("cascade", "cascade-plan",
                               for_job=current_job, cascade=list(cascade))
            j = cascade[0]
            try:
                plan = self.state.build_recompute_plan(
                    j, min_rerun_mappers=self.min_rerun_mappers)
            except (RuntimeError, ValueError) as exc:
                self.failure_reason = str(exc)
                if recover_span is not None:
                    recover_span.end(failure_reason=self.failure_reason)
                return "failed"
            runs += 1
            self._notify_job_start()
            try:
                completion = yield from self.jt.run_job(plan)
            except JobAborted:
                continue  # replan with the union of all damage
            except (JobFailed, SimulationError) as exc:
                self.failure_reason = str(exc)
                if recover_span is not None:
                    recover_span.end(failure_reason=self.failure_reason)
                return "failed"
            self.state.apply_completion(completion, plan)

    def _degrade(self, current_job: int) -> Generator:
        """Graceful degradation: the cascade for ``current_job`` exceeded
        the strategy's depth bound.  Consume a restart, roll the chain
        back to the last job with an intact output (a hybrid replication
        point, or — anchor 0 — the chain input) and resume from there."""
        if not (yield from self._consume_restart()):
            return 0
        self._flush_detections()
        anchor = 0
        for j in sorted(self.state.jobs, reverse=True):
            if j < current_job and not self.state.jobs[j].has_damage:
                anchor = j
                break
        self.state.rollback_to(anchor)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "degraded", anchor=anchor,
                           restarts=self.restarts)
        return anchor

    def _consume_restart(self) -> Generator:
        """Charge one chain restart against the strategy's budget; pay the
        exponential backoff.  Returns False (with ``failure_reason`` set)
        once the budget is exhausted, guaranteeing termination under
        stochastic fault arrivals."""
        self.restarts += 1
        cap = self.strategy.max_restarts
        if cap and self.restarts > cap:
            self.failure_reason = (f"restart budget exhausted after {cap} "
                                   f"chain restarts")
            return False
        backoff = self.strategy.restart_backoff
        if backoff > 0:
            yield self.sim.timeout(backoff * 2 ** min(self.restarts - 1, 16))
        return True

    # -------------------------------------------------------------- hybrid
    def _is_hybrid_point(self, idx: int) -> bool:
        k = self.strategy.hybrid_interval
        return bool(k) and idx % k == 0 and idx < self.chain.n_jobs

    def _replicate_output(self, idx: int) -> Generator:
        """§IV-C: replicate job ``idx``'s output to bound the cascade.
        Returns a status like :meth:`_recover` (retrying replication folds
        any recovery the retry needs into this call)."""
        extra = self.strategy.hybrid_replication - 1
        if extra <= 0:
            return "ok"
        while True:
            files = [piece.file
                     for pieces in self.state.jobs[idx].layout.values()
                     for piece in pieces
                     if self.dfs.exists(piece.file)]
            try:
                events = [self.dfs.replicate_file(f, extra) for f in files]
                yield AllOf(self.sim, events)
                break
            except (SimulationError, DataLossError):
                # a target died mid-replication; recover then retry
                if self.state.needed_cascade(idx + 1):
                    status = yield from self._recover(idx + 1)
                    if status != "ok":
                        return status
        if self.strategy.hybrid_reclaim and idx >= 2:
            self.store.reclaim_jobs(idx - 1)
            self._reclaim_outputs(idx - 2)
        return "ok"

    def _reclaim_outputs(self, up_to_job: int) -> None:
        """Delete reducer-output files of jobs <= ``up_to_job`` whose
        consumers have all completed (their data sits safely behind the
        replication point; in a DAG a later job may still need an early
        output, so those are kept)."""
        completed = {j for j in self.state.jobs
                     if not self.state.jobs[j].has_damage}
        for j in list(self.state.jobs):
            if j > up_to_job:
                continue
            consumers = self.chain.consumers(j)
            if any(c not in completed for c in consumers):
                continue
            state = self.state.jobs[j]
            for pieces in state.layout.values():
                for piece in pieces:
                    if self.dfs.exists(piece.file):
                        self.dfs.delete(piece.file)
            del self.state.jobs[j]

    # -------------------------------------------------------------- result
    def _result(self, completed: bool) -> ChainResult:
        return ChainResult(
            strategy=self.strategy,
            chain=self.chain,
            cluster_name=self.cluster.spec.name,
            metrics=self.metrics,
            completed=completed,
            failure_reason=self.failure_reason,
            killed_nodes=[n for _, n in self.injector.killed],
            persisted_bytes=self.store.total_bytes,
            dfs_bytes=self.dfs.total_bytes(),
            restarts=self.restarts,
            fault_log=list(self.injector.faults),
        )


FaultInput = Union[FaultModel, FailurePlan, str, list, None]
#: backwards-compatible alias (older call sites / docs)
FailureInput = FaultInput


def _coerce_faults(failures: FaultInput) -> FaultModel:
    if failures is None:
        return FaultModel()
    if isinstance(failures, FaultModel):
        return failures
    if isinstance(failures, FailurePlan):
        return FaultModel.from_plan(failures)
    if isinstance(failures, str):
        return FaultModel.parse(failures)
    # list of (job, offset) pairs
    from repro.cluster.failures import FailureEvent
    return FaultModel.from_plan(
        FailurePlan([FailureEvent(job, offset) for job, offset in failures]))


def run_chain(cluster_spec: ClusterSpec,
              strategy: Strategy,
              chain: Optional[ChainSpec] = None,
              n_jobs: int = 7,
              failures: FaultInput = None,
              seed: int = 0,
              min_rerun_mappers: int = 0,
              tracer: Optional[Tracer] = None) -> ChainResult:
    """Top-level entry point: simulate one chain execution.

    Parameters
    ----------
    cluster_spec:
        Hardware/configuration, e.g. ``presets.stic()`` or ``presets.dco()``.
    strategy:
        A :mod:`repro.core.strategies` preset or custom :class:`Strategy`.
    chain:
        The multi-job workload; defaults to the paper's uniform 1/1/1 chain
        of ``n_jobs`` jobs.
    failures:
        ``None``, a ``FaultModel``, a legacy ``FailurePlan``, a spec string
        (the paper's FAIL notation "2" / "7,14", or the generalized
        ``--faults`` grammar, e.g. "transient@job2:down=45; mtbf=600"), or
        a list of ``(job_ordinal, offset_seconds)`` pairs.
    seed:
        Root seed for all stochastic choices (placement, victim selection).
    min_rerun_mappers:
        Forces recomputation runs to re-execute at least this many mappers
        (Fig. 14's wave-count sweep).
    tracer:
        Observability sink (see :mod:`repro.obs`); defaults to the ambient
        tracer (a no-op unless one was installed via ``obs.tracing``).
    """
    sim = Simulator(tracer=tracer,
                    trace_label=f"{strategy.name} on {cluster_spec.name}")
    cluster = Cluster(sim, cluster_spec, SeedSequenceRegistry(seed))
    chain = chain or build_chain(n_jobs=n_jobs)
    dfs = DistributedFileSystem(cluster, chain.block_size)
    middleware = Middleware(cluster, dfs, chain, strategy, failures,
                            min_rerun_mappers=min_rerun_mappers)
    proc = sim.process(middleware.run(), name="middleware")
    sim.run()
    if not proc.triggered or not proc.ok:
        raise RuntimeError(
            f"chain execution did not finish cleanly: "
            f"{proc.value if proc.triggered else 'deadlock'}")
    return proc.value
