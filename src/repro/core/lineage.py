"""Lineage tracking and recomputation planning (paper §IV-A).

The middleware knows the job dependency DAG (here: a linear chain, the
paper's evaluation workload; the planner itself only relies on
"job j reads job j-1's output").  :class:`ChainState` records, for every
completed job, the current layout of its output partitions — which DFS files
hold which key-fraction *pieces* of each partition — plus the set of damaged
pieces awaiting regeneration.

From that state it builds the three kinds of :class:`~repro.mapreduce.types.
JobPlan`:

* ``initial`` — the full job, from the current upstream layout;
* ``recompute`` — the *minimum* work: only reducers for lost pieces (split
  per the strategy) and only mappers whose persisted outputs are missing or
  invalidated (the Fig. 5 rule);
* ``rerun`` — the full re-execution of the job that was interrupted by the
  failure (RCMP discards its partial results, §V-A).

Map task identifiers are hierarchical — ``partition * STRIDE + block`` — so
a partition regenerated *unsplit* (identical block boundaries) keeps its
consumers' task ids stable and their persisted outputs reusable, while a
*split* regeneration changes the id space for exactly the affected partition,
matching the invalidation the correctness rule demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.persistence import MapOutputMeta, PersistedStore
from repro.core.splitting import LostPiece, plan_reduce_recomputation
from repro.core.strategies import Strategy
from repro.dfs import DistributedFileSystem
from repro.mapreduce.jobtracker import JobCompletion
from repro.mapreduce.types import (
    JobPlan,
    MapInput,
    MapTaskSpec,
    PartitionRef,
    ReduceTaskSpec,
    ReusedMapOutput,
)
from repro.workloads.chain import ChainSpec

#: Map task id stride per upstream partition (far above any block count).
STRIDE = 1_000_000


@dataclass
class Piece:
    """One live piece of a partition's current layout."""

    file: str
    fraction: float
    split_index: int
    n_splits: int

    def signature(self) -> tuple:
        return (self.fraction, self.split_index, self.n_splits)


@dataclass
class _JobState:
    layout: dict[int, list[Piece]] = field(default_factory=dict)
    damaged: dict[int, list[LostPiece]] = field(default_factory=dict)

    @property
    def has_damage(self) -> bool:
        return any(self.damaged.values())


class ChainState:
    """Lineage state of one chain execution."""

    INPUT_FILE = "chain-input"

    def __init__(self, chain: ChainSpec, cluster, dfs: DistributedFileSystem,
                 store: PersistedStore, strategy: Strategy):
        self.chain = chain
        self.cluster = cluster
        self.dfs = dfs
        self.store = store
        self.strategy = strategy
        self.jobs: dict[int, _JobState] = {}
        self.completed_through = 0   # highest logical index fully completed
        #: when the fault model may bring a dead node back (transient
        #: failures), lost files stay in the DFS namespace so a rejoin with
        #: the disk intact can heal the damage instead of recomputing it
        self.keep_lost_files = False
        #: (job, partition) pairs a recompute run is currently regenerating;
        #: rejoin healing must not re-adopt pieces of these (the regenerated
        #: replacement is about to land) or coverage would exceed 1.0
        self.regenerating: set[tuple[int, int]] = set()

    # ------------------------------------------------------------- input
    def seed_input(self) -> None:
        """Materialize the chain's (pre-existing) triple-replicated input."""
        size = self.chain.total_input(self.cluster.n_nodes)
        self.dfs.seed_replicated(self.INPUT_FILE, size,
                                 self.chain.input_replication,
                                 tags={"kind": "chain-input"})

    # --------------------------------------------------------- completions
    def apply_completion(self, completion: JobCompletion,
                         plan: JobPlan) -> None:
        """Record a finished run: update layouts, persist map outputs,
        apply the Fig. 5 invalidation for split partitions."""
        j = completion.logical_index
        state = self.jobs.setdefault(j, _JobState())
        # Persist the executed mappers' outputs.  A run can complete inside
        # a node's failure-declaration window: outputs it executed on the
        # now-dead node died with it, and re-registering them after the
        # death commit dropped them would make later recomputation plans
        # reuse map outputs no fetch can reach.
        origin_of = {t.task_id: t.input.origin for t in plan.map_tasks}
        metas = [MapOutputMeta(j, tid, node,
                               self._map_output_size(plan, tid),
                               origin_of.get(tid))
                 for tid, node in completion.map_output_nodes.items()
                 if self.cluster.nodes[node].alive]
        self.store.register_many(metas)
        # Update partition layouts from the produced pieces.
        by_partition: dict[int, list[ReduceTaskSpec]] = {}
        for task in plan.reduce_tasks:
            by_partition.setdefault(task.partition, []).append(task)
        for partition, tasks in by_partition.items():
            new_pieces = []
            for task in sorted(tasks, key=lambda t: t.split_index):
                files = completion.partition_files.get(partition, [])
                name = self._file_for(files, task, plan)
                new_pieces.append(Piece(name, task.fraction,
                                        task.split_index, task.n_splits))
            self._install_pieces(
                j, partition, new_pieces,
                boundaries_changed=partition in plan.split_partitions)
            # the regeneration supersedes any still-damaged kept-around
            # files of this partition: they can never be healed now
            for lp in state.damaged.pop(partition, []):
                if lp.file and self.dfs.exists(lp.file):
                    self.dfs.delete(lp.file)
            self.regenerating.discard((j, partition))
        if plan.kind in ("initial", "rerun"):
            self.completed_through = max(self.completed_through, j)

    def _file_for(self, files: list[str], task: ReduceTaskSpec,
                  plan: JobPlan) -> str:
        token = f".{task.split_index}of{task.n_splits}."
        for name in files:
            if token in name and f"part-{task.partition:05d}" in name:
                return name
        raise RuntimeError(
            f"no output file recorded for job {plan.logical_index} "
            f"partition {task.partition} split {task.split_index}")

    def _install_pieces(self, j: int, partition: int,
                        new_pieces: list[Piece],
                        boundaries_changed: bool) -> None:
        """Merge regenerated pieces with any surviving pieces of the
        partition; the merged layout must cover the whole key range."""
        state = self.jobs.setdefault(j, _JobState())
        survivors = state.layout.get(partition, [])
        new_sigs = {p.signature() for p in new_pieces}
        kept = []
        for piece in survivors:
            if piece.signature() in new_sigs:
                # superseded by a regenerated piece with the same key range
                if piece.file not in {p.file for p in new_pieces} \
                        and self.dfs.exists(piece.file):
                    self.dfs.delete(piece.file)
            else:
                kept.append(piece)
        merged = sorted(kept + new_pieces,
                        key=lambda p: (p.n_splits, p.split_index))
        total = sum(p.fraction for p in merged)
        if abs(total - 1.0) > 1e-6:
            raise RuntimeError(
                f"job {j} partition {partition}: pieces cover {total:.6f} "
                f"of the key range after regeneration")
        state.layout[partition] = merged
        if boundaries_changed:
            self.store.invalidate_by_origin(PartitionRef(j, partition))

    def _map_output_size(self, plan: JobPlan, task_id: int) -> float:
        for t in plan.map_tasks:
            if t.task_id == task_id:
                return t.output_size
        raise KeyError(task_id)

    # -------------------------------------------------------------- damage
    def note_node_death(self, node_id: int) -> bool:
        """Process a node death: drop store entries, find lost pieces.

        Returns True if any *completed-job* data was irreversibly lost
        (which is what forces a recomputation cascade)."""
        self.store.drop_node(node_id)
        damaged_files = {m.name for m in self.dfs.on_node_death(node_id)}
        any_loss = False
        for j, state in self.jobs.items():
            for partition, pieces in list(state.layout.items()):
                lost = [p for p in pieces if p.file in damaged_files]
                if not lost:
                    continue
                any_loss = True
                entry = state.damaged.setdefault(partition, [])
                for piece in lost:
                    entry.append(LostPiece(partition, piece.fraction,
                                           piece.split_index, piece.n_splits,
                                           file=piece.file))
                    if self.dfs.exists(piece.file) \
                            and not self.keep_lost_files:
                        self.dfs.delete(piece.file)
                survivors = [p for p in pieces if p.file not in damaged_files]
                if survivors:
                    state.layout[partition] = survivors
                else:
                    del state.layout[partition]
            del j
        return any_loss

    def note_node_rejoin(self, node_id: int, data_intact: bool) -> int:
        """A dead node rejoined.  With its data intact, its DFS replicas
        and persisted map outputs return, and every damage record whose
        lost file is whole again is healed — the piece re-enters the
        layout and needs no recomputation.  Returns the number of healed
        pieces.

        A restored file is *stale* — and is deleted instead of re-adopted —
        when its key range was regenerated while the node was down: either
        a piece with the same signature already lives in the layout, or
        re-adding the piece would make the layout cover more than the whole
        key range (the partition came back with different split
        boundaries)."""
        restored = set(self.dfs.on_node_rejoin(node_id, data_intact))
        if data_intact:
            self.store.restore_node(node_id)
        else:
            self.store.discard_offline(node_id)
        healed = 0
        for j, state in self.jobs.items():
            for partition, lost in list(state.damaged.items()):
                remaining: list[LostPiece] = []
                for lp in lost:
                    if lp.file is None or lp.file not in restored:
                        remaining.append(lp)
                        continue
                    pieces = state.layout.get(partition, [])
                    sig = (lp.fraction, lp.split_index, lp.n_splits)
                    covered = sum(p.fraction for p in pieces)
                    if (j, partition) in self.regenerating \
                            or any(p.signature() == sig for p in pieces) \
                            or covered + lp.fraction > 1.0 + 1e-6:
                        if self.dfs.exists(lp.file):
                            self.dfs.delete(lp.file)
                        remaining.append(lp)
                        continue
                    pieces.append(Piece(lp.file, lp.fraction,
                                        lp.split_index, lp.n_splits))
                    state.layout[partition] = sorted(
                        pieces, key=lambda p: (p.n_splits, p.split_index))
                    healed += 1
                if remaining:
                    state.damaged[partition] = remaining
                else:
                    state.damaged.pop(partition, None)
        # Restored files with no damage record left (their partition was
        # regenerated while the node was down) were already deleted when
        # the regeneration landed; restored files of an in-flight run are
        # simply not ours to judge — the run registers them on completion.
        return healed

    def discard_offline(self, node_id: int) -> None:
        """Give up on a dead node's stashed data (fail-stop confirmed, or
        it rejoined with a wiped disk): drop the stashes and delete any
        kept-around lost files that can no longer be healed."""
        self.dfs.discard_offline(node_id)
        self.store.discard_offline(node_id)
        if not self.keep_lost_files:
            return
        for state in self.jobs.values():
            for lost in state.damaged.values():
                for lp in lost:
                    if lp.file and self.dfs.exists(lp.file) \
                            and not self.dfs.meta(lp.file).available:
                        self.dfs.delete(lp.file)

    def rollback_to(self, anchor: int) -> None:
        """Graceful degradation: forget every job after ``anchor`` (whose
        output must be intact — e.g. a hybrid replication point, or the
        chain input at anchor 0) so the chain re-executes from there."""
        for j in [j for j in self.jobs if j > anchor]:
            state = self.jobs.pop(j)
            for pieces in state.layout.values():
                for piece in pieces:
                    if self.dfs.exists(piece.file):
                        self.dfs.delete(piece.file)
            for lost in state.damaged.values():
                for lp in lost:
                    if lp.file and self.dfs.exists(lp.file):
                        self.dfs.delete(lp.file)
        self.store.drop_jobs_after(anchor)
        self.completed_through = min(self.completed_through, anchor)
        self.regenerating.clear()  # no run is in flight during a rollback

    def damaged_jobs(self) -> list[int]:
        """Logical indexes of jobs with outstanding damage, ascending."""
        return sorted(j for j, st in self.jobs.items() if st.has_damage)

    def needed_cascade(self, current_job: int) -> list[int]:
        """The minimal recomputation cascade for ``current_job`` (§IV-A).

        Walk the dependency DAG backwards from the current job's inputs;
        every *transitively* damaged upstream job must be recomputed (in
        dependency order, which submission order satisfies because every
        dependency precedes its consumer).  Each walk branch stops at the
        first job whose output is intact — e.g. a hybrid replication point
        (§IV-C) — so damage shadowed behind an intact output is left
        alone: it is only regenerated if a later failure exposes it."""
        cascade: set[int] = set()
        stack = list(self.chain.dependencies(current_job))
        seen: set[int] = set()
        while stack:
            dep = stack.pop()
            if dep in seen:
                continue
            seen.add(dep)
            state = self.jobs.get(dep)
            if state is None or not state.has_damage:
                continue  # intact output: this branch needs nothing below
            cascade.add(dep)
            stack.extend(self.chain.dependencies(dep))
        return sorted(cascade)

    def reset(self) -> None:
        """OPTIMISTIC restart: discard every intermediate result."""
        for state in self.jobs.values():
            for pieces in state.layout.values():
                for piece in pieces:
                    if self.dfs.exists(piece.file):
                        self.dfs.delete(piece.file)
            for lost in state.damaged.values():
                for lp in lost:
                    if lp.file and self.dfs.exists(lp.file):
                        self.dfs.delete(lp.file)
        self.jobs.clear()
        self.store.clear()
        self.completed_through = 0
        self.regenerating.clear()

    # ------------------------------------------------------- plan building
    def enumerate_map_tasks(self, j: int) -> list[MapTaskSpec]:
        """The full map task list of job ``j`` against the *current*
        layouts of its upstream jobs (hierarchical ids, see module
        docstring).  A job with no dependencies reads the computation's
        input file; a job with several upstreams (DAG join) maps over the
        union of their output blocks."""
        ratio = self.chain.job(j).map_output_ratio
        deps = self.chain.dependencies(j)
        tasks: list[MapTaskSpec] = []
        if not deps:
            meta = self.dfs.meta(self.INPUT_FILE)
            for i, block in enumerate(meta.blocks):
                if not block.available:
                    raise RuntimeError("chain input block lost — input "
                                       "replication was insufficient")
                tasks.append(MapTaskSpec(
                    i, MapInput(block.size, tuple(block.replicas), None),
                    output_size=block.size * ratio))
            return tasks
        for u_index, dep in enumerate(deps):
            upstream = self.jobs.get(dep)
            if upstream is None:
                raise RuntimeError(f"job {dep} has no recorded output")
            if upstream.has_damage:
                raise RuntimeError(
                    f"job {dep} output is damaged; recompute it before "
                    f"planning job {j} (cascade must run in dependency "
                    f"order)")
            for partition in sorted(upstream.layout):
                ordinal = 0
                origin = PartitionRef(dep, partition)
                base = (u_index * 10_000 + partition) * STRIDE
                for piece in upstream.layout[partition]:
                    meta = self.dfs.meta(piece.file)
                    for block in meta.blocks:
                        if not block.available:
                            raise RuntimeError(
                                f"live layout references lost block of "
                                f"{piece.file}")
                        tasks.append(MapTaskSpec(
                            base + ordinal,
                            MapInput(block.size, tuple(block.replicas),
                                     origin),
                            output_size=block.size * ratio))
                        ordinal += 1
        return tasks

    def build_initial_plan(self, j: int, kind: str = "initial") -> JobPlan:
        """Full plan for job ``j`` (initial run, or rerun after recovery)."""
        spec = self.chain.job(j)
        n_reducers = spec.n_reducers(self.cluster.spec)
        reducers = [ReduceTaskSpec(i, i) for i in range(n_reducers)]
        return JobPlan(
            logical_index=j,
            name=f"job{j}" + ("" if kind == "initial" else "/rerun"),
            kind=kind,
            map_tasks=self.enumerate_map_tasks(j),
            reduce_tasks=reducers,
            n_partitions=n_reducers,
            reduce_output_ratio=spec.reduce_output_ratio,
            output_replication=self.strategy.replication,
            recovery_mode=self.strategy.recovery_mode,
        )

    def build_recompute_plan(self, j: int,
                             min_rerun_mappers: int = 0) -> JobPlan:
        """Minimum-work recomputation plan for damaged job ``j`` (§IV-A).

        ``min_rerun_mappers`` forces extra mapper re-execution (used by the
        Fig. 14 wave-count experiment); the default recomputes only mappers
        whose persisted outputs are unavailable."""
        state = self.jobs[j]
        lost = [p for pieces in state.damaged.values() for p in pieces]
        if not lost:
            raise RuntimeError(f"job {j} has no damage to recompute")
        alive = self.cluster.alive_ids()
        survivors = len(alive)
        split_ratio = self.strategy.effective_split(survivors)
        reduce_plan = plan_reduce_recomputation(lost, split_ratio, alive)
        for partition in state.damaged:
            self.regenerating.add((j, partition))

        spec = self.chain.job(j)
        n_partitions = spec.n_reducers(self.cluster.spec)
        all_maps = self.enumerate_map_tasks(j)
        persisted = self.store.entries_for_job(j) \
            if self.strategy.reuse_map_outputs else {}
        rerun = [t for t in all_maps if t.task_id not in persisted]
        reused_specs = {t.task_id: t for t in all_maps
                        if t.task_id in persisted}
        if min_rerun_mappers > len(rerun):
            extra = min_rerun_mappers - len(rerun)
            forced = sorted(reused_specs)[:extra]
            for tid in forced:
                rerun.append(reused_specs.pop(tid))
        reused = [ReusedMapOutput(tid, persisted[tid].node,
                                  persisted[tid].size)
                  for tid in sorted(reused_specs)]
        # Spread recomputed mappers round-robin over the survivors (paper
        # Fig. 6: they run in one wave across the surviving nodes, which is
        # what concentrates their reads on the regenerated data's location).
        mapper_assignment = {t.task_id: alive[i % len(alive)]
                             for i, t in enumerate(
                                 sorted(rerun, key=lambda t: t.task_id))}
        return JobPlan(
            logical_index=j,
            name=f"job{j}/recomp",
            kind="recompute",
            map_tasks=sorted(rerun, key=lambda t: t.task_id),
            reduce_tasks=reduce_plan.tasks,
            n_partitions=n_partitions,
            reused_map_outputs=reused,
            reduce_output_ratio=spec.reduce_output_ratio,
            output_replication=1,
            recovery_mode="abort",
            reducer_assignment=reduce_plan.assignment,
            mapper_assignment=mapper_assignment,
            spread_output=self.strategy.spread_reduce_output,
            split_partitions=frozenset(reduce_plan.split_partitions),
        )
