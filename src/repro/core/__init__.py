"""RCMP: persisted outputs, cascade planning, reducer splitting, middleware."""

from repro.core import strategies
from repro.core.middleware import ChainResult, Middleware, run_chain
from repro.core.persistence import LossReport, MapOutputMeta, PersistedStore
from repro.core.splitting import plan_reduce_recomputation
from repro.core.strategies import Strategy

__all__ = [
    "ChainResult",
    "LossReport",
    "MapOutputMeta",
    "Middleware",
    "PersistedStore",
    "Strategy",
    "plan_reduce_recomputation",
    "run_chain",
    "strategies",
]
