"""Failure-resilience strategies compared in the paper's evaluation (§V-A).

* **RCMP** — replication factor 1 (one local HDFS replica); recovers by
  recomputation with persisted-output reuse and reducer splitting.
* **RCMP NO-SPLIT** — RCMP without the fine-grained recomputation
  granularity (isolates the benefit of splitting, Figs. 8, 9, 11, 12).
* **REPL-2 / REPL-3** — stock Hadoop with replicated intermediate outputs;
  recovers within a job by task re-execution.
* **OPTIMISTIC** — replication factor 1 and no recomputation support: on any
  data-loss failure the whole multi-job computation restarts from scratch.
* **HYBRID** — RCMP plus replication of every k-th job output, bounding the
  recomputation cascade (§IV-C).
* **RCMP SPREAD** — the §IV-B2 alternative to splitting: recomputed reducers
  write their output spread over all nodes (ablation only).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class Strategy:
    """Configuration of a failure-resilience strategy."""

    name: str
    #: replication factor for intermediate job outputs
    replication: int = 1
    #: recover by recomputation (RCMP) instead of in-job re-execution
    recompute: bool = True
    #: reducer split ratio for recomputation runs; None = auto (survivors-1,
    #: the paper's choice: 8 on STIC, 59 on DCO); 1 disables splitting
    split_ratio: Optional[int] = None
    #: restart the entire chain on data loss (OPTIMISTIC)
    optimistic: bool = False
    #: replicate every k-th job output (0 disables the hybrid mode)
    hybrid_interval: int = 0
    #: replication factor applied at hybrid replication points
    hybrid_replication: int = 2
    #: reclaim persisted outputs behind hybrid replication points
    hybrid_reclaim: bool = False
    #: reuse persisted map outputs during recomputation (disabled only by
    #: the Fig. 13 experiment, which recomputes all mappers)
    reuse_map_outputs: bool = True
    #: recomputed reducers spread their output over all nodes instead of
    #: splitting (the §IV-B2 alternative; ablation only)
    spread_reduce_output: bool = False
    #: restore lost replicas in the background after a failure is detected
    #: (HDFS behaviour; meaningful for the replication baselines)
    re_replicate_after_failure: bool = False
    #: graceful degradation: bound on recomputation runs per recovery
    #: episode — exceeding it abandons the cascade and rolls the chain back
    #: to the last intact anchor (a hybrid replication point, or the chain
    #: input).  0 = unbounded (the paper's behaviour).
    max_cascade_depth: int = 0
    #: bound on chain restarts (OPTIMISTIC resets and degradation
    #: rollbacks) before the run gives up with a clean failure.  0 =
    #: unbounded (the paper's behaviour; stochastic fault arrivals should
    #: set a cap so every run terminates).
    max_restarts: int = 0
    #: base seconds of exponential backoff charged before each restart;
    #: 0 disables backoff
    restart_backoff: float = 0.0

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.split_ratio is not None and self.split_ratio < 1:
            raise ValueError("split_ratio must be >= 1 (or None for auto)")
        if self.optimistic and self.recompute:
            raise ValueError("OPTIMISTIC cannot also recompute")
        if self.hybrid_interval < 0:
            raise ValueError("hybrid_interval must be >= 0")
        if self.hybrid_interval and not self.recompute:
            raise ValueError("hybrid mode requires recomputation")
        if self.hybrid_reclaim and self.hybrid_interval <= 0:
            raise ValueError("hybrid_reclaim requires hybrid_interval > 0 "
                             "(there is no anchor to reclaim behind)")
        if self.hybrid_interval and self.hybrid_replication < 2:
            raise ValueError("hybrid_replication must be >= 2")
        if self.max_cascade_depth < 0 or self.max_restarts < 0:
            raise ValueError("degradation bounds must be >= 0")
        if self.restart_backoff < 0:
            raise ValueError("restart_backoff must be >= 0")
        if self.max_cascade_depth and not self.recompute:
            raise ValueError("max_cascade_depth only applies to "
                             "recomputation strategies")

    # -- helpers ----------------------------------------------------------
    @property
    def recovery_mode(self) -> str:
        """JobTracker recovery mode for this strategy's runs."""
        return "hadoop" if (not self.recompute and not self.optimistic) \
            else "abort"

    def effective_split(self, survivors: int) -> int:
        """Split ratio to use given the current number of alive nodes."""
        if self.split_ratio is None:
            return max(1, survivors - 1)
        return self.split_ratio

    def with_split(self, ratio: Optional[int]) -> "Strategy":
        suffix = "SPLIT-auto" if ratio is None else f"SPLIT-{ratio}"
        return replace(self, split_ratio=ratio,
                       name=f"{self.name.split()[0]} {suffix}")

    def with_degradation(self, max_cascade_depth: int = 0,
                         max_restarts: int = 0,
                         restart_backoff: float = 0.0) -> "Strategy":
        """Copy with graceful-degradation bounds (name unchanged — the
        bounds alter behaviour only when they trip)."""
        return replace(self, max_cascade_depth=max_cascade_depth,
                       max_restarts=max_restarts,
                       restart_backoff=restart_backoff)


# -- presets matching the paper -------------------------------------------
RCMP = Strategy("RCMP", replication=1, recompute=True, split_ratio=None)
RCMP_NOSPLIT = Strategy("RCMP NO-SPLIT", replication=1, recompute=True,
                        split_ratio=1)
RCMP_SPREAD = Strategy("RCMP SPREAD", replication=1, recompute=True,
                       split_ratio=1, spread_reduce_output=True)
REPL2 = Strategy("HADOOP REPL-2", replication=2, recompute=False,
                 re_replicate_after_failure=True)
REPL3 = Strategy("HADOOP REPL-3", replication=3, recompute=False,
                 re_replicate_after_failure=True)
OPTIMISTIC = Strategy("OPTIMISTIC", replication=1, recompute=False,
                      optimistic=True)
HYBRID = Strategy("RCMP HYBRID", replication=1, recompute=True,
                  split_ratio=None, hybrid_interval=5, hybrid_replication=2)


def repl(factor: int) -> Strategy:
    """Hadoop with the given intermediate-output replication factor."""
    if factor < 2:
        raise ValueError("Hadoop needs replication >= 2 to survive failures")
    return Strategy(f"HADOOP REPL-{factor}", replication=factor,
                    recompute=False, re_replicate_after_failure=True)


def rcmp(split_ratio: Optional[int] = None,
         hybrid_interval: int = 0,
         hybrid_replication: int = 2,
         hybrid_reclaim: bool = False) -> Strategy:
    """RCMP with an explicit split ratio and optional hybrid replication.

    ``hybrid_replication`` and ``hybrid_reclaim`` configure the §IV-C
    anchors exactly as on :class:`Strategy`; they only take effect with
    ``hybrid_interval > 0`` (``hybrid_reclaim`` without an interval is
    rejected — there is no anchor to reclaim behind)."""
    name = "RCMP"
    if split_ratio == 1:
        name = "RCMP NO-SPLIT"
    elif split_ratio is not None:
        name = f"RCMP SPLIT-{split_ratio}"
    if hybrid_interval:
        name += f" HYBRID-{hybrid_interval}"
        if hybrid_reclaim:
            name += " RECLAIM"
    return Strategy(name, replication=1, recompute=True,
                    split_ratio=split_ratio, hybrid_interval=hybrid_interval,
                    hybrid_replication=hybrid_replication,
                    hybrid_reclaim=hybrid_reclaim)
