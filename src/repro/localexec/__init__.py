"""Record-level in-process MapReduce with the paper's actual UDFs.

The performance simulator (`repro.mapreduce` + `repro.core`) reproduces the
paper's *timing* results; this package reproduces its *semantics*: it runs
the 7-job chain on real key-value records, with the MD5-hash and byte-sum
correctness checks the paper's custom job performs on every record (§V-A),
persists task outputs, injects failures by dropping a node's storage, and
recovers with the same minimal-recomputation + reducer-splitting logic —
so tests can assert byte-for-byte output equality between failure-free and
failure-recovered executions, including the subtle Fig. 5 hazard.
"""

from repro.localexec.engine import LocalCluster, LocalJobConfig
from repro.localexec.records import Record, generate_records, map_udf, reduce_udf
from repro.localexec.recovery import recover_and_finish

__all__ = [
    "LocalCluster",
    "LocalJobConfig",
    "Record",
    "generate_records",
    "map_udf",
    "recover_and_finish",
    "reduce_udf",
]
