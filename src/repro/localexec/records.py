"""Records and the paper's UDFs (§V-A).

The paper's custom chain job performs, for every record, two computations
used to check correctness: one based on the MD5 hash of the record's value,
the other on the sum of all bytes in the value.  Each mapper additionally
randomizes the record key to keep data balanced across tasks.  We implement
exactly that: the mapper rewrites the key as an MD5-derived integer (a
deterministic function of job index and old key, so re-executions are
reproducible) and folds both checks into the value; the reducer combines all
values of a key, again mixing in the MD5 and byte-sum checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, order=True)
class Record:
    """An immutable key-value record."""

    key: int
    value: bytes


def _md5_int(data: bytes) -> int:
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


def byte_sum(value: bytes) -> int:
    """The paper's second correctness check: sum of all value bytes."""
    return sum(value)


def generate_records(n: int, seed: int, value_size: int = 16) -> list[Record]:
    """Deterministic synthetic input: ``n`` records with pseudo-random keys
    and values (the paper uses randomly generated binary input data)."""
    out = []
    for i in range(n):
        material = hashlib.md5(f"{seed}:{i}".encode()).digest()
        key = int.from_bytes(material[:4], "big")
        value = (material * ((value_size // len(material)) + 1))[:value_size]
        out.append(Record(key, value))
    return out


def map_udf(record: Record, job_index: int) -> Record:
    """The chain mapper: randomize the key, fold both checks into the value.

    Key randomization is a deterministic MD5 of (job, old key) — random
    enough to balance partitions, reproducible across re-executions (a
    requirement for recomputation to regenerate identical data).
    """
    new_key = _md5_int(f"{job_index}:{record.key}".encode())
    digest = hashlib.md5(record.value).digest()[:8]
    checksum = byte_sum(record.value) & 0xFFFF
    new_value = digest + checksum.to_bytes(2, "big") + record.value[:6]
    return Record(new_key, new_value)


def reduce_udf(key: int, values: Iterable[bytes]) -> Record:
    """The chain reducer: combine all values of one key.

    Deterministic in the multiset of values (sorted before hashing), so the
    output is independent of shuffle arrival order — which is what makes
    "same computation on the same input" recomputation exact (§VI)."""
    blob = b"".join(sorted(values))
    digest = hashlib.md5(blob).digest()[:8]
    checksum = byte_sum(blob) & 0xFFFF
    return Record(key, digest + checksum.to_bytes(2, "big") +
                  len(blob).to_bytes(4, "big"))


def partition_of(key: int, n_partitions: int) -> int:
    """Hash partitioner (Hadoop's default key routing)."""
    return key % n_partitions


def split_of(key: int, n_splits: int) -> int:
    """Secondary hash used by reducer splitting: divides the keys of one
    partition among the splits (paper §IV-B1, Fig. 5 uses odd/even —
    i.e. exactly this modulo hash with k=2)."""
    return (key // 7919) % n_splits  # independent of partition_of
