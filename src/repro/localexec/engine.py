"""In-process record-level MapReduce over a multi-node storage model.

Every piece of state is tagged with the node that stores it, so a node
failure (:meth:`LocalCluster.kill`) removes exactly what a real collocated
node loses: its stored reducer-output pieces and its persisted mapper
outputs.  The engine mirrors the simulator's data model — partitions made of
key-fraction *pieces*, hierarchical map-task ids per upstream partition —
so the recovery logic (:mod:`repro.localexec.recovery`) exercises the same
rules the performance layer plans with, but on actual records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.localexec.records import (
    Record,
    generate_records,
    map_udf,
    partition_of,
    reduce_udf,
    split_of,
)
# shared hierarchical id scheme
from repro.runtime.recovery import PARENT_STRIDE, STRIDE, JobGraph

__all__ = ["PARENT_STRIDE", "STRIDE", "JobGraph", "LocalCluster",
           "LocalJobConfig", "MapOutputData", "PieceData"]


@dataclass(frozen=True)
class LocalJobConfig:
    """Chain configuration for the record-level executor."""

    n_jobs: int = 3
    n_partitions: int = 4
    records_per_node: int = 64
    records_per_block: int = 16
    value_size: int = 16
    #: reducer splitting during recomputation; ``None`` = auto
    #: (``survivors - 1``, matching ``Strategy.effective_split``)
    split_ratio: Optional[int] = 1
    seed: int = 0
    #: per-job upstream tuples (1-based; () = computation input);
    #: ``None`` is the paper's linear chain.  Validated at construction:
    #: a malformed DAG raises ``ValueError`` before anything executes.
    dependencies: Optional[tuple[tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if min(self.n_jobs, self.n_partitions, self.records_per_node,
               self.records_per_block) < 1:
            raise ValueError("all config values must be >= 1")
        if self.split_ratio is not None and self.split_ratio < 1:
            raise ValueError("split_ratio must be >= 1 (or None for auto)")
        if self.dependencies is not None:
            # normalize JSON-decoded lists into hashable tuples, then
            # let JobGraph reject malformed edges with a ValueError
            object.__setattr__(
                self, "dependencies",
                tuple(tuple(int(d) for d in deps)
                      for deps in self.dependencies))
        self.graph()

    def graph(self) -> JobGraph:
        """The dependency DAG (linear when ``dependencies`` is None)."""
        return JobGraph.from_dependencies(self.n_jobs, self.dependencies)


@dataclass
class PieceData:
    """One stored piece of a partition's output."""

    job: int
    partition: int
    fraction_index: int    # split index
    n_splits: int
    node: int
    records: list[Record]

    def signature(self) -> tuple[int, int]:
        return (self.fraction_index, self.n_splits)


@dataclass
class MapOutputData:
    """One persisted mapper output: per-partition record slices."""

    job: int
    task_id: int
    node: int
    origin: Optional[tuple[int, int]]  # (upstream job, partition) or None
    slices: dict[int, list[Record]]


@dataclass
class _Block:
    task_id: int
    node: int              # where the input records are stored
    records: list[Record]
    origin: Optional[tuple[int, int]]


class LocalCluster:
    """A record-level chain executor with per-node storage."""

    def __init__(self, n_nodes: int, config: LocalJobConfig,
                 map_assignment: Optional[Callable[[int, int, int], int]]
                 = None):
        """``map_assignment(job, task_id, storage_node) -> node`` lets tests
        force non-local mappers (needed to construct the Fig. 5 hazard);
        the default runs every mapper data-local."""
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.n_nodes = n_nodes
        self.config = config
        self.alive: set[int] = set(range(n_nodes))
        self.map_assignment = map_assignment or (lambda j, t, node: node)
        #: job -> partition -> list[PieceData]
        self.pieces: dict[int, dict[int, list[PieceData]]] = {}
        #: (job, task_id) -> MapOutputData
        self.map_outputs: dict[tuple[int, int], MapOutputData] = {}
        #: job -> partition -> list of lost piece signatures
        self.damage: dict[int, dict[int, list[tuple[int, int]]]] = {}
        self.graph = config.graph()
        self.done_jobs: set[int] = set()
        self.completed_jobs = 0
        self._input = self._make_input()

    # ---------------------------------------------------------------- input
    def _make_input(self) -> list[_Block]:
        cfg = self.config
        blocks: list[_Block] = []
        tid = 0
        for node in range(self.n_nodes):
            records = generate_records(cfg.records_per_node,
                                       seed=cfg.seed * 1000 + node,
                                       value_size=cfg.value_size)
            for i in range(0, len(records), cfg.records_per_block):
                blocks.append(_Block(tid, node,
                                     records[i:i + cfg.records_per_block],
                                     None))
                tid += 1
        return blocks

    def input_blocks(self, job: int) -> list[_Block]:
        """The map-side input blocks of ``job`` under the current layout.

        A job with upstream dependencies maps over the union of its
        parents' outputs; task ids are hierarchical — parent position,
        then upstream partition, then block ordinal — so parent position
        0 (every linear-chain job) keeps today's ids byte-for-byte."""
        parents = self.graph.parents(job)
        if not parents:
            return list(self._input)
        cfg = self.config
        blocks: list[_Block] = []
        for pos, parent in enumerate(parents):
            upstream = self.pieces.get(parent)
            if upstream is None:
                raise RuntimeError(f"job {parent} has not produced output")
            if any(self.damage.get(parent, {}).values()):
                raise RuntimeError(
                    f"job {parent} output is damaged; recompute it first")
            for partition in sorted(upstream):
                ordinal = 0
                for piece in upstream[partition]:
                    recs = piece.records
                    for i in range(0, max(len(recs), 1),
                                   cfg.records_per_block):
                        blocks.append(_Block(
                            pos * PARENT_STRIDE + partition * STRIDE
                            + ordinal, piece.node,
                            recs[i:i + cfg.records_per_block],
                            (parent, partition)))
                        ordinal += 1
        return blocks

    # ------------------------------------------------------------ execution
    def run_map(self, job: int, block: _Block) -> MapOutputData:
        node = self.map_assignment(job, block.task_id, block.node)
        if node not in self.alive:
            node = min(self.alive)
        slices: dict[int, list[Record]] = {}
        for record in block.records:
            out = map_udf(record, job)
            slices.setdefault(
                partition_of(out.key, self.config.n_partitions),
                []).append(out)
        data = MapOutputData(job, block.task_id, node, block.origin, slices)
        self.map_outputs[(job, block.task_id)] = data
        return data

    def run_reduce(self, job: int, partition: int, node: int,
                   split_index: int = 0, n_splits: int = 1) -> PieceData:
        """Reduce (a split of) one partition from all of the job's map
        outputs — persisted and just-executed alike (§IV-B1)."""
        groups: dict[int, list[bytes]] = {}
        for (j, _tid), data in self.map_outputs.items():
            if j != job:
                continue
            for record in data.slices.get(partition, ()):
                if n_splits > 1 and \
                        split_of(record.key, n_splits) != split_index:
                    continue
                groups.setdefault(record.key, []).append(record.value)
        records = [reduce_udf(key, values)
                   for key, values in sorted(groups.items())]
        piece = PieceData(job, partition, split_index, n_splits, node,
                          records)
        bucket = self.pieces.setdefault(job, {}).setdefault(partition, [])
        bucket[:] = [p for p in bucket
                     if p.signature() != piece.signature()]
        bucket.append(piece)
        bucket.sort(key=lambda p: (p.n_splits, p.fraction_index))
        return piece

    def run_job(self, job: int) -> None:
        """Run job ``job`` in full (initial execution)."""
        for block in self.input_blocks(job):
            self.run_map(job, block)
        alive = sorted(self.alive)
        for partition in range(self.config.n_partitions):
            node = alive[partition % len(alive)]
            self.run_reduce(job, partition, node)
        self.done_jobs.add(job)
        self.completed_jobs = max(self.completed_jobs, job)

    def run_chain(self) -> None:
        # ascending index order is always a valid topological order:
        # every dependency references an earlier job
        for job in range(1, self.config.n_jobs + 1):
            self.run_job(job)

    # -------------------------------------------------------------- failure
    def kill(self, node: int) -> None:
        """Fail a node: drop its persisted map outputs and stored pieces."""
        if node not in self.alive:
            raise ValueError(f"node {node} already dead")
        self.alive.discard(node)
        for key in [k for k, m in self.map_outputs.items()
                    if m.node == node]:
            del self.map_outputs[key]
        for job, partitions in self.pieces.items():
            for partition, plist in list(partitions.items()):
                lost = [p for p in plist if p.node == node]
                if not lost:
                    continue
                marks = self.damage.setdefault(job, {}).setdefault(
                    partition, [])
                marks.extend(p.signature() for p in lost)
                partitions[partition] = [p for p in plist if p.node != node]

    # -------------------------------------------------------------- queries
    def final_output(self) -> dict[int, list[Record]]:
        """Partition -> sorted records of the computation's output: the
        union over sink jobs, keyed ``sink_pos * STRIDE + partition`` so
        a single-sink chain keeps plain partition keys (and checksums)
        unchanged."""
        out = {}
        for pos, sink in enumerate(sorted(self.graph.sinks())):
            last = self.pieces.get(sink)
            if last is None:
                raise RuntimeError(f"sink job {sink} has not completed")
            for partition, plist in last.items():
                records: list[Record] = []
                for piece in plist:
                    records.extend(piece.records)
                out[pos * STRIDE + partition] = sorted(records)
        return out

    def partition_coverage_ok(self, job: int) -> bool:
        """Invariant: every partition's pieces cover the key range exactly
        once (fractions sum to 1)."""
        for plist in self.pieces.get(job, {}).values():
            total = sum(1.0 / p.n_splits for p in plist)
            if abs(total - 1.0) > 1e-9:
                return False
        return True
