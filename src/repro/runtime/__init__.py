"""Multi-process execution runtime: RCMP recovery on real worker processes.

The packages :mod:`repro.mapreduce`/:mod:`repro.core` *model* the paper's
timing; :mod:`repro.localexec` checks its *semantics* in one process; this
package runs both for real — every simulated node is an OS **process**,
persistence is real single-replica files, the shuffle moves bytes between
processes, failures are real ``SIGKILL``s detected over a heartbeat
channel, and the coordinator runs the RCMP protocol (cancel the in-flight
job, recompute the cascade from surviving on-disk outputs, re-execute only
lost work, split lost partitions ``k`` ways with the Fig. 5 guard).

Modules:

* :mod:`repro.runtime.recovery` — the shared pure planner (also used by
  ``localexec``); importing it pulls no process machinery.
* :mod:`repro.runtime.storage` — on-disk node layout, the in-memory
  hot tier (:class:`MemoryTier`), record codec, coordinator-side
  registry with the damage inventory.
* :mod:`repro.runtime.shm` — optional shared-memory segment handoff
  between colocated workers.
* :mod:`repro.runtime.transport` — pipe framing, heartbeats, and the
  pipelined TCP shuffle (persistent per-peer connections, server-side
  split filtering).
* :mod:`repro.runtime.worker` — the worker process main loop.
* :mod:`repro.runtime.coordinator` — job DAG, dispatch, failure handling
  (the shared :class:`WorkerPool` + per-chain :class:`ChainRun` split).
* :mod:`repro.runtime.service` — the multi-tenant :class:`ChainService`:
  many chains queued over one shared worker pool.
* :mod:`repro.runtime.cache` — the cross-run result cache: lineage
  fingerprints, the persistent :class:`CacheRegistry`, prefix adoption.
* :mod:`repro.runtime.faults` — fault plan -> live ``SIGKILL`` injection.

The heavier modules are re-exported lazily so that importing
``repro.runtime`` (e.g. from ``localexec``'s planner dependency) stays
cheap and cycle-free.
"""

from repro.runtime.recovery import (
    JobGraph,
    JobRecoveryPlan,
    ReduceSpec,
    adoptable_closure,
    cascade_jobs,
    cascade_start,
    consumer_invalidations,
    effective_split_ratio,
    hybrid_reclaimable,
    plan_job_recovery,
)

__all__ = [
    "CacheRegistry",
    "ChainRun",
    "ChainService",
    "Coordinator",
    "JobGraph",
    "JobRecoveryPlan",
    "MTBFKills",
    "MemoryTier",
    "PeerPool",
    "ReduceSpec",
    "RunReport",
    "RuntimeConfig",
    "ShuffleServer",
    "WorkerPool",
    "adoptable_closure",
    "cascade_jobs",
    "cascade_start",
    "chain_checksum",
    "chain_fingerprints",
    "consumer_invalidations",
    "effective_split_ratio",
    "hybrid_reclaimable",
    "plan_job_recovery",
]

_LAZY = {
    "Coordinator": ("repro.runtime.coordinator", "Coordinator"),
    "WorkerPool": ("repro.runtime.coordinator", "WorkerPool"),
    "ChainRun": ("repro.runtime.coordinator", "ChainRun"),
    "RuntimeConfig": ("repro.runtime.coordinator", "RuntimeConfig"),
    "RunReport": ("repro.runtime.coordinator", "RunReport"),
    "ChainService": ("repro.runtime.service", "ChainService"),
    "MTBFKills": ("repro.runtime.service", "MTBFKills"),
    "CacheRegistry": ("repro.runtime.cache", "CacheRegistry"),
    "chain_fingerprints": ("repro.runtime.cache", "chain_fingerprints"),
    "chain_checksum": ("repro.runtime.storage", "chain_checksum"),
    "MemoryTier": ("repro.runtime.storage", "MemoryTier"),
    "PeerPool": ("repro.runtime.transport", "PeerPool"),
    "ShuffleServer": ("repro.runtime.transport", "ShuffleServer"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    return getattr(importlib.import_module(module), attr)
