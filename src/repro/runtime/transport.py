"""Process-to-process plumbing: control pipes, heartbeats, shuffle sockets.

Three channels connect a worker to the rest of the runtime:

* a **command pipe** (coordinator -> worker): task commands, invalidation
  drops, stop;
* an **event pipe** (worker -> coordinator): heartbeats, readiness, task
  commits and failures.  The worker writes it from several threads (slot
  threads and heartbeat), serialized by :class:`LockedConnection`.  A
  ``SIGKILL`` can only tear *this worker's* pipe — the coordinator reads
  a broken stream as an end-of-channel signal for that node alone, never
  a shared corrupted queue;
* a **shuffle server** (worker <-> worker): a TCP listener on the
  loopback interface serving the node's persisted files.  Reducers fetch
  map-output slices from mapper nodes; re-homed mappers fetch upstream
  piece ranges.  A dead worker's socket refuses connections, which a
  fetching worker reports as a task failure — the coordinator's heartbeat
  expiry then declares the death and triggers recovery.

The shuffle data plane is **pipelined**:

* :class:`ShuffleServer` speaks a framed request/response protocol over
  *kept-alive* connections — one connection per fetching peer instead of
  one per request — and can filter a ``maps`` slice by reducer split
  before shipping it (``split``/``n_splits`` in the request), so a k-way
  split recomputation ships 1/k of the partition bytes;
* :class:`PeerPool` is the client side: one persistent connection per
  peer port, shared across a worker's task slots (a per-peer lock
  serializes request/response framing).  A broken connection falls back
  to a clean reconnect — the retry/backoff budget is exactly what the
  old connection-per-request ``fetch`` spent, so death detection
  semantics are unchanged: a genuinely dead peer still surfaces as
  :class:`FetchError` after ``retries`` attempts.

Heartbeats follow :class:`repro.faults.HeartbeatDetector` semantics:
workers beat every ``interval`` wall-clock seconds and the coordinator
declares a node dead once ``expiry`` seconds pass without one.
``expiry == 0`` is *paper mode* — the omniscient detector: the kernel
closing the dead process's pipe is treated as an immediate declaration.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.runtime.storage import filter_split_spans

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

    from repro.runtime.storage import NodeStore

_LEN = struct.Struct(">Q")

#: max buffers per ``sendmsg`` call — comfortably under every platform's
#: ``IOV_MAX`` (POSIX guarantees >= 16, Linux allows 1024)
_IOV_MAX = 512

#: errors that mean "the other side of this channel is gone"
CHANNEL_DOWN = (EOFError, OSError, BrokenPipeError, ConnectionError,
                pickle.UnpicklingError)


class FetchError(RuntimeError):
    """A shuffle fetch could not be served (source likely dead)."""


class Throttle:
    """A worker's self-imposed slowdown (the ``slow`` fault kind).

    ``pace(elapsed)`` stretches a unit of work that took ``elapsed``
    seconds to ``factor * elapsed`` by sleeping the difference, so the
    task loop and shuffle serving both run at ``1/factor`` speed.  The
    heartbeat thread is deliberately *not* paced: a straggler is slow,
    not dead, and must keep beating so the detector never declares it
    lost.  Shared by the slot threads and the shuffle server; ``set`` is
    a single attribute store, safe without a lock."""

    def __init__(self, factor: float = 1.0):
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        return self._factor

    def set(self, factor: float) -> None:
        if factor < 1.0:
            raise ValueError("throttle factor must be >= 1")
        self._factor = float(factor)

    def pace(self, elapsed: float) -> None:
        extra = (self._factor - 1.0) * elapsed
        if extra > 0:
            time.sleep(extra)


class LockedConnection:
    """A pipe connection whose sends are serialized across threads."""

    def __init__(self, conn: "Connection"):
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, obj) -> None:
        with self._lock:
            self._conn.send(obj)


def start_heartbeat(conn: LockedConnection, node: int,
                    interval: float) -> threading.Thread:
    """Beat ``("hb", node)`` every ``interval`` seconds until the process
    dies (daemon thread; a SIGKILL stops it with the process)."""

    def beat() -> None:
        while True:
            time.sleep(interval)
            try:
                conn.send(("hb", node))
            except CHANNEL_DOWN:  # coordinator gone; nothing left to do
                return

    thread = threading.Thread(target=beat, name=f"hb-node{node}",
                              daemon=True)
    thread.start()
    return thread


# ------------------------------------------------------------- shuffle server
def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    while size:
        chunk = sock.recv(size)
        if not chunk:
            raise ConnectionError("shuffle peer closed mid-message")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def serve_request_spans(store: "NodeStore", request: dict) -> list:
    """Resolve one shuffle request into a list of raw byte spans.

    The zero-copy serve primitive: spans are the stored buffers
    themselves (``bytes`` straight from the memory tier or disk read)
    or ``memoryview`` slices of them (split filtering), never an
    intermediate concatenation — the server hands the list to
    ``socket.sendmsg`` and the kernel gathers it onto the wire.
    ``b"".join`` of the spans is the classic contiguous payload
    (:func:`serve_request`).

    ``maps`` is the bulk-shuffle request: every requested map task's
    slice for one partition in a single response (frame concatenation is
    record-list concatenation, so the reducer decodes it in one go) —
    one connection per source *node* instead of per map task.  When the
    request carries ``split``/``n_splits``, each slice is filtered by
    ``split_of`` *server-side* before shipping: the reducer of one split
    receives exactly its 1/k of the keys instead of the whole partition
    (the paper's reducer-splitting hot path, §IV-B1).

    A ``chain`` field scopes the read to that chain's namespace on the
    serving node (multi-tenant service mode); absent, the store's own
    namespace applies."""
    if "chain" in request:
        store = store.for_chain(request["chain"])
    kind = request["kind"]
    if kind == "maps":
        split = request.get("split")
        slices = (store.read_map_slice(request["job"], task,
                                       request["partition"])
                  for task in request["tasks"])
        if split is None:
            return [data for data in slices if data]
        n_splits = request["n_splits"]
        spans: list = []
        for data in slices:
            spans.extend(filter_split_spans(data, split, n_splits))
        return spans
    if kind == "piece":
        return [store.read_piece(request["job"], request["partition"],
                                 request["split"], request["n_splits"])]
    raise ValueError(f"unknown shuffle request kind {kind!r}")


def serve_request(store: "NodeStore", request: dict) -> bytes:
    """Resolve one shuffle request into one contiguous payload (the
    span list of :func:`serve_request_spans`, joined).  The local
    same-worker handoff path uses this directly — the single-span case
    (a piece fetch hitting the memory tier) returns the resident buffer
    without any copy at all."""
    spans = serve_request_spans(store, request)
    if not spans:
        return b""
    if len(spans) == 1:
        only = spans[0]
        return only.tobytes() if isinstance(only, memoryview) else only
    return b"".join(spans)


def _sendall_spans(sock: socket.socket, spans: list) -> None:
    """Send every span with scatter-gather ``sendmsg`` — no join, no
    intermediate copy.  Handles partial sends (a blocking socket under
    a timeout may write fewer bytes than offered) by trimming the
    partially-sent buffer and continuing."""
    bufs = [memoryview(s) for s in spans if len(s)]
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
        for buf in bufs:
            sock.sendall(buf)
        return
    i = 0
    while i < len(bufs):
        sent = sock.sendmsg(bufs[i:i + _IOV_MAX])
        while sent:
            head = bufs[i]
            if sent >= len(head):
                sent -= len(head)
                i += 1
            else:
                bufs[i] = head[sent:]
                sent = 0


class ShuffleServer:
    """The node's shuffle listener: framed requests over kept-alive
    connections, served from daemon threads (one per *peer connection*,
    not one per request).

    ``timeout`` bounds how long one connection may sit mid-request (and
    how long an idle pooled connection is kept before the server drops
    it — the client's :class:`PeerPool` transparently reconnects).  It
    is plumbed from ``RuntimeConfig.io_timeout`` so a user raising the
    dispatch-stall budget raises the shuffle patience with it."""

    def __init__(self, store: "NodeStore", timeout: float = 30.0,
                 port: int = 0, throttle: Optional[Throttle] = None):
        self.store = store
        self.timeout = timeout
        self.throttle = throttle
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self.connections_accepted = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):  # pragma: no branch
            # a restarted server must rebind its advertised port even
            # while old peer connections linger in FIN_WAIT
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEPORT, 1)
        self._listener.bind(("127.0.0.1", port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"shuffle-node{store.node}",
            daemon=True)
        self._accept_thread.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            with conn:
                while True:
                    conn.settimeout(self.timeout)
                    size = _LEN.unpack(_recv_exact(conn, _LEN.size))[0]
                    request = pickle.loads(_recv_exact(conn, size))
                    started = time.perf_counter()
                    spans = serve_request_spans(self.store, request)
                    if self.throttle is not None:
                        self.throttle.pace(time.perf_counter() - started)
                    total = sum(len(s) for s in spans)
                    _sendall_spans(conn, [_LEN.pack(total), *spans])
        except (OSError, ConnectionError, ValueError, pickle.PickleError):
            pass  # peer closed / idle timeout / bad frame: connection done
        finally:
            with self._lock:
                self._conns.discard(conn)

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener shut down
                return
            if self._closed:  # pragma: no cover - shutdown race
                conn.close()
                return
            with self._lock:
                self._conns.add(conn)
                self.connections_accepted += 1
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True).start()

    def close(self) -> None:
        """Stop accepting and tear down every live peer connection.

        The accept thread is woken (``shutdown`` on the listening
        socket) and joined *before* the listener fd is closed: closing
        an fd another thread is blocked in ``accept()`` on lets a new
        socket reuse the fd number and the stale thread steal its
        connections."""
        self._closed = True
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # not connected / already closed: accept still wakes
        self._accept_thread.join(timeout=2.0)
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


def start_shuffle_server(store: "NodeStore",
                         timeout: float = 30.0) -> tuple[ShuffleServer, int]:
    """Bind the node's shuffle listener; returns ``(server, port)``."""
    server = ShuffleServer(store, timeout=timeout)
    return server, server.port


# ------------------------------------------------------------- fetch clients
class _Peer:
    """One peer's pooled connection + the lock framing its use."""

    __slots__ = ("lock", "sock")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.sock: Optional[socket.socket] = None


class PeerPool:
    """Persistent per-peer shuffle connections, shared across task slots.

    ``fetch`` holds the peer's lock for one request/response exchange
    at a time, so concurrent fetches to *different* peers run in
    parallel while fetches to the same peer serialize on its one
    connection (and back off concurrently when it is down).  A
    connection that breaks (peer died, or the server dropped an idle
    connection) is discarded and rebuilt on the next attempt; after
    ``retries`` failed attempts the peer is declared unreachable via
    :class:`FetchError` — the same budget the old one-shot ``fetch``
    spent, so the coordinator's failure path sees identical timing.

    ``persistent=False`` degrades to connection-per-request (the
    pre-pipelining data plane; kept for A/B benchmarking).

    ``local_port``/``local_store`` arm the same-worker handoff: a fetch
    addressed to the worker's *own* shuffle port resolves straight from
    the local store (memory tier first) instead of opening a loopback
    socket to itself — the data never leaves the process."""

    def __init__(self, timeout: float = 5.0, retries: int = 3,
                 backoff: float = 0.05, persistent: bool = True,
                 local_port: Optional[int] = None,
                 local_store: Optional["NodeStore"] = None):
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.persistent = persistent
        self.local_port = local_port
        self.local_store = local_store
        self.local_bytes = 0  # informational; exact counts live per-task
        self._lock = threading.Lock()
        self._peers: dict[int, _Peer] = {}

    def _peer(self, port: int) -> _Peer:
        with self._lock:
            peer = self._peers.get(port)
            if peer is None:
                peer = self._peers[port] = _Peer()
            return peer

    @staticmethod
    def _drop(peer: _Peer) -> None:
        sock, peer.sock = peer.sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def fetch(self, port: int, request: dict) -> bytes:
        """Fetch bytes from the peer's shuffle server (idempotent reads:
        a retry after a mid-response break simply re-sends the request).

        The peer's lock is held per *attempt* — one full framed
        request/response exchange — never across a backoff sleep, so
        concurrent tasks retrying against a dead peer back off in
        parallel instead of queueing each other's full retry budgets."""
        if port == self.local_port and self.local_store is not None:
            data = serve_request(self.local_store, request)
            self.local_bytes += len(data)
            return data
        payload = pickle.dumps(request)
        peer = self._peer(port)
        last: Optional[Exception] = None
        for attempt in range(self.retries):
            sock: Optional[socket.socket] = None
            try:
                with peer.lock:
                    sock = peer.sock
                    if sock is None:
                        sock = socket.create_connection(
                            ("127.0.0.1", port), timeout=self.timeout)
                        peer.sock = sock
                    sock.sendall(_LEN.pack(len(payload)) + payload)
                    size = _LEN.unpack(_recv_exact(sock, _LEN.size))[0]
                    data = _recv_exact(sock, size)
                    if not self.persistent:
                        self._drop(peer)
                    return data
            except (OSError, ConnectionError) as exc:
                last = exc
                with peer.lock:
                    # only un-pool the socket *we* failed on: another
                    # thread may already be mid-exchange on a fresh one
                    if peer.sock is sock:
                        peer.sock = None
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                time.sleep(self.backoff * (attempt + 1))
        raise FetchError(f"shuffle fetch from port {port} failed: {last}")

    def fetch_piece(self, port: int, job: int, partition: int,
                    split_index: int, n_splits: int,
                    chain: Optional[str] = None) -> bytes:
        """Fetch one stored piece's bytes from a peer's shuffle server.

        Shared by re-homed mappers reading upstream piece ranges and
        replica writers copying a piece from its primary holder (the
        REPL-k / hybrid-anchor pipelined replication path).  ``chain``
        scopes the read to that chain's namespace on the serving node."""
        request = {"kind": "piece", "job": job, "partition": partition,
                   "split": split_index, "n_splits": n_splits}
        if chain is not None:
            request["chain"] = chain
        return self.fetch(port, request)

    def close(self) -> None:
        with self._lock:
            peers = list(self._peers.values())
            self._peers.clear()
        for peer in peers:
            self._drop(peer)


def fetch(port: int, request: dict, timeout: float = 5.0,
          retries: int = 3, backoff: float = 0.05) -> bytes:
    """One-shot fetch from a peer's shuffle server (fresh connection per
    request).  Workers use a :class:`PeerPool`; this stays for tools and
    tests that want a single stateless request."""
    pool = PeerPool(timeout=timeout, retries=retries, backoff=backoff,
                    persistent=False)
    try:
        return pool.fetch(port, request)
    finally:
        pool.close()


def fetch_piece(port: int, job: int, partition: int, split_index: int,
                n_splits: int, chain: Optional[str] = None) -> bytes:
    """One-shot piece fetch (see :meth:`PeerPool.fetch_piece`)."""
    request = {"kind": "piece", "job": job, "partition": partition,
               "split": split_index, "n_splits": n_splits}
    if chain is not None:
        request["chain"] = chain
    return fetch(port, request)
