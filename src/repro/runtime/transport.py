"""Process-to-process plumbing: control pipes, heartbeats, shuffle sockets.

Three channels connect a worker to the rest of the runtime:

* a **command pipe** (coordinator -> worker): task commands, invalidation
  drops, stop;
* an **event pipe** (worker -> coordinator): heartbeats, readiness, task
  commits and failures.  The worker writes it from two threads (main loop
  and heartbeat), serialized by :class:`LockedConnection`.  A ``SIGKILL``
  can only tear *this worker's* pipe — the coordinator reads a broken
  stream as an end-of-channel signal for that node alone, never a shared
  corrupted queue;
* a **shuffle server** (worker <-> worker): a TCP listener on the
  loopback interface serving the node's persisted files.  Reducers fetch
  map-output slices from mapper nodes; re-homed mappers fetch upstream
  piece ranges.  A dead worker's socket refuses connections, which a
  fetching worker reports as a task failure — the coordinator's heartbeat
  expiry then declares the death and triggers recovery.

Heartbeats follow :class:`repro.faults.HeartbeatDetector` semantics:
workers beat every ``interval`` wall-clock seconds and the coordinator
declares a node dead once ``expiry`` seconds pass without one.
``expiry == 0`` is *paper mode* — the omniscient detector: the kernel
closing the dead process's pipe is treated as an immediate declaration.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

    from repro.runtime.storage import NodeStore

_LEN = struct.Struct(">Q")

#: errors that mean "the other side of this channel is gone"
CHANNEL_DOWN = (EOFError, OSError, BrokenPipeError, ConnectionError,
                pickle.UnpicklingError)


class FetchError(RuntimeError):
    """A shuffle fetch could not be served (source likely dead)."""


class LockedConnection:
    """A pipe connection whose sends are serialized across threads."""

    def __init__(self, conn: "Connection"):
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, obj) -> None:
        with self._lock:
            self._conn.send(obj)


def start_heartbeat(conn: LockedConnection, node: int,
                    interval: float) -> threading.Thread:
    """Beat ``("hb", node)`` every ``interval`` seconds until the process
    dies (daemon thread; a SIGKILL stops it with the process)."""

    def beat() -> None:
        while True:
            time.sleep(interval)
            try:
                conn.send(("hb", node))
            except CHANNEL_DOWN:  # coordinator gone; nothing left to do
                return

    thread = threading.Thread(target=beat, name=f"hb-node{node}",
                              daemon=True)
    thread.start()
    return thread


# ------------------------------------------------------------- shuffle server
def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    while size:
        chunk = sock.recv(size)
        if not chunk:
            raise ConnectionError("shuffle peer closed mid-message")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def serve_request(store: "NodeStore", request: dict) -> bytes:
    """Resolve one shuffle request against the node's local files.

    ``maps`` is the bulk-shuffle request: every requested map task's
    slice for one partition in a single response (frame concatenation is
    record-list concatenation, so the reducer decodes it in one go) —
    one connection per source *node* instead of per map task."""
    kind = request["kind"]
    if kind == "maps":
        return b"".join(
            store.read_map_slice(request["job"], task, request["partition"])
            for task in request["tasks"])
    if kind == "piece":
        return store.read_piece(request["job"], request["partition"],
                                request["split"], request["n_splits"])
    raise ValueError(f"unknown shuffle request kind {kind!r}")


def start_shuffle_server(store: "NodeStore",
                         timeout: float = 10.0) -> tuple[socket.socket, int]:
    """Bind the node's shuffle listener and serve it from a daemon thread.

    Returns ``(listener, port)``; the port is reported to the coordinator
    in the worker's readiness message and distributed to fetching peers
    inside task commands."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(64)
    port = listener.getsockname()[1]

    def serve_one(conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(timeout)
                size = _LEN.unpack(_recv_exact(conn, _LEN.size))[0]
                request = pickle.loads(_recv_exact(conn, size))
                payload = serve_request(store, request)
                conn.sendall(_LEN.pack(len(payload)) + payload)
        except (OSError, ConnectionError, ValueError, pickle.PickleError):
            pass  # fetcher sees a short read and retries/reports

    def accept_loop() -> None:
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:  # listener closed at shutdown
                return
            threading.Thread(target=serve_one, args=(conn,),
                             daemon=True).start()

    threading.Thread(target=accept_loop, name=f"shuffle-node{store.node}",
                     daemon=True).start()
    return listener, port


def fetch(port: int, request: dict, timeout: float = 5.0,
          retries: int = 3, backoff: float = 0.05) -> bytes:
    """Fetch bytes from a peer's shuffle server.

    Retries transient connection errors ``retries`` times, then raises
    :class:`FetchError` — at which point the peer is almost certainly
    dead and the coordinator's failure path takes over."""
    payload = pickle.dumps(request)
    last: Optional[Exception] = None
    for attempt in range(retries):
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=timeout) as sock:
                sock.sendall(_LEN.pack(len(payload)) + payload)
                size = _LEN.unpack(_recv_exact(sock, _LEN.size))[0]
                return _recv_exact(sock, size)
        except (OSError, ConnectionError) as exc:
            last = exc
            time.sleep(backoff * (attempt + 1))
    raise FetchError(f"shuffle fetch from port {port} failed: {last}")


def fetch_piece(port: int, job: int, partition: int, split_index: int,
                n_splits: int) -> bytes:
    """Fetch one stored piece's bytes from a peer's shuffle server.

    Shared by re-homed mappers reading upstream piece ranges and replica
    writers copying a piece from its primary holder (the REPL-k /
    hybrid-anchor pipelined replication path)."""
    return fetch(port, {"kind": "piece", "job": job, "partition": partition,
                        "split": split_index, "n_splits": n_splits})
