"""Node-local persisted outputs and the coordinator's damage inventory.

On-disk layout (``repro.dfs``-compatible: one directory per node, one
single-replica file per stored object, exactly what a collocated
compute/storage node loses when it dies)::

    <root>/node03/map/job2/task1000007/part0.bin      one shuffle slice
    <root>/node03/map/job2/task1000007/meta.json      task id, origin, counts
    <root>/node03/reduce/job1/part2/s1of3.bin         one stored piece

Records are framed binary — 8-byte big-endian key, 4-byte length, value —
so a partition's bytes are a pure function of its record multiset and the
final-output checksum is comparable byte-for-byte across backends
(:func:`chain_checksum` is the single definition both the in-process and
the multi-process backend report).

Writes go through a temp file + ``os.replace`` so a ``SIGKILL`` mid-write
can never surface a torn file as a committed output: the coordinator only
learns about an output from the worker's commit message, which is sent
after the rename.

:class:`ClusterRegistry` is the coordinator-side metadata: which node
persists which map output and which reducer piece — the same shape as
:class:`repro.localexec.engine.LocalCluster`'s in-memory maps.  On a
worker death it produces the damage inventory (lost piece signatures per
partition) the shared recovery planner consumes.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional

from repro.localexec.records import Record, split_of
from repro.runtime.recovery import PARENT_STRIDE, STRIDE, PieceSignature

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the baked toolchain
    _np = None

_KEY = struct.Struct(">QI")


# --------------------------------------------------------------- record codec
def _encode_uniform(records: list, values: list, length: int) -> bytes:
    """Encode a uniform-value-length batch into one preallocated output
    buffer: the frames form an ``n x (12 + length)`` matrix, so keys,
    the constant length field, and the value blob each land with a
    single vectorized column write — no per-record Python bytecode on
    the ~2M-frame batches the shuffle writes."""
    n = len(records)
    out = _np.empty((n, _KEY.size + length), dtype=_np.uint8)
    keys = _np.array([rec.key for rec in records], dtype=_np.uint64)
    out[:, :8] = keys.astype(">u8").view(_np.uint8).reshape(n, 8)
    out[:, 8:12] = _np.frombuffer(struct.pack(">I", length), _np.uint8)
    if length:
        out[:, 12:] = _np.frombuffer(b"".join(values),
                                     _np.uint8).reshape(n, length)
    return out.tobytes()


def encode_records(records: Iterable[Record]) -> bytes:
    """Canonical framed encoding of a record sequence.

    The hot path: every real workload here carries uniform-size values,
    so the frames are a fixed-stride matrix and the whole batch encodes
    with three vectorized column writes into one preallocated buffer
    instead of a two-entries-per-record Python list joined at the end
    (``benchmarks/common.py::codec_bench`` measures the difference).
    Ragged values — and keys outside the u64 range numpy can vectorize,
    which ``pack`` rejects below anyway — take the per-record loop."""
    records = records if isinstance(records, list) else list(records)
    if not records:
        return b""
    if _np is not None:
        values = [rec.value for rec in records]
        lengths = list(map(len, values))
        if min(lengths) == max(lengths):
            try:
                return _encode_uniform(records, values, lengths[0])
            except OverflowError:
                pass
    parts = []
    for rec in records:
        parts.append(_KEY.pack(rec.key, len(rec.value)))
        parts.append(rec.value)
    return b"".join(parts)


def iter_record_frames(data):
    """Yield ``(key, start, end)`` raw frame spans of the framed encoding.

    The streaming primitive behind :func:`decode_records` and
    :func:`filter_split`: walking the frames costs two struct reads per
    record and never materializes a ``Record``, which is what the shuffle
    serve path wants — it only needs keys (for split routing) and raw
    byte spans (to forward verbatim).  ``data`` may be ``bytes`` or a
    ``memoryview`` — ``unpack_from`` reads either without copying."""
    offset = 0
    size = len(data)
    while offset < size:
        if size - offset < _KEY.size:
            raise ValueError("truncated record header")
        key, length = _KEY.unpack_from(data, offset)
        end = offset + _KEY.size + length
        if end > size:
            raise ValueError("truncated record value")
        yield key, offset, end
        offset = end


def iter_records(data: bytes):
    """Lazily decode the framed encoding into :class:`Record`s."""
    for key, start, end in iter_record_frames(data):
        yield Record(key, data[start + _KEY.size:end])


def decode_records(data: bytes) -> list[Record]:
    return list(iter_records(data))


def filter_split_spans(data, split_index: int, n_splits: int
                       ) -> list[memoryview]:
    """The frames of ``data`` routing to ``split_index`` of a
    ``n_splits``-way split, as zero-copy ``memoryview`` spans.

    Adjacent kept frames coalesce into single spans, so the common case
    (long runs of same-split keys) yields a short span list the serve
    path can hand to ``socket.sendmsg`` verbatim — the filtered bytes
    are never copied into an intermediate buffer.  The spans alias
    ``data``: callers that outlive ``data`` must join first."""
    mv = data if isinstance(data, memoryview) else memoryview(data)
    if n_splits <= 1:
        return [mv] if len(mv) else []
    merged: list[list[int]] = []
    for key, start, end in iter_record_frames(mv):
        if split_of(key, n_splits) != split_index:
            continue
        if merged and merged[-1][1] == start:
            merged[-1][1] = end
        else:
            merged.append([start, end])
    return [mv[start:end] for start, end in merged]


def filter_split(data: bytes, split_index: int, n_splits: int) -> bytes:
    """Keep only the frames whose key routes to ``split_index`` of a
    ``n_splits``-way reducer split.

    Operates on raw frame spans — no ``Record`` objects, no re-encoding —
    so the shuffle server can filter a requested slice before shipping
    it: a k-way split recomputation then ships 1/k of the partition
    bytes instead of sending everything and letting each split reducer
    throw (k-1)/k of it away client-side.  Frame order is preserved, so
    the concatenation of all ``n_splits`` filtrations is a permutation-
    free repartition of ``data`` and decoding is unchanged."""
    if n_splits <= 1:
        return data
    spans = filter_split_spans(data, split_index, n_splits)
    if not spans:
        return b""
    return b"".join(spans)


def chain_checksum(final_output: dict[int, list[Record]]) -> str:
    """MD5 over the canonical encoding of the chain's final output.

    ``final_output`` maps partition -> records (as returned by
    ``LocalCluster.final_output`` or ``Coordinator.final_output``); records
    are sorted per partition before hashing, so the checksum is independent
    of piece boundaries, split ratios, and execution order."""
    h = hashlib.md5()
    for partition in sorted(final_output):
        records = sorted(final_output[partition])
        h.update(_KEY.pack(partition, len(records)))
        h.update(encode_records(records))
    return h.hexdigest()


# ---------------------------------------------------------------- memory tier
class MemoryTier:
    """A write-through RAM cache over a node's on-disk outputs.

    The hot tier of the M3R-style data plane: every committed map slice
    and reduce piece is pinned in memory at commit time and served from
    RAM on the read path (same-worker handoff, shuffle serving), while
    the on-disk file written underneath stays the durability tier RCMP
    recovery depends on.  Above ``budget`` bytes the least-recently-used
    entries *spill* — which here just means eviction, because the disk
    copy was written before the commit message, so a spilled entry is
    re-read from its file on the next access and a ``SIGKILL`` can only
    ever lose what the recovery planner already knows how to recompute.

    Keys are absolute path strings, which makes one tier shareable
    across a worker's chain-namespaced :class:`NodeStore` views and lets
    directory-level invalidation (job drops, hybrid reclaims, chain
    sweeps) evict by path prefix.  Thread-safe: task-slot threads commit
    and read while shuffle-server threads serve."""

    def __init__(self, budget: int):
        if budget <= 0:
            raise ValueError(f"memory tier budget must be positive, "
                             f"got {budget}")
        self.budget = int(budget)
        self._lock = threading.Lock()
        self._entries: dict[str, bytes] = {}  # insertion order = LRU order
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.spills = 0

    def put(self, key: str, data: bytes) -> None:
        """Pin ``data`` under ``key``, evicting LRU entries over budget.

        An object larger than the whole budget is not admitted — it
        would only evict everything else to be evicted itself next."""
        if len(data) > self.budget:
            with self._lock:
                old = self._entries.pop(key, None)
                if old is not None:
                    self.bytes -= len(old)
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.bytes -= len(old)
            self._entries[key] = data
            self.bytes += len(data)
            while self.bytes > self.budget:
                evicted_key = next(iter(self._entries))
                self.bytes -= len(self._entries.pop(evicted_key))
                self.spills += 1

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                self.misses += 1
                return None
            # refresh recency: move to the tail of the insertion order
            del self._entries[key]
            self._entries[key] = data
            self.hits += 1
            return data

    def invalidate(self, key: str) -> None:
        with self._lock:
            data = self._entries.pop(key, None)
            if data is not None:
                self.bytes -= len(data)

    def invalidate_prefix(self, prefix: str) -> int:
        """Evict every entry whose key starts with ``prefix`` (a
        directory subtree being dropped/reclaimed/swept).  Returns the
        number of entries evicted."""
        with self._lock:
            doomed = [k for k in self._entries if k.startswith(prefix)]
            for key in doomed:
                self.bytes -= len(self._entries.pop(key))
            return len(doomed)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"budget": self.budget, "bytes": self.bytes,
                    "entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses, "spills": self.spills}


# ----------------------------------------------------------------- node store
class NodeStore:
    """One node's single-replica on-disk storage.

    ``chain`` namespaces the layout for the multi-tenant chain service:
    ``chain=None`` keeps the classic single-chain layout
    (``<root>/nodeNNN/...``) byte-for-byte, while a chain id moves every
    file under ``<root>/nodeNNN/chains/<chain>/...`` so concurrent
    chains sharing one worker pool can never collide on a
    ``(job, task)`` or ``(job, partition, split)`` path."""

    def __init__(self, root: str | Path, node: int,
                 chain: Optional[str] = None,
                 memory: Optional[MemoryTier] = None):
        self.node = node
        self.root = Path(root)
        self.chain = chain
        self.memory = memory
        self.dir = self.root / f"node{node:03d}"
        if chain is not None:
            self.dir = self.dir / "chains" / str(chain)

    def for_chain(self, chain: Optional[str]) -> "NodeStore":
        """The same node's store under ``chain``'s namespace (``self``
        when the chain id already matches — the common single-chain
        case pays nothing).  The memory tier is shared across namespace
        views: keys are absolute paths, so entries can never collide."""
        if chain == self.chain:
            return self
        return NodeStore(self.root, self.node, chain=chain,
                         memory=self.memory)

    # -- paths ----------------------------------------------------------
    def map_dir(self, job: int, task_id: int) -> Path:
        return self.dir / "map" / f"job{job}" / f"task{task_id}"

    def map_slice_path(self, job: int, task_id: int, partition: int) -> Path:
        return self.map_dir(job, task_id) / f"part{partition}.bin"

    def piece_path(self, job: int, partition: int, split_index: int,
                   n_splits: int) -> Path:
        return (self.dir / "reduce" / f"job{job}" / f"part{partition}"
                / f"s{split_index}of{n_splits}.bin")

    # -- writes ---------------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # the tmp name carries pid + thread id: a multi-slot worker may
        # execute a re-dispatched duplicate of a task concurrently with
        # the original attempt, and two writers sharing one tmp path
        # could interleave into a torn rename
        tmp = path.with_suffix(
            path.suffix + f".{os.getpid()}-{threading.get_ident()}.tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            # the disk tier is the durability story recovery depends on:
            # fsync before the rename so the committed name can never
            # point at data the page cache lost in a host crash
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # The one tolerated crash window: dying *between* the write and
        # the rename leaves a stale ``*.tmp`` the committed name never
        # points at — the commit message is only sent after the rename,
        # so the coordinator treats the task as never-completed and
        # recomputes it; the orphan tmp is swept with its job directory.

    def _commit(self, path: Path, data: bytes) -> None:
        """Write-through commit: durable file first, then pin the bytes
        hot in the memory tier (commit order matters — a reader must
        never see a memory entry whose disk copy could still be lost to
        a ``SIGKILL``)."""
        self._write_atomic(path, data)
        if self.memory is not None:
            self.memory.put(str(path), data)

    def write_map_output(self, job: int, task_id: int,
                         origin: Optional[tuple[int, int]],
                         slices: dict[int, list[Record]]) -> dict[int, int]:
        """Persist one mapper's per-partition shuffle slices; returns the
        per-partition record counts (the commit message payload)."""
        counts = {}
        for partition, records in slices.items():
            self._commit(self.map_slice_path(job, task_id, partition),
                         encode_records(records))
            counts[partition] = len(records)
        meta = {"task_id": task_id, "origin": origin, "counts": counts}
        self._write_atomic(self.map_dir(job, task_id) / "meta.json",
                           json.dumps(meta).encode())
        return counts

    def write_piece(self, job: int, partition: int, split_index: int,
                    n_splits: int, records: list[Record]) -> int:
        self._commit(self.piece_path(job, partition, split_index, n_splits),
                     encode_records(records))
        return len(records)

    def write_piece_bytes(self, job: int, partition: int, split_index: int,
                          n_splits: int, data: bytes) -> None:
        """Persist an already-encoded piece verbatim (replica writes: the
        bytes arrive over the shuffle transport from the primary holder
        and must land byte-identical, behind the same atomic rename)."""
        self._commit(self.piece_path(job, partition, split_index, n_splits),
                     data)

    # -- reads ----------------------------------------------------------
    def read_map_slice(self, job: int, task_id: int, partition: int) -> bytes:
        """A mapper's slice for one partition (empty when the mapper
        produced no record for it)."""
        path = self.map_slice_path(job, task_id, partition)
        if self.memory is not None:
            data = self.memory.get(str(path))
            if data is not None:
                return data
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return b""
        if self.memory is not None:  # spilled entry reloads on access
            self.memory.put(str(path), data)
        return data

    def read_piece(self, job: int, partition: int, split_index: int,
                   n_splits: int) -> bytes:
        path = self.piece_path(job, partition, split_index, n_splits)
        if self.memory is not None:
            data = self.memory.get(str(path))
            if data is not None:
                return data
        data = path.read_bytes()
        if self.memory is not None:
            self.memory.put(str(path), data)
        return data

    # -- invalidation ---------------------------------------------------
    def drop_map_output(self, job: int, task_id: int) -> None:
        """Delete one persisted map output (the Fig. 5 guard)."""
        directory = self.map_dir(job, task_id)
        if self.memory is not None:
            self.memory.invalidate_prefix(str(directory))
        if not directory.is_dir():
            return
        for path in directory.iterdir():
            path.unlink(missing_ok=True)
        directory.rmdir()

    def drop_piece(self, job: int, partition: int, split_index: int,
                   n_splits: int) -> int:
        """Delete one committed reduce piece (the losing speculative
        attempt's output — the winner's copy on another node is the one
        the registry references).  Returns the bytes freed; missing file
        (the loser never wrote, or was already swept) frees nothing."""
        path = self.piece_path(job, partition, split_index, n_splits)
        if self.memory is not None:
            self.memory.invalidate(str(path))
        try:
            freed = path.stat().st_size
        except OSError:
            return 0
        path.unlink(missing_ok=True)
        return freed

    def _rm_tree(self, directory: Path) -> int:
        """Delete a job subtree bottom-up with real ``os.unlink``s;
        returns the bytes freed.  The memory tier drops the subtree's
        entries first so a concurrent reader can never be served bytes
        whose backing files are gone."""
        if self.memory is not None:
            self.memory.invalidate_prefix(str(directory))
        freed = 0
        if not directory.is_dir():
            return 0
        for path in sorted(directory.rglob("*"), reverse=True):
            if path.is_dir():
                path.rmdir()
            else:
                freed += path.stat().st_size
                path.unlink(missing_ok=True)
        directory.rmdir()
        return freed

    def drop_job(self, job: int) -> int:
        """Delete every file of one job — map slices, metas, and reducer
        pieces (orphan sweep before an OPTIMISTIC rerun).  Returns the
        bytes freed."""
        return (self._rm_tree(self.dir / "map" / f"job{job}")
                + self._rm_tree(self.dir / "reduce" / f"job{job}"))

    def sweep_chain(self, keep_reduce_jobs: Iterable[int]) -> int:
        """Close-time hygiene for a finished chain's namespace: delete
        every map output and every reduce job **not** in
        ``keep_reduce_jobs`` (the jobs the cross-run cache registered),
        then remove the namespace dir if nothing is left.  Returns the
        bytes freed."""
        if self.chain is None:
            raise ValueError("sweep_chain only applies to chain "
                             "namespaces")
        keep = set(keep_reduce_jobs)
        freed = self._rm_tree(self.dir / "map")
        root = self.dir / "reduce"
        if root.is_dir():
            for directory in sorted(root.iterdir()):
                if not directory.name.startswith("job"):
                    continue
                try:
                    job = int(directory.name[3:])
                except ValueError:
                    continue
                if job not in keep:
                    freed += self._rm_tree(directory)
            try:
                root.rmdir()
            except OSError:
                pass
        try:
            self.dir.rmdir()
        except OSError:
            pass
        return freed

    def reclaim_jobs(self, map_upto: int, piece_upto: int) -> int:
        """Hybrid reclamation (§IV-C) on a linear chain: delete persisted
        map outputs of jobs ``<= map_upto`` and reducer pieces of jobs
        ``<= piece_upto`` (the data behind an anchor sits safely in the
        replicated anchor output).  Returns the bytes freed."""
        return self.reclaim_job_sets(range(1, map_upto + 1),
                                     range(1, piece_upto + 1))

    def reclaim_job_sets(self, map_jobs: Iterable[int],
                         piece_jobs: Iterable[int]) -> int:
        """Set-based reclamation for DAGs: delete map outputs of the
        jobs in ``map_jobs`` and reducer pieces of the jobs in
        ``piece_jobs`` — the shielded cut behind the anchor frontier,
        which on a DAG need not be a contiguous index range.  Returns
        the bytes freed."""
        freed = 0
        for kind, jobs in (("map", set(map_jobs)),
                           ("reduce", set(piece_jobs))):
            root = self.dir / kind
            if not root.is_dir():
                continue
            for directory in root.iterdir():
                if not directory.name.startswith("job"):
                    continue
                try:
                    job = int(directory.name[3:])
                except ValueError:
                    continue
                if job in jobs:
                    freed += self._rm_tree(directory)
        return freed


# ------------------------------------------------------------------- registry
@dataclass(frozen=True)
class MapEntry:
    """Coordinator-side record of one persisted map output."""

    job: int
    task_id: int
    node: int
    origin: Optional[tuple[int, int]]
    counts: dict[int, int] = field(hash=False, default_factory=dict)


@dataclass(frozen=True)
class PieceEntry:
    """Coordinator-side record of one stored reducer piece.

    ``chain`` is the namespace the backing file lives in when it is
    *not* the owning chain's own — the cross-run cache adopts pieces in
    a donor chain's namespace.  ``None`` (the default, and the only
    value outside the cache path) means the owning chain's namespace.
    Replica copies are always written into the owning namespace, so a
    promotion after a death re-points to an own-namespace file."""

    job: int
    partition: int
    split_index: int
    n_splits: int
    node: int
    n_records: int
    chain: Optional[str] = None

    @property
    def signature(self) -> PieceSignature:
        return (self.split_index, self.n_splits)

    @property
    def key(self) -> tuple[int, int, int, int]:
        return (self.job, self.partition, self.split_index, self.n_splits)


@dataclass(frozen=True)
class BlockSpec:
    """One map-task input block under the current upstream layout.

    ``source`` locates the bytes: ``("input", node, start, count)`` — a
    slice of the node's generated chain input — or
    ``("piece", job, partition, split_index, n_splits, node, start,
    count, chain)`` — a record range of a stored upstream piece, where
    the trailing ``chain`` names the namespace the piece lives in
    (``None`` = the task's own chain; a donor chain id for pieces the
    cross-run cache adopted)."""

    task_id: int
    node: int          # where the input bytes are stored (data-locality)
    source: tuple
    origin: Optional[tuple[int, int]]


class ClusterRegistry:
    """What every node persists, and what a death destroys.

    The multi-process mirror of :class:`LocalCluster`'s storage maps:
    ``map_outputs`` and ``pieces`` track committed on-disk outputs by
    owning node; :meth:`record_death` removes a dead node's entries and
    files the lost piece signatures as the damage inventory the recovery
    planner consumes.

    Replication (REPL-k baselines and hybrid anchors, §IV-C): every
    stored piece has a *holder set* — the nodes with a byte-identical
    copy on disk.  ``pieces`` keeps exactly one entry per signature (the
    primary, whose node serves reads); ``replicas`` tracks the full
    holder set.  A death removes the dead node from every holder set and
    **promotes** a surviving holder to primary instead of filing damage —
    only a piece whose last copy died becomes damage."""

    def __init__(self) -> None:
        #: (job, task_id) -> MapEntry
        self.map_outputs: dict[tuple[int, int], MapEntry] = {}
        #: job -> partition -> list[PieceEntry], sorted like the engine
        self.pieces: dict[int, dict[int, list[PieceEntry]]] = {}
        #: job -> partition -> lost piece signatures
        self.damage: dict[int, dict[int, list[PieceSignature]]] = {}
        #: piece key -> holder nodes (primary included)
        self.replicas: dict[tuple[int, int, int, int], set[int]] = {}
        #: job -> replication target its output must maintain (REPL-k:
        #: every committed job; HYBRID: the anchor jobs)
        self.replicated_jobs: dict[int, int] = {}

    # -- commits --------------------------------------------------------
    def add_map(self, entry: MapEntry) -> None:
        self.map_outputs[(entry.job, entry.task_id)] = entry

    def add_piece(self, entry: PieceEntry) -> None:
        bucket = self.pieces.setdefault(entry.job, {}).setdefault(
            entry.partition, [])
        for old in bucket:
            if old.signature == entry.signature:
                self.replicas.pop(old.key, None)
        bucket[:] = [p for p in bucket if p.signature != entry.signature]
        bucket.append(entry)
        bucket.sort(key=lambda p: (p.n_splits, p.split_index))
        self.replicas[entry.key] = {entry.node}

    def add_replica(self, job: int, partition: int, split_index: int,
                    n_splits: int, node: int) -> None:
        """Register one committed replica copy of a stored piece."""
        key = (job, partition, split_index, n_splits)
        if key not in self.replicas:
            raise KeyError(f"no primary piece for replica {key}")
        self.replicas[key].add(node)

    def holders(self, job: int, partition: int, split_index: int,
                n_splits: int) -> set[int]:
        return set(self.replicas.get(
            (job, partition, split_index, n_splits), ()))

    def mark_replicated(self, job: int, target: int) -> None:
        """Record that ``job``'s output must maintain ``target`` copies
        (re-replication restores the invariant after deaths)."""
        self.replicated_jobs[job] = target

    def under_replicated(self, n_alive: int) -> list[PieceEntry]:
        """Pieces of replication-tracked jobs holding fewer copies than
        their target (capped at the surviving-node count), ascending."""
        out: list[PieceEntry] = []
        for job in sorted(self.replicated_jobs):
            want = min(self.replicated_jobs[job], n_alive)
            for partition in sorted(self.pieces.get(job, {})):
                for entry in self.pieces[job][partition]:
                    if len(self.replicas.get(entry.key, ())) < want:
                        out.append(entry)
        return out

    def drop_map(self, job: int, task_id: int) -> Optional[MapEntry]:
        return self.map_outputs.pop((job, task_id), None)

    def drop_job(self, job: int) -> tuple[list[MapEntry],
                                          list[tuple[PieceEntry,
                                                     set[int]]]]:
        """Forget every output of one job (full re-execution recovery).

        Returns the dropped map entries and ``(piece, holder set)``
        pairs so the coordinator can sweep the backing files off the
        worker disks — dropping metadata alone leaks orphan files."""
        maps = []
        for key in [k for k in self.map_outputs if k[0] == job]:
            maps.append(self.map_outputs.pop(key))
        dropped_pieces = []
        for plist in self.pieces.pop(job, {}).values():
            for entry in plist:
                dropped_pieces.append(
                    (entry, self.replicas.pop(entry.key, {entry.node})))
        self.damage.pop(job, None)
        self.replicated_jobs.pop(job, None)
        return maps, dropped_pieces

    def reclaim_through(self, map_upto: int, piece_upto: int) -> None:
        """Forget reclaimed outputs (hybrid §IV-C) on a linear chain:
        map outputs of jobs ``<= map_upto``, pieces of jobs
        ``<= piece_upto``."""
        self.reclaim_job_sets(range(1, map_upto + 1),
                              range(1, piece_upto + 1))

    def reclaim_job_sets(self, map_jobs: Iterable[int],
                         piece_jobs: Iterable[int]) -> None:
        """Forget reclaimed outputs of explicit job sets (the DAG
        shielded cut).  The files are deleted by the workers; the
        registry must forget them too or a later death would file damage
        pointing at unlinked paths."""
        map_set, piece_set = set(map_jobs), set(piece_jobs)
        for key in [k for k in self.map_outputs if k[0] in map_set]:
            del self.map_outputs[key]
        for job in [j for j in self.pieces if j in piece_set]:
            for plist in self.pieces.pop(job).values():
                for entry in plist:
                    self.replicas.pop(entry.key, None)
            self.damage.pop(job, None)
            self.replicated_jobs.pop(job, None)

    # -- failure --------------------------------------------------------
    def record_death(self, node: int,
                     completed_jobs: int | Iterable[int]) -> None:
        """Remove the dead node's outputs; file damage for committed jobs.

        A piece with surviving replica holders is *promoted* — its
        primary entry re-points to a surviving holder — and never becomes
        damage.  Losses in a not-yet-committed job are not damage either:
        the job will simply re-run its missing work.  Only last-copy
        losses in committed jobs get signatures filed for the planner;
        ``completed_jobs`` is the done set — an int is the classic chain
        prefix ``1..k``, an iterable the explicit (possibly non-prefix)
        DAG done set."""
        if isinstance(completed_jobs, int):
            done = set(range(1, completed_jobs + 1))
        else:
            done = set(completed_jobs)
        for key in [k for k, m in self.map_outputs.items()
                    if m.node == node]:
            del self.map_outputs[key]
        for job, partitions in self.pieces.items():
            for partition, plist in list(partitions.items()):
                if not any(p.node == node for p in plist):
                    continue
                kept: list[PieceEntry] = []
                for p in plist:
                    if p.node != node:
                        kept.append(p)
                        continue
                    survivors = self.replicas.get(p.key, set()) - {node}
                    if survivors:
                        self.replicas[p.key] = survivors
                        # replicas live in the owning chain's own
                        # namespace, so promotion clears any donor chain
                        kept.append(replace(p, node=min(survivors),
                                            chain=None))
                        continue
                    self.replicas.pop(p.key, None)
                    if job in done:
                        self.damage.setdefault(job, {}).setdefault(
                            partition, []).append(p.signature)
                partitions[partition] = kept
        for holders in self.replicas.values():
            holders.discard(node)

    def damaged_jobs(self) -> list[int]:
        return sorted(j for j, d in self.damage.items()
                      if any(d.values()))

    # -- queries --------------------------------------------------------
    def map_tasks_of(self, job: int) -> list[int]:
        return sorted(t for (j, t) in self.map_outputs if j == job)

    def covered(self, job: int, partition: int) -> bool:
        """Whether the stored pieces cover the partition exactly once."""
        plist = self.pieces.get(job, {}).get(partition, [])
        return abs(sum(1.0 / p.n_splits for p in plist) - 1.0) <= 1e-9

    def coverage_complete(self, job: int, n_partitions: int) -> bool:
        return all(self.covered(job, p) for p in range(n_partitions))

    def blocks_for(self, job: int, n_nodes: int, records_per_node: int,
                   records_per_block: int,
                   parents: Optional[tuple[int, ...]] = None
                   ) -> list[BlockSpec]:
        """The map-side input blocks of ``job`` under the current layout.

        ``parents`` is the job's upstream tuple from the dependency
        graph (``None`` = the linear chain: ``(job - 1,)``, or the
        computation input for job 1).  Must enumerate exactly like
        ``LocalCluster.input_blocks`` — same task ids, same record
        ranges, same empty-piece handling — or the two backends'
        recomputation would diverge."""
        if parents is None:
            parents = (job - 1,) if job > 1 else ()
        blocks: list[BlockSpec] = []
        if not parents:
            tid = 0
            for node in range(n_nodes):
                for start in range(0, records_per_node, records_per_block):
                    count = min(records_per_block, records_per_node - start)
                    blocks.append(BlockSpec(
                        tid, node, ("input", node, start, count), None))
                    tid += 1
            return blocks
        for pos, parent in enumerate(parents):
            upstream = self.pieces.get(parent)
            if upstream is None:
                raise RuntimeError(f"job {parent} has not produced output")
            if any(self.damage.get(parent, {}).values()):
                raise RuntimeError(
                    f"job {parent} output is damaged; recompute it first")
            for partition in sorted(upstream):
                ordinal = 0
                for piece in upstream[partition]:
                    for start in range(0, max(piece.n_records, 1),
                                       records_per_block):
                        count = min(records_per_block,
                                    max(piece.n_records - start, 0))
                        blocks.append(BlockSpec(
                            pos * PARENT_STRIDE + partition * STRIDE
                            + ordinal, piece.node,
                            ("piece", piece.job, piece.partition,
                             piece.split_index, piece.n_splits, piece.node,
                             start, count, piece.chain),
                            (parent, partition)))
                        ordinal += 1
        return blocks
