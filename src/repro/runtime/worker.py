"""The worker process: executes tasks against its node-local store.

One worker per simulated node.  The main loop receives commands over the
command pipe; with ``task_slots == 1`` (the default) it executes them
serially — exactly one task at a time, the classic single-slot node —
and with ``task_slots > 1`` it feeds a small pool of slot threads so one
worker process keeps several tasks in flight (the paper's surviving
parallelism, exploited *within* a node).  Map and reduce semantics reuse
the paper's UDFs from :mod:`repro.localexec.records`, so the bytes a
worker persists are identical to what the in-process backend computes
for the same task.

A worker never talks to another worker except through the shuffle:
reduce tasks fetch map-output slices from the mapper nodes' shuffle
servers (local slices are read straight from disk), and a re-homed
mapper fetches its input piece range the same way.  Fetches from
distinct source nodes run **concurrently** through a bounded fetcher
pool over :class:`~repro.runtime.transport.PeerPool`'s persistent
connections, and each response is merged into the reduce groups as it
lands.  When a fetch fails because the source died, the worker reports
``task-failed`` and returns to its loop; the coordinator's heartbeat
expiry declares the death and re-plans.

Epoch hygiene: the coordinator bumps the dispatch epoch on every death
and discards stale results, so the worker skips queued commands from a
cancelled epoch outright, and — before running the first command of a
new epoch — drains the slot pool, so recovery work never interleaves
with a cancelled epoch's stragglers on the same disk.
"""

from __future__ import annotations

import os
import queue
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Callable, Optional

from repro.localexec.records import (
    Record,
    generate_records,
    map_udf,
    partition_of,
    reduce_udf,
)
from repro.runtime import shm, transport
from repro.runtime.storage import (
    MemoryTier,
    NodeStore,
    encode_records,
    filter_split,
    iter_records,
)

#: multiprocessing.Process target — keep the signature pickle-friendly
#: so a spawn start method works where fork is unavailable.

#: data-plane defaults, overridden per run by ``RuntimeConfig``
DEFAULT_OPTIONS = {
    "task_slots": 1,
    "fetch_parallelism": 4,
    "fetch_timeout": 5.0,
    "server_timeout": 30.0,
    "server_split_filter": True,
    "persistent_connections": True,
    "memory_budget": 64 << 20,  # hot-tier bytes per worker; 0 disables
    "shared_memory": False,
    "shm_run": "",  # run-unique segment namespace, set by WorkerPool
}


def worker_main(node: int, root: str, cmd_conn, evt_conn,
                heartbeat_interval: float, seed: int,
                records_per_node: int, value_size: int,
                options: Optional[dict] = None) -> None:
    opts = dict(DEFAULT_OPTIONS)
    opts.update(options or {})
    budget = int(opts["memory_budget"])
    memory = MemoryTier(budget) if budget > 0 else None
    store = NodeStore(root, node, memory=memory)
    evt = transport.LockedConnection(evt_conn)
    # one throttle shared by the task slots and the shuffle server: a
    # "slow" fault paces both, while the heartbeat thread keeps beating
    throttle = transport.Throttle()
    server = transport.ShuffleServer(store, timeout=opts["server_timeout"],
                                     throttle=throttle)
    transport.start_heartbeat(evt, node, heartbeat_interval)
    evt.send(("ready", node, server.port, os.getpid()))
    worker = _Worker(node, store, evt, seed, records_per_node, value_size,
                     opts, throttle=throttle, server_port=server.port)
    try:
        while True:
            try:
                cmd = cmd_conn.recv()
            except transport.CHANNEL_DOWN:
                break  # coordinator is gone
            if cmd["op"] == "stop":
                break
            worker.dispatch(cmd)
    finally:
        server.close()
        worker.close()


class _SlotPool:
    """N daemon slot threads pulling task commands off one queue."""

    def __init__(self, n: int, run: Callable[[dict], None]):
        self._queue: queue.Queue = queue.Queue()
        self._run = run
        for i in range(n):
            threading.Thread(target=self._loop, name=f"slot{i}",
                             daemon=True).start()

    def _loop(self) -> None:
        while True:
            cmd = self._queue.get()
            try:
                self._run(cmd)
            finally:
                self._queue.task_done()

    def submit(self, cmd: dict) -> None:
        self._queue.put(cmd)

    def drain(self) -> None:
        """Block until every queued and running command has finished."""
        self._queue.join()


class _Worker:
    """Task execution against one node's store."""

    #: ops that run on a slot thread (everything else — ports updates,
    #: drops, sweeps, reclaims — executes inline on the command loop,
    #: which the epoch drain keeps free of concurrent task stragglers)
    TASK_OPS = ("map", "reduce", "replicate")

    def __init__(self, node: int, store: NodeStore,
                 evt: transport.LockedConnection, seed: int,
                 records_per_node: int, value_size: int,
                 options: Optional[dict] = None,
                 throttle: Optional[transport.Throttle] = None,
                 server_port: Optional[int] = None):
        opts = dict(DEFAULT_OPTIONS)
        opts.update(options or {})
        self.node = node
        self.throttle = throttle or transport.Throttle()
        self.store = store
        self.evt = evt
        self.seed = seed
        self.records_per_node = records_per_node
        self.value_size = value_size
        #: chain id -> (seed, records_per_node, value_size); the fork
        #: arguments register the default (single-chain) namespace, and
        #: the service's chain-open commands add one entry per admitted
        #: chain
        self._chains: dict = {
            None: (seed, records_per_node, value_size)}
        self._stores: dict = {None: store, store.chain: store}
        self.fetch_parallelism = max(1, int(opts["fetch_parallelism"]))
        self.server_split_filter = bool(opts["server_split_filter"])
        self.server_port = server_port
        # a fetch addressed to our own shuffle port short-circuits to the
        # local store (belt-and-braces: task paths also check explicitly
        # so the bytes are attributed to the local counter per task)
        self.pool = transport.PeerPool(
            timeout=opts["fetch_timeout"],
            persistent=opts["persistent_connections"],
            local_port=server_port, local_store=store)
        self.shm_run = str(opts["shm_run"])
        self._shm: Optional[shm.SegmentPublisher] = None
        if opts["shared_memory"] and shm.HAVE_SHM and self.shm_run:
            budget = int(opts["memory_budget"]) or (64 << 20)
            self._shm = shm.SegmentPublisher(self.shm_run, node, budget)
        # one long-lived fetcher pool shared by every task slot — a
        # per-call thread spawn would cost more than the overlap buys
        self._fetchers = (ThreadPoolExecutor(
            max_workers=self.fetch_parallelism,
            thread_name_prefix=f"fetch-node{node}")
            if self.fetch_parallelism > 1 else None)
        slots = max(1, int(opts["task_slots"]))
        self._slots = _SlotPool(slots, self.execute) if slots > 1 else None
        self._ports: dict[int, int] = {}
        self._latest_epoch = -1
        #: (chain, node) -> memoized regenerated chain input
        self._inputs: dict[tuple, list[Record]] = {}
        self._inputs_lock = threading.Lock()

    def close(self) -> None:
        if self._fetchers is not None:
            self._fetchers.shutdown(wait=False)
        self.pool.close()
        if self._shm is not None:
            self._shm.close()

    # -- command routing -------------------------------------------------
    def dispatch(self, cmd: dict) -> None:
        """Route one command from the pipe (main loop thread only)."""
        epoch = cmd.get("epoch")
        if epoch is not None and epoch > self._latest_epoch:
            # first command of a new epoch: quiesce the cancelled
            # epoch's in-flight tasks before anything newer touches the
            # store (queued stale commands fast-skip on the epoch check)
            self._latest_epoch = epoch
            if self._slots is not None:
                self._slots.drain()
        if cmd["op"] == "ports":
            # epoch-cached peer port map: sent once per epoch instead of
            # riding on every task command
            self._ports = dict(cmd["ports"])
            return
        if cmd["op"] == "throttle":
            # a "slow" fault landing: every task and shuffle response
            # from here on runs at 1/factor speed (takes effect
            # immediately, even for tasks already on slot threads)
            self.throttle.set(cmd["factor"])
            return
        if cmd["op"] == "chain-open":
            # service mode: register an admitted chain's input parameters
            # so any slot can regenerate its chain input; pipe ordering
            # guarantees this lands before the chain's first task
            self._chains[cmd["chain"]] = (
                cmd["seed"], cmd["records_per_node"], cmd["value_size"])
            return
        if cmd["op"] == "chain-close":
            # drop the finished chain's in-memory state (its params,
            # store handle, and memoized input); files stay on disk —
            # the coordinator side has already read the final output
            chain = cmd["chain"]
            self._chains.pop(chain, None)
            self._stores.pop(chain, None)
            with self._inputs_lock:
                for key in [k for k in self._inputs if k[0] == chain]:
                    del self._inputs[key]
            return
        if cmd["op"] == "chain-sweep":
            # close-time hygiene: delete the finished chain's namespace
            # files, sparing the reduce jobs the cross-run cache
            # registered.  Fire-and-forget — the chain is already closed,
            # so there is no event stream left to report on, and a
            # filesystem race must not take down the command loop.
            swept_chain, keep = cmd["chain"], set(cmd.get("keep", ()))
            if self._shm is not None:
                self._shm.unpublish_where(
                    lambda i: i[1] == swept_chain
                    and not (i[0] == "piece" and i[2] in keep))
            try:
                self.store.for_chain(swept_chain).sweep_chain(keep)
            except OSError:
                pass
            return
        if self._slots is not None and cmd["op"] in self.TASK_OPS:
            self._slots.submit(cmd)
        else:
            self.execute(cmd)

    def execute(self, cmd: dict) -> None:
        op = cmd.get("op")
        chain = cmd.get("chain")
        if cmd.get("epoch", self._latest_epoch) < self._latest_epoch:
            return  # cancelled epoch: the coordinator discards the result
        try:
            store = self._store(chain)
            if op == "map":
                self._map(cmd, chain, store)
            elif op == "reduce":
                self._reduce(cmd, chain, store)
            elif op == "replicate":
                self._replicate(cmd, chain, store)
            elif op == "drop":
                self._unpublish(lambda i: i[0] == "map" and i[1] == chain
                                and i[2] == cmd["job"]
                                and i[3] == cmd["task"])
                store.drop_map_output(cmd["job"], cmd["task"])
                self.evt.send(("dropped", self.node, cmd["epoch"], chain,
                               cmd["job"], cmd["task"]))
            elif op == "drop-piece":
                # sweep one losing speculative attempt's reduce output
                if self._shm is not None:
                    self._shm.unpublish(("piece", chain, cmd["job"],
                                         cmd["partition"], cmd["split"],
                                         cmd["n_splits"]))
                freed = store.drop_piece(cmd["job"], cmd["partition"],
                                         cmd["split"], cmd["n_splits"])
                self.evt.send(("piece-dropped", self.node, cmd["epoch"],
                               chain, cmd["job"], cmd["partition"],
                               cmd["split"], cmd["n_splits"], freed))
            elif op == "drop-job":
                self._unpublish(lambda i: i[1] == chain
                                and i[2] == cmd["job"])
                freed = store.drop_job(cmd["job"])
                self.evt.send(("job-dropped", self.node, cmd["epoch"],
                               chain, cmd["job"], freed))
            elif op == "reclaim":
                if "map_jobs" in cmd:
                    # set-based form: the shielded DAG cut behind the
                    # anchor frontier (need not be an index prefix)
                    map_jobs = set(cmd["map_jobs"])
                    piece_jobs = set(cmd["piece_jobs"])
                    self._unpublish(
                        lambda i: i[1] == chain
                        and ((i[0] == "map" and i[2] in map_jobs)
                             or (i[0] == "piece" and i[2] in piece_jobs)))
                    freed = store.reclaim_job_sets(map_jobs, piece_jobs)
                else:
                    map_upto, piece_upto = cmd["map_upto"], cmd["piece_upto"]
                    self._unpublish(
                        lambda i: i[1] == chain
                        and ((i[0] == "map" and i[2] <= map_upto)
                             or (i[0] == "piece" and i[2] <= piece_upto)))
                    freed = store.reclaim_jobs(map_upto, piece_upto)
                self.evt.send(("reclaimed", self.node, cmd["epoch"],
                               chain, cmd["anchor"], freed))
            else:
                raise ValueError(f"unknown op {op!r}")
        except transport.FetchError as exc:
            self.evt.send(("task-failed", self.node, cmd["epoch"], chain,
                           op, _task_key(cmd), str(exc)))
        except Exception:
            # a software bug, not a fetch casualty: stay alive and hand
            # the coordinator the traceback, so a deterministic error
            # surfaces as a diagnostic instead of reading as a node
            # death and cascading through recovery
            self.evt.send(("task-error", self.node, cmd.get("epoch", -1),
                           chain, op, _task_key(cmd),
                           traceback.format_exc()))

    def _store(self, chain) -> NodeStore:
        """The chain-namespaced store for one command (cached; benign if
        two slots race the first construction)."""
        store = self._stores.get(chain)
        if store is None:
            store = self._stores[chain] = self.store.for_chain(chain)
        return store

    # -- shared-memory handoff -------------------------------------------
    def _unpublish(self, predicate) -> None:
        if self._shm is not None:
            self._shm.unpublish_where(predicate)

    def _publish(self, identity: tuple, data: bytes) -> None:
        if self._shm is not None:
            self._shm.publish(identity, data)

    def _attach(self, node: int, identity: tuple) -> Optional[bytes]:
        """Try the colocated peer's published segment before its socket
        (``None`` = not published; fall back to TCP)."""
        if self._shm is None:
            return None
        return shm.attach(shm.segment_name(self.shm_run, node, identity))

    # -- input ----------------------------------------------------------
    def _node_input(self, chain, node: int) -> list[Record]:
        """Any worker can regenerate any node's chain input: the input is
        a pure function of the chain's seed (the paper's randomly
        generated binary data), so a re-homed mapper needs no fetch for
        job 1.  Memoized per (chain, node) — a node's stored input is
        generated once, like ``LocalCluster._make_input``."""
        params = self._chains.get(chain)
        if params is None:
            raise RuntimeError(
                f"chain {chain!r} is not open on node {self.node}")
        seed, records_per_node, value_size = params
        with self._inputs_lock:
            records = self._inputs.get((chain, node))
            if records is None:
                records = self._inputs[(chain, node)] = generate_records(
                    records_per_node, seed=seed * 1000 + node,
                    value_size=value_size)
            return records

    def _block_records(self, cmd: dict, chain, store: NodeStore,
                       ports: dict[int, int]
                       ) -> tuple[list[Record], int, int]:
        """Resolve one map-input block; returns ``(records, bytes fetched
        over TCP, bytes resolved locally)`` — local meaning the node's
        own store (memory tier first) or a colocated peer's published
        shared-memory segment, never a socket."""
        source = cmd["source"]
        if source[0] == "input":
            _, node, start, count = source
            return self._node_input(chain, node)[start:start + count], 0, 0
        (_, job, partition, split_index, n_splits, node, start,
         count) = source[:8]
        # a 9th element names the namespace the piece lives in — a donor
        # chain for cache-adopted pieces (8-tuples: the task's own chain)
        src_chain = source[8] if len(source) > 8 else None
        piece_chain = src_chain if src_chain is not None else chain
        fetched = local = 0
        if node == self.node:
            read_store = store if src_chain is None \
                else self._store(src_chain)
            data = read_store.read_piece(job, partition, split_index,
                                         n_splits)
            local = len(data)
        else:
            data = self._attach(node, ("piece", piece_chain, job,
                                       partition, split_index, n_splits))
            if data is not None:
                local = len(data)
            else:
                data = self.pool.fetch_piece(
                    ports[node], job, partition, split_index, n_splits,
                    chain=piece_chain)
                fetched = len(data)
        records = list(iter_records(data))
        return records[start:start + count], fetched, local

    @staticmethod
    def _cmd_ports(cmd: dict, cached: dict[int, int]) -> dict[int, int]:
        """A command may carry an explicit ``ports`` override (unit
        tests, back-compat); otherwise the epoch-cached map applies."""
        return cmd.get("ports", cached)

    # -- parallel fetch --------------------------------------------------
    def _fetch_merge(self, requests: list[tuple[int, dict]],
                     ports: dict[int, int],
                     merge: Callable[[int, bytes], None]) -> int:
        """Fetch from every source node concurrently (bounded fetcher
        pool over persistent connections) and merge each response *as it
        lands* on the calling task thread.  Returns total bytes fetched;
        raises the first :class:`transport.FetchError` after all fetchers
        settle (no fetcher thread is left dangling mid-kill — a dead
        source resolves through the pool's bounded retries)."""
        if not requests:
            return 0
        if self._fetchers is None or len(requests) <= 1:
            total = 0
            for node, request in requests:
                data = self.pool.fetch(ports[node], request)
                total += len(data)
                merge(node, data)
            return total
        futures = {self._fetchers.submit(self.pool.fetch, ports[node],
                                         request): node
                   for node, request in requests}
        total = 0
        error: Optional[Exception] = None
        for future in as_completed(futures):
            node = futures[future]
            try:
                data = future.result()
            except Exception as exc:  # noqa: BLE001 — relayed below
                error = error or exc
                continue
            total += len(data)
            merge(node, data)
        if error is not None:
            raise error
        return total

    # -- tasks -----------------------------------------------------------
    def _map(self, cmd: dict, chain, store: NodeStore) -> None:
        started = time.perf_counter()
        ports = self._cmd_ports(cmd, self._ports)
        job, task_id = cmd["job"], cmd["task"]
        records, fetched, local = self._block_records(cmd, chain, store,
                                                      ports)
        slices: dict[int, list[Record]] = {}
        for record in records:
            out = map_udf(record, job)
            slices.setdefault(
                partition_of(out.key, cmd["n_partitions"]), []).append(out)
        counts = store.write_map_output(job, task_id, cmd["origin"],
                                        slices)
        if self._shm is not None:
            for partition in counts:
                self._publish(
                    ("map", chain, job, task_id, partition),
                    store.read_map_slice(job, task_id, partition))
        # the throttle stretches the task *before* its commit event, so
        # a slow node's commits land at 1/factor speed, not just its slot
        self.throttle.pace(time.perf_counter() - started)
        self.evt.send(("map-done", self.node, cmd["epoch"], chain, job,
                       task_id, cmd["origin"], counts, os.getpid(),
                       fetched, local))

    def _reduce(self, cmd: dict, chain, store: NodeStore) -> None:
        started = time.perf_counter()
        ports = self._cmd_ports(cmd, self._ports)
        job, partition = cmd["job"], cmd["partition"]
        split_index, n_splits = cmd["split"], cmd["n_splits"]
        by_node: dict[int, list[int]] = {}
        for task_id, node in cmd["sources"]:
            by_node.setdefault(node, []).append(task_id)
        server_filter = self.server_split_filter and n_splits > 1
        groups: dict[int, list[bytes]] = {}

        def merge(node: int, data: bytes, filtered: bool) -> None:
            if n_splits > 1 and not filtered:
                data = filter_split(data, split_index, n_splits)
            for record in iter_records(data):
                groups.setdefault(record.key, []).append(record.value)

        # local bytes mirror what the TCP path would have shipped for
        # the same slices (filtered when server-side filtering is on),
        # so tcp + local is comparable across slot/node placements
        local = 0
        requests = []
        for node, tasks in sorted(by_node.items()):
            if node == self.node:
                continue
            remaining = tasks
            if self._shm is not None:  # colocated segments beat sockets
                remaining = []
                for task_id in tasks:
                    data = self._attach(
                        node, ("map", chain, job, task_id, partition))
                    if data is None:
                        remaining.append(task_id)
                        continue
                    if server_filter:
                        data = filter_split(data, split_index, n_splits)
                    local += len(data)
                    merge(node, data, filtered=server_filter)
                if not remaining:
                    continue
            request = {"kind": "maps", "job": job, "tasks": remaining,
                       "partition": partition}
            if chain is not None:
                request["chain"] = chain
            if server_filter:
                request["split"] = split_index
                request["n_splits"] = n_splits
            requests.append((node, request))
        fetched = self._fetch_merge(
            requests, ports,
            lambda node, data: merge(node, data, filtered=server_filter))
        if self.node in by_node:  # local slices never touch the network
            own = b"".join(
                store.read_map_slice(job, task_id, partition)
                for task_id in by_node[self.node])
            if server_filter:
                own = filter_split(own, split_index, n_splits)
            local += len(own)
            merge(self.node, own, filtered=server_filter)
        records = [reduce_udf(key, values)
                   for key, values in sorted(groups.items())]
        n_records = store.write_piece(job, partition, split_index,
                                      n_splits, records)
        if self._shm is not None:
            self._publish(("piece", chain, job, partition, split_index,
                           n_splits),
                          store.read_piece(job, partition, split_index,
                                           n_splits))
        self.throttle.pace(time.perf_counter() - started)
        self.evt.send(("reduce-done", self.node, cmd["epoch"], chain, job,
                       partition, split_index, n_splits, n_records,
                       os.getpid(), fetched, local))

    def _replicate(self, cmd: dict, chain, store: NodeStore) -> None:
        """Copy one stored piece from its primary holder to this node's
        disk (REPL-k / hybrid anchors): fetch the encoded bytes over the
        shuffle transport and commit them behind the same atomic rename
        as a locally computed piece — a SIGKILL mid-copy can never leave
        a torn committed replica."""
        ports = self._cmd_ports(cmd, self._ports)
        job, partition = cmd["job"], cmd["partition"]
        split_index, n_splits = cmd["split"], cmd["n_splits"]
        source = cmd["source"]
        if source == self.node:
            raise ValueError(f"node {self.node} asked to replicate its "
                             f"own piece")
        started = time.perf_counter()
        # an adopted piece's primary lives in a donor chain's namespace;
        # the copy is always committed into this chain's own
        src_chain = cmd.get("source_chain")
        piece_chain = src_chain if src_chain is not None else chain
        fetched = local = 0
        data = self._attach(source, ("piece", piece_chain, job, partition,
                                     split_index, n_splits))
        if data is not None:
            local = len(data)
        else:
            data = self.pool.fetch_piece(
                ports[source], job, partition, split_index, n_splits,
                chain=piece_chain)
            fetched = len(data)
        store.write_piece_bytes(job, partition, split_index, n_splits,
                                data)
        # the replica copy is itself attachable: after a promotion this
        # node serves the piece, so publish under our own name
        self._publish(("piece", chain, job, partition, split_index,
                       n_splits), data)
        self.throttle.pace(time.perf_counter() - started)
        self.evt.send(("replica-done", self.node, cmd["epoch"], chain,
                       job, partition, split_index, n_splits, os.getpid(),
                       fetched, local))


def _task_key(cmd: dict) -> Optional[tuple]:
    op = cmd.get("op")
    if op == "map":
        return ("map", cmd.get("job"), cmd.get("task"))
    if op == "reduce":
        return ("reduce", cmd.get("job"), cmd.get("partition"),
                cmd.get("split"), cmd.get("n_splits"))
    if op == "replicate":
        return ("replicate", cmd.get("job"), cmd.get("partition"),
                cmd.get("split"), cmd.get("n_splits"), cmd.get("target"))
    return None
