"""The worker process: executes tasks against its node-local store.

One worker per simulated node.  The main loop receives commands over the
command pipe and executes them serially — exactly one task at a time, as
one node's task slot.  Map and reduce semantics reuse the paper's UDFs
from :mod:`repro.localexec.records`, so the bytes a worker persists are
identical to what the in-process backend computes for the same task.

A worker never talks to another worker except through the shuffle: reduce
tasks fetch map-output slices from the mapper nodes' shuffle servers
(local slices are read straight from disk), and a re-homed mapper fetches
its input piece range the same way.  When a fetch fails because the
source died, the worker reports ``task-failed`` and returns to its loop;
the coordinator's heartbeat expiry declares the death and re-plans.
"""

from __future__ import annotations

import os
import traceback
from typing import Optional

from repro.localexec.records import (
    Record,
    generate_records,
    map_udf,
    partition_of,
    reduce_udf,
    split_of,
)
from repro.runtime import transport
from repro.runtime.storage import NodeStore, decode_records

#: multiprocessing.Process target — keep the signature pickle-friendly
#: so a spawn start method works where fork is unavailable.


def worker_main(node: int, root: str, cmd_conn, evt_conn,
                heartbeat_interval: float, seed: int,
                records_per_node: int, value_size: int) -> None:
    store = NodeStore(root, node)
    evt = transport.LockedConnection(evt_conn)
    listener, port = transport.start_shuffle_server(store)
    transport.start_heartbeat(evt, node, heartbeat_interval)
    evt.send(("ready", node, port, os.getpid()))
    worker = _Worker(node, store, evt, seed, records_per_node, value_size)
    try:
        while True:
            try:
                cmd = cmd_conn.recv()
            except transport.CHANNEL_DOWN:
                break  # coordinator is gone
            if cmd["op"] == "stop":
                break
            worker.execute(cmd)
    finally:
        listener.close()


class _Worker:
    """Task execution against one node's store."""

    def __init__(self, node: int, store: NodeStore,
                 evt: transport.LockedConnection, seed: int,
                 records_per_node: int, value_size: int):
        self.node = node
        self.store = store
        self.evt = evt
        self.seed = seed
        self.records_per_node = records_per_node
        self.value_size = value_size
        self._inputs: dict[int, list[Record]] = {}

    def execute(self, cmd: dict) -> None:
        op = cmd.get("op")
        try:
            if op == "map":
                self._map(cmd)
            elif op == "reduce":
                self._reduce(cmd)
            elif op == "replicate":
                self._replicate(cmd)
            elif op == "drop":
                self.store.drop_map_output(cmd["job"], cmd["task"])
                self.evt.send(("dropped", self.node, cmd["epoch"],
                               cmd["job"], cmd["task"]))
            elif op == "drop-job":
                freed = self.store.drop_job(cmd["job"])
                self.evt.send(("job-dropped", self.node, cmd["epoch"],
                               cmd["job"], freed))
            elif op == "reclaim":
                freed = self.store.reclaim_jobs(cmd["map_upto"],
                                                cmd["piece_upto"])
                self.evt.send(("reclaimed", self.node, cmd["epoch"],
                               cmd["anchor"], freed))
            else:
                raise ValueError(f"unknown op {op!r}")
        except transport.FetchError as exc:
            self.evt.send(("task-failed", self.node, cmd["epoch"], op,
                           _task_key(cmd), str(exc)))
        except Exception:
            # a software bug, not a fetch casualty: stay alive and hand
            # the coordinator the traceback, so a deterministic error
            # surfaces as a diagnostic instead of reading as a node
            # death and cascading through recovery
            self.evt.send(("task-error", self.node, cmd.get("epoch", -1),
                           op, _task_key(cmd), traceback.format_exc()))

    # -- input ----------------------------------------------------------
    def _node_input(self, node: int) -> list[Record]:
        """Any worker can regenerate any node's chain input: the input is
        a pure function of the seed (the paper's randomly generated
        binary data), so a re-homed mapper needs no fetch for job 1.
        Memoized — the node's stored input is generated once, like
        ``LocalCluster._make_input``."""
        records = self._inputs.get(node)
        if records is None:
            records = self._inputs[node] = generate_records(
                self.records_per_node, seed=self.seed * 1000 + node,
                value_size=self.value_size)
        return records

    def _block_records(self, source: tuple) -> list[Record]:
        if source[0] == "input":
            _, node, start, count = source
            return self._node_input(node)[start:start + count]
        _, job, partition, split_index, n_splits, node, start, count = source
        if node == self.node:
            data = self.store.read_piece(job, partition, split_index,
                                         n_splits)
        else:
            data = transport.fetch_piece(self._port(node), job, partition,
                                         split_index, n_splits)
        return decode_records(data)[start:start + count]

    def _port(self, node: int) -> int:
        return self._ports[node]

    # -- tasks -----------------------------------------------------------
    def _map(self, cmd: dict) -> None:
        self._ports = cmd.get("ports", {})
        job, task_id = cmd["job"], cmd["task"]
        records = self._block_records(cmd["source"])
        slices: dict[int, list[Record]] = {}
        for record in records:
            out = map_udf(record, job)
            slices.setdefault(
                partition_of(out.key, cmd["n_partitions"]), []).append(out)
        counts = self.store.write_map_output(job, task_id, cmd["origin"],
                                             slices)
        self.evt.send(("map-done", self.node, cmd["epoch"], job, task_id,
                       cmd["origin"], counts, os.getpid()))

    def _reduce(self, cmd: dict) -> None:
        self._ports = cmd.get("ports", {})
        job, partition = cmd["job"], cmd["partition"]
        split_index, n_splits = cmd["split"], cmd["n_splits"]
        by_node: dict[int, list[int]] = {}
        for task_id, node in cmd["sources"]:
            by_node.setdefault(node, []).append(task_id)
        groups: dict[int, list[bytes]] = {}
        for node, tasks in by_node.items():
            if node == self.node:
                data = b"".join(
                    self.store.read_map_slice(job, task_id, partition)
                    for task_id in tasks)
            else:
                data = transport.fetch(
                    self._port(node),
                    {"kind": "maps", "job": job, "tasks": tasks,
                     "partition": partition})
            for record in decode_records(data):
                if n_splits > 1 and \
                        split_of(record.key, n_splits) != split_index:
                    continue
                groups.setdefault(record.key, []).append(record.value)
        records = [reduce_udf(key, values)
                   for key, values in sorted(groups.items())]
        n_records = self.store.write_piece(job, partition, split_index,
                                           n_splits, records)
        self.evt.send(("reduce-done", self.node, cmd["epoch"], job,
                       partition, split_index, n_splits, n_records,
                       os.getpid()))

    def _replicate(self, cmd: dict) -> None:
        """Copy one stored piece from its primary holder to this node's
        disk (REPL-k / hybrid anchors): fetch the encoded bytes over the
        shuffle transport and commit them behind the same atomic rename
        as a locally computed piece — a SIGKILL mid-copy can never leave
        a torn committed replica."""
        self._ports = cmd.get("ports", {})
        job, partition = cmd["job"], cmd["partition"]
        split_index, n_splits = cmd["split"], cmd["n_splits"]
        source = cmd["source"]
        if source == self.node:
            raise ValueError(f"node {self.node} asked to replicate its "
                             f"own piece")
        data = transport.fetch_piece(self._port(source), job, partition,
                                     split_index, n_splits)
        self.store.write_piece_bytes(job, partition, split_index, n_splits,
                                     data)
        self.evt.send(("replica-done", self.node, cmd["epoch"], job,
                       partition, split_index, n_splits, os.getpid()))


def _task_key(cmd: dict) -> Optional[tuple]:
    op = cmd.get("op")
    if op == "map":
        return ("map", cmd.get("job"), cmd.get("task"))
    if op == "reduce":
        return ("reduce", cmd.get("job"), cmd.get("partition"),
                cmd.get("split"), cmd.get("n_splits"))
    if op == "replicate":
        return ("replicate", cmd.get("job"), cmd.get("partition"),
                cmd.get("split"), cmd.get("n_splits"), cmd.get("target"))
    return None
