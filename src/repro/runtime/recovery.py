"""The shared RCMP recovery planner (paper §IV-A/B).

Pure functions over plain data: given the damage inventory of one job,
the set of surviving persisted map outputs, and the alive nodes, produce
the minimal-recomputation plan — which mappers to re-execute, which
reducer pieces to regenerate (splitting a lost whole partition ``k`` ways,
capped at the surviving-node count), and which partitions the Fig. 5 rule
must invalidate downstream map outputs for.  :func:`cascade_start` also
understands hybrid anchors (§IV-C): an intact replicated job output
bounds the recomputation cascade from below.

Both execution backends consume the same plan:

* :mod:`repro.localexec.recovery` applies it to the in-process
  record-level cluster;
* :mod:`repro.runtime.coordinator` applies it to real worker processes.

Keeping the planner free of any engine import is what guarantees the two
backends recover byte-identically — they cannot drift apart on the rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

#: Hierarchical map-task id scheme shared with the performance layer:
#: the mappers consuming partition ``p`` of the upstream job get ids in
#: ``[p * STRIDE, (p + 1) * STRIDE)``.
STRIDE = 1_000_000

#: A job with several upstreams maps over the union of their outputs; the
#: mappers reading parent position ``i`` (the i-th entry of the job's
#: dependency tuple) get ids offset by ``i * PARENT_STRIDE``, so a task id
#: still names its exact input block: parent position, then upstream
#: partition, then block ordinal.  Parent position 0 reproduces today's
#: ids byte-for-byte, so linear chains are unchanged.
PARENT_STRIDE = STRIDE * 1000

#: ``(split_index, n_splits)`` — identity of one stored piece of a
#: partition's output; ``(0, 1)`` is the whole partition.
PieceSignature = tuple[int, int]

#: job -> partition -> list of lost piece signatures
DamageMap = Mapping[int, list[PieceSignature]]


@dataclass(frozen=True)
class JobGraph:
    """The dependency DAG of a multi-job computation.

    ``parents_of[j - 1]`` is the tuple of upstream jobs whose outputs job
    ``j`` maps over; an empty tuple means the computation's input data.
    Jobs are numbered in submission order, so every parent index is
    smaller than its consumer's — running jobs in ascending index order
    is always a valid topological order (the middleware "uses the
    dependencies to decide the order of job submission", §IV-A).

    Construction *is* the DAG guard: a spec whose edges are malformed
    (forward/self dependencies, duplicates, out-of-range indexes) raises
    ``ValueError`` here, so no entry point can silently mis-execute it.
    """

    parents_of: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.parents_of:
            raise ValueError("a computation needs at least one job")
        for j, parents in enumerate(self.parents_of, start=1):
            if len(set(parents)) != len(parents):
                raise ValueError(
                    f"job {j} lists a duplicate dependency: {parents}")
            for dep in parents:
                if not 1 <= dep < j:
                    raise ValueError(
                        f"job {j} depends on {dep}: dependencies must "
                        f"reference earlier jobs (a DAG in submission "
                        f"order)")
        consumers: dict[int, list[int]] = {}
        for j, parents in enumerate(self.parents_of, start=1):
            for dep in parents:
                consumers.setdefault(dep, []).append(j)
        object.__setattr__(self, "_consumers", {
            j: tuple(consumers.get(j, ())) for j in
            range(1, len(self.parents_of) + 1)})

    @classmethod
    def linear(cls, n_jobs: int) -> "JobGraph":
        """The paper's chain: job ``i`` feeds job ``i + 1``."""
        return cls(tuple((j - 1,) if j > 1 else ()
                         for j in range(1, n_jobs + 1)))

    @classmethod
    def from_dependencies(cls, n_jobs: int,
                          dependencies: Optional[Sequence[Sequence[int]]]
                          = None) -> "JobGraph":
        """Build a graph from a spec's ``dependencies``; ``None`` is the
        linear chain.  Raises ``ValueError`` on malformed edges."""
        if dependencies is None:
            return cls.linear(n_jobs)
        if len(dependencies) != n_jobs:
            raise ValueError(
                f"dependencies lists {len(dependencies)} jobs, "
                f"config has {n_jobs}")
        return cls(tuple(tuple(int(d) for d in deps)
                         for deps in dependencies))

    @property
    def n_jobs(self) -> int:
        return len(self.parents_of)

    def parents(self, job: int) -> tuple[int, ...]:
        if not 1 <= job <= self.n_jobs:
            raise IndexError(f"job {job} out of range")
        return self.parents_of[job - 1]

    def consumers(self, job: int) -> tuple[int, ...]:
        return self._consumers[job]  # type: ignore[attr-defined]

    def parent_pos(self, consumer: int, parent: int) -> int:
        """Position of ``parent`` in ``consumer``'s dependency tuple —
        the ``PARENT_STRIDE`` offset of the mappers reading it."""
        return self.parents(consumer).index(parent)

    def sinks(self) -> tuple[int, ...]:
        """Jobs nothing consumes — the computation's final outputs."""
        return tuple(j for j in range(1, self.n_jobs + 1)
                     if not self.consumers(j))

    def sources(self) -> tuple[int, ...]:
        """Jobs reading the computation's input data."""
        return tuple(j for j in range(1, self.n_jobs + 1)
                     if not self.parents(j))

    def is_linear(self) -> bool:
        return all(parents == ((j - 1,) if j > 1 else ())
                   for j, parents in enumerate(self.parents_of, start=1))

    def ready(self, done: Iterable[int]) -> list[int]:
        """Undone jobs whose parents are all done, ascending.  Non-empty
        whenever some job is undone: the smallest undone job's parents
        all precede it, and every smaller job is done."""
        done_set = set(done)
        return [j for j in range(1, self.n_jobs + 1)
                if j not in done_set
                and all(p in done_set for p in self.parents(j))]

    def topo_levels(self, jobs: Iterable[int]) -> list[list[int]]:
        """Partition ``jobs`` into dependency levels: every job's in-set
        parents sit in strictly earlier levels, so the jobs of one level
        are mutually independent and may execute concurrently."""
        members = set(jobs)
        level: dict[int, int] = {}
        for j in sorted(members):
            in_set = [p for p in self.parents(j) if p in members]
            level[j] = 1 + max((level[p] for p in in_set), default=0)
        out: dict[int, list[int]] = {}
        for j in sorted(members):
            out.setdefault(level[j], []).append(j)
        return [out[k] for k in sorted(out)]


@dataclass(frozen=True)
class ReduceSpec:
    """One reducer piece to regenerate, and where to run it."""

    partition: int
    split_index: int
    n_splits: int
    node: int

    @property
    def signature(self) -> PieceSignature:
        return (self.split_index, self.n_splits)


@dataclass(frozen=True)
class JobRecoveryPlan:
    """The minimal recomputation of one damaged job."""

    job: int
    #: map task ids to re-execute (their persisted outputs are gone)
    map_tasks: tuple[int, ...]
    #: reducer pieces to regenerate, in dispatch order
    reduces: tuple[ReduceSpec, ...]
    #: partitions regenerated by splitting — the Fig. 5 rule must drop
    #: the downstream map outputs derived from them
    split_partitions: tuple[int, ...]

    @property
    def split_applied(self) -> bool:
        return bool(self.split_partitions)


def effective_split_ratio(split_ratio: Optional[int], n_alive: int) -> int:
    """Reducer splitting cannot exceed the surviving-node count.

    ``None`` selects the paper's auto ratio — ``survivors - 1`` (§IV-B1:
    8 on STIC, 59 on DCO) — matching
    :meth:`repro.core.strategies.Strategy.effective_split`."""
    if n_alive < 1:
        raise ValueError("no surviving nodes")
    if split_ratio is None:
        split_ratio = max(1, n_alive - 1)
    return max(1, min(split_ratio, n_alive))


def plan_job_recovery(job: int,
                      damage: Mapping[int, list[PieceSignature]],
                      all_map_tasks: Iterable[int],
                      present_map_tasks: Iterable[int],
                      alive: Iterable[int],
                      split_ratio: Optional[int]) -> JobRecoveryPlan:
    """Plan the minimal recomputation of one damaged job.

    ``damage`` maps each affected partition to its lost piece signatures;
    ``all_map_tasks`` enumerates the job's map tasks under the *current*
    upstream layout (order preserved); ``present_map_tasks`` are the ones
    whose persisted outputs survive.  Reduce work is placed round-robin
    over the sorted ``alive`` nodes, exactly the paper's spread of
    recomputation load (§IV-B1).
    """
    if not any(damage.values()):
        raise ValueError(f"job {job} has no damage")
    alive_nodes = sorted(alive)
    ratio = effective_split_ratio(split_ratio, len(alive_nodes))

    present = set(present_map_tasks)
    map_tasks = tuple(t for t in all_map_tasks if t not in present)

    reduces: list[ReduceSpec] = []
    split_partitions: list[int] = []
    rr = 0
    for partition in sorted(damage):
        for (split_index, n_splits) in damage[partition]:
            whole = n_splits == 1
            if whole and ratio > 1:
                split_partitions.append(partition)
                for s in range(ratio):
                    node = alive_nodes[rr % len(alive_nodes)]
                    rr += 1
                    reduces.append(ReduceSpec(partition, s, ratio, node))
            else:
                node = alive_nodes[rr % len(alive_nodes)]
                rr += 1
                reduces.append(ReduceSpec(partition, split_index, n_splits,
                                          node))
    return JobRecoveryPlan(job, map_tasks, tuple(reduces),
                           tuple(split_partitions))


def cascade_jobs(graph: JobGraph, done_jobs: Iterable[int],
                 damaged_jobs: Iterable[int],
                 intact_anchors: Iterable[int] = ()) -> list[int]:
    """The recomputation cascade as a cut over the dependency graph.

    A damaged job must be recomputed exactly when some consumer still
    needs its output (paper §IV-A): the job is a sink (its output *is*
    a final result), a consumer has not finished, or a consumer is
    itself being recomputed.  Damage stranded behind intact, finished
    consumers is outside the cut — the cascade follows real edges, so
    on a DAG only the damaged *branch* recomputes while independent
    branches stay untouched.

    ``intact_anchors`` are hybrid replication points (§IV-C) whose
    output is currently intact — replicated, so a death cannot have
    damaged it.  An anchor is excluded from the damage set defensively
    and, being intact, stops the cut from propagating through it: the
    cascade is bounded by the anchor frontier, which is exactly what the
    hybrid strategy pays replication bandwidth for.

    Returns the jobs to recompute in ascending (topological) order.
    """
    done = set(done_jobs)
    damaged = set(damaged_jobs) - set(intact_anchors)
    needed: set[int] = set()
    for j in range(graph.n_jobs, 0, -1):
        if j not in damaged:
            continue
        consumers = graph.consumers(j)
        if (not consumers
                or any(c not in done for c in consumers)
                or any(c in needed for c in consumers)):
            needed.add(j)
    return sorted(needed)


def cascade_start(next_job: int, damaged_jobs: Iterable[int],
                  intact_anchors: Iterable[int] = ()) -> int:
    """First job of the recomputation cascade on a linear chain.

    The chain-shaped view of :func:`cascade_jobs`: jobs ``1 ..
    next_job - 1`` are done, ``next_job`` is the first unfinished job,
    and the cascade walks back through contiguously damaged upstream
    jobs — a damaged job further upstream, separated by an intact one,
    is not needed.  Damage at or past ``next_job`` is ignored (those
    jobs have not committed)."""
    n = max(next_job, 1)
    cascade = cascade_jobs(
        JobGraph.linear(n),
        done_jobs=range(1, next_job),
        damaged_jobs=(j for j in damaged_jobs if 1 <= j < next_job),
        intact_anchors=(a for a in intact_anchors if 1 <= a <= n))
    return min(cascade, default=next_job)


def adoptable_closure(resident_jobs: Iterable[int],
                      graph: JobGraph) -> set[int]:
    """Largest parent-closed subset of ``resident_jobs`` — the cross-run
    cache's adoptable set.

    Adopting a job without its parents would leave recovery with nothing
    to cascade into if an adopted piece later dies (``blocks_for`` needs
    every upstream output to re-derive the mappers), so adoption takes
    the downward closure: a job is adoptable only if all its parents
    are.  On a DAG the result may be non-contiguous — the cached half of
    a diamond adopts even when the other branch is missing."""
    resident = set(resident_jobs)
    closed: set[int] = set()
    for j in range(1, graph.n_jobs + 1):
        if j in resident and all(p in closed for p in graph.parents(j)):
            closed.add(j)
    return closed


def adoptable_prefix(resident_jobs: Iterable[int]) -> int:
    """Longest contiguous job prefix ``1..k`` present in
    ``resident_jobs`` — the linear-chain view of
    :func:`adoptable_closure` (on a chain the parent-closed subsets are
    exactly the prefixes)."""
    resident = set(resident_jobs)
    k = 0
    while (k + 1) in resident:
        k += 1
    return k


def hybrid_reclaimable(graph: JobGraph, done_jobs: Iterable[int],
                       intact_anchors: Iterable[int]
                       ) -> tuple[set[int], set[int]]:
    """Hybrid reclamation (§IV-C) as a graph cut: which jobs' map
    outputs and reducer pieces are now dead weight.

    A job is *shielded* when every path from it to unfinished work
    passes through an intact anchor: all its consumers are done, and
    each is an intact anchor or itself shielded.  A shielded job can
    never re-enter the cascade, so its map outputs (only needed to
    regenerate its own pieces) are reclaimable.  Its pieces are
    reclaimable too *unless* some consumer is an intact anchor that is
    not itself shielded — those pieces are the recompute inputs of the
    anchor frontier, kept defensively in case the anchor later loses
    every replica.  Sinks are never shielded: their output is the final
    result.

    Returns ``(map_jobs, piece_jobs)``.  On a linear chain with anchor
    ``a`` this is exactly the classic ``map_upto = a - 1``,
    ``piece_upto = a - 2`` bound, including multi-anchor progression.
    """
    done = set(done_jobs)
    anchors = set(intact_anchors)
    shielded: set[int] = set()
    for j in range(graph.n_jobs, 0, -1):
        consumers = graph.consumers(j)
        if consumers and all(
                c in done and (c in anchors or c in shielded)
                for c in consumers):
            shielded.add(j)
    piece_jobs = {j for j in shielded
                  if not any(c in anchors and c not in shielded
                             for c in graph.consumers(j))}
    return shielded, piece_jobs


def consumer_invalidations(consumer_map_entries: Iterable[tuple[int, object]],
                           job: int, partition: int,
                           parent_pos: int = 0) -> list[int]:
    """The Fig. 5 guard: consumer map outputs to drop after splitting.

    ``consumer_map_entries`` is ``(task_id, origin)`` for every persisted
    map output of one consumer of ``job``; ``origin`` is the
    ``(job, partition)`` the mapper's input block came from (or None for
    chain input).  A map output is doomed when its input partition of
    ``job`` was regenerated by splitting: its records were derived from
    the old block boundaries, so reusing it would duplicate some keys
    and drop others.  Entries in the partition's hierarchical id range
    are doomed too, covering re-blocked enumerations with a different
    block count; ``parent_pos`` is ``job``'s position in the consumer's
    dependency tuple (0 on a linear chain), selecting the id band of the
    mappers that read it."""
    lo = parent_pos * PARENT_STRIDE + partition * STRIDE
    hi = lo + STRIDE
    doomed = []
    for task_id, origin in consumer_map_entries:
        if origin == (job, partition) or lo <= task_id < hi:
            doomed.append(task_id)
    return doomed


def pre_replication_targets(entries: Iterable[tuple[tuple, set]],
                            suspected: set,
                            alive: Iterable[int]) -> dict:
    """Placement for straggler pre-replication: piece key -> target node.

    ``entries`` pairs each at-risk piece key with its current holder
    set; targets round-robin over the healthy (alive, not suspected)
    non-holders so the eager copies spread instead of piling onto one
    peer.  When every non-holder is itself suspected, any alive
    non-holder is still better than leaving the sole copy on the
    straggler.  Pure policy — both the live coordinator and tests call
    it with synthetic inputs."""
    alive_sorted = sorted(alive)
    healthy = [n for n in alive_sorted if n not in suspected]
    targets: dict = {}
    rr = 0
    for key, holders in entries:
        candidates = [n for n in healthy if n not in holders]
        if not candidates:
            candidates = [n for n in alive_sorted if n not in holders]
        if not candidates:
            continue
        targets[key] = candidates[rr % len(candidates)]
        rr += 1
    return targets
