"""Optional shared-memory handoff between colocated workers.

Every worker process in this runtime lives on one host, so a shuffle
byte crossing loopback TCP is pure overhead when the reader could map
the writer's pages directly.  Behind the ``shared_memory`` flag each
worker *publishes* its committed map slices and reduce pieces into
POSIX shared-memory segments (``multiprocessing.shared_memory``) named
deterministically from the run id, the publishing node, and the
object's logical identity — so a fetching worker can *attach* by
computing the same name, copy the bytes out, and skip the socket
entirely.  A missing segment (never published, over budget, already
unpublished, publisher dead) silently falls back to the TCP path, so
the flag can never change *what* bytes move, only *how*.

Durability is untouched: publication happens after the disk commit,
mirrors it, and is torn down with it.  Cleanup is belt-and-braces:

* the worker unpublishes segments when the corresponding outputs are
  dropped/reclaimed/swept and on orderly stop;
* :class:`repro.runtime.coordinator.WorkerPool` sweeps a dead worker's
  segments by name prefix when it reaps the death (a ``SIGKILL`` gives
  the worker no chance to clean up) and sweeps the whole run's prefix
  at shutdown.

Segments are unregistered from :mod:`multiprocessing.resource_tracker`
immediately on create/attach — the tracker would otherwise try to
unlink them a second time at interpreter exit (and, on Python < 3.13,
attaching registers too) and spam leak warnings for segments this
module already owns the lifecycle of.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Optional

try:  # pragma: no branch
    from multiprocessing import resource_tracker, shared_memory
    HAVE_SHM = True
except ImportError:  # pragma: no cover - platform without posix shm
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]
    HAVE_SHM = False

#: where the kernel exposes POSIX shared-memory segments (Linux); the
#: name-prefix sweeps scan this directory
SHM_DIR = Path("/dev/shm")


def _unregister(name: str) -> None:
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker gone at shutdown
        pass


def run_prefix(run: str) -> str:
    return f"rcmp{run}_"


def node_prefix(run: str, node: int) -> str:
    return f"rcmp{run}_n{node:03d}_"


def segment_name(run: str, node: int, identity: tuple) -> str:
    """The deterministic segment name for one published object.

    ``identity`` is the logical coordinate of the bytes — e.g.
    ``("map", chain, job, task, partition)`` or ``("piece", chain, job,
    partition, split, n_splits)`` — hashed so arbitrary chain ids can
    never exceed the POSIX name length limit.  Writer and reader derive
    the same name independently; the name is the whole protocol."""
    digest = hashlib.md5(repr(identity).encode()).hexdigest()[:20]
    return node_prefix(run, node) + digest


def attach(name: str) -> Optional[bytes]:
    """Copy one published segment's bytes out; ``None`` if absent.

    The copy is deliberate: the publisher may unlink the segment at any
    moment (drop, reclaim, death sweep) and a returned buffer must stay
    valid after the mapping is closed."""
    if not HAVE_SHM:  # pragma: no cover - platform without posix shm
        return None
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return None
    _unregister(name)
    try:
        data = bytes(seg.buf)
    finally:
        seg.close()
    return data


def sweep_prefix(prefix: str) -> int:
    """Unlink every segment whose name starts with ``prefix`` — the
    coordinator-side cleanup for a SIGKILLed worker (by node prefix)
    and for the whole run at shutdown.  Returns the number unlinked."""
    if not HAVE_SHM or not SHM_DIR.is_dir():  # pragma: no cover
        return 0
    swept = 0
    for path in SHM_DIR.glob(prefix + "*"):
        try:
            path.unlink()
            swept += 1
        except OSError:  # pragma: no cover - racing another sweep
            pass
    return swept


class SegmentPublisher:
    """The worker-side registry of its own published segments.

    Publication is capped by ``budget`` bytes (the same knob as the
    memory tier): beyond it new objects simply stay TCP-served — there
    is no eviction, because a reader attaching mid-eviction would fall
    back to TCP anyway and the run's lifecycle (drops, reclaims, chain
    sweeps, shutdown) already unpublishes aggressively.  Thread-safe:
    slot threads publish concurrently."""

    def __init__(self, run: str, node: int, budget: int):
        self.run = run
        self.node = node
        self.budget = int(budget)
        self.bytes = 0
        self.published = 0
        self.skipped = 0
        self._lock = threading.Lock()
        #: identity -> (segment name, size)
        self._segments: dict[tuple, tuple[str, int]] = {}

    def publish(self, identity: tuple, data: bytes) -> bool:
        """Expose ``data`` under ``identity``'s deterministic name.
        Returns whether it was published (budget/platform permitting)."""
        if not HAVE_SHM or not data:
            return False
        name = segment_name(self.run, self.node, identity)
        with self._lock:
            old = self._segments.pop(identity, None)
            if old is not None:
                self.bytes -= old[1]
            if self.bytes + len(data) > self.budget:
                self.skipped += 1
                if old is not None:  # stale bytes must not outlive this
                    sweep_prefix(old[0])
                return False
            self._segments[identity] = (name, len(data))
            self.bytes += len(data)
            self.published += 1
        # recreate outside the registry lock: an overwrite (recompute,
        # speculative duplicate) unlinks the old mapping first
        sweep_prefix(name)
        try:
            seg = shared_memory.SharedMemory(name=name, create=True,
                                             size=len(data))
        except OSError:  # pragma: no cover - shm exhausted
            with self._lock:
                self._segments.pop(identity, None)
                self.bytes -= len(data)
                self.skipped += 1
            return False
        _unregister(name)
        try:
            seg.buf[:len(data)] = data
        finally:
            seg.close()
        return True

    def unpublish(self, identity: tuple) -> None:
        with self._lock:
            entry = self._segments.pop(identity, None)
            if entry is None:
                return
            self.bytes -= entry[1]
        sweep_prefix(entry[0])

    def unpublish_where(self, predicate) -> int:
        """Unpublish every segment whose identity satisfies
        ``predicate`` (job drops, hybrid reclaims, chain sweeps)."""
        with self._lock:
            doomed = [i for i in self._segments if predicate(i)]
            entries = []
            for identity in doomed:
                entry = self._segments.pop(identity)
                self.bytes -= entry[1]
                entries.append(entry)
        for name, _size in entries:
            sweep_prefix(name)
        return len(entries)

    def close(self) -> None:
        """Unlink everything this worker published (orderly stop)."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
            self.bytes = 0
        for name, _size in entries:
            sweep_prefix(name)
