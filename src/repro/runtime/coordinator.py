"""The coordinator: job DAG, task dispatch, and the live RCMP protocol.

Holds the chain's job-dependency DAG and drives N worker **processes**
(one per simulated node) through it.  All cluster metadata — who persists
which map output and reducer piece, what a death destroyed — lives in the
per-chain :class:`~repro.runtime.storage.ClusterRegistry`; workers are
stateless executors over their node directory.

The runtime is split in two layers so one worker pool can serve many
chains (see :mod:`repro.runtime.service`):

* :class:`WorkerPool` owns the processes — forking, readiness,
  heartbeats, the event pump, death declaration, SIGKILL injection, and
  (service mode) respawning replacements for dead nodes.  One pool, one
  dispatch epoch: a death bumps it and cancels every in-flight task.
* :class:`ChainRun` is one chain's state machine — registry, job loop,
  recovery, dispatch — executing over a pool it does not own.  In
  single-chain mode it pumps the pool directly; in service mode a
  router thread feeds it events through a queue.

:class:`Coordinator` composes a private pool with one ``ChainRun`` and
keeps the classic single-chain API.

Failure path (the paper's protocol, §IV, run for real):

1. a worker dies (``SIGKILL``, injected by a
   :class:`~repro.runtime.faults.LiveFaultPlan` or a test hook);
2. the heartbeat channel goes silent; after the detector's expiry the
   coordinator declares the node dead (``expiry == 0`` is the paper-mode
   omniscient detector: process exit is seen immediately);
3. the in-flight job is cancelled — the dispatch epoch is bumped, so any
   straggler results from before the death are discarded on arrival;
4. the registry files the damage inventory and the shared planner
   (:mod:`repro.runtime.recovery`, also used by ``localexec``) computes
   the recomputation cascade as a cut over the chain's dependency graph
   from surviving on-disk outputs;
5. damaged jobs are recomputed in topological levels — independent DAG
   branches as one combined dispatch wave: only lost mappers re-execute,
   lost whole partitions are split ``k`` ways over surviving workers
   (``k`` capped at the surviving-node count), and the Fig. 5 guard drops
   every consumer's map outputs derived from split partitions before the
   next level re-runs.

Recomputed reducer pieces are buffered and committed into the registry
atomically per job plan, so a second death mid-recovery restarts that
job's recovery from its original damage inventory instead of seeing a
half-regenerated partition.

``strategy="optimistic"`` swaps step 5 for whole-job re-execution (the
OPTIMISTIC baseline: correct, but recomputes everything the cascade
touches).

``strategy="repl2"`` / ``"repl3"`` are the Hadoop baselines: every
committed job output is replicated to k node-local stores (pipelined
copies over the shuffle transport), a death *promotes* surviving replicas
instead of filing damage, under-replicated pieces are re-replicated in
the background of the chain, and no recomputation cascade ever fires.

``strategy="hybrid"`` is §IV-C: RCMP recovery plus replication of every
``hybrid_interval``-th job's output (an *anchor*) at commit time.  The
recomputation cascade is bounded below by the last intact anchor, and
``hybrid_reclaim`` deletes the persisted map/reduce files behind the
anchor with real unlinks (mirroring ``PersistedStore.reclaim_jobs``).

Every strategy must produce byte-identical final output.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import signal
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Any, Callable, Optional

from repro.faults.detector import HeartbeatDetector, ProgressRateTracker
from repro.faults.model import FaultModel
from repro.localexec.engine import LocalJobConfig
from repro.localexec.records import Record
from repro.obs import NULL_TRACER, Tracer
from repro.runtime import shm
from repro.runtime.faults import LiveFaultPlan
from repro.runtime.recovery import (
    STRIDE,
    JobGraph,
    cascade_jobs,
    consumer_invalidations,
    hybrid_reclaimable,
    plan_job_recovery,
    pre_replication_targets,
)
from repro.runtime.storage import (
    BlockSpec,
    ClusterRegistry,
    MapEntry,
    NodeStore,
    PieceEntry,
    chain_checksum,
    decode_records,
)
from repro.runtime.transport import CHANNEL_DOWN
from repro.runtime.worker import worker_main

STRATEGIES = ("rcmp", "optimistic", "repl2", "repl3", "hybrid")

#: intermediate-output replication factor per strategy (REPL-k baselines)
_REPLICATION = {"repl2": 2, "repl3": 3}

#: hook callback: ``fn(event, **info)``; events: job-start, maps-done,
#: reduce-dispatch, job-commit, death, recovery-start, chain-done
Hooks = Callable[..., None]


class NodeDeath(Exception):
    """Raised by the event pump when a worker is declared dead."""

    def __init__(self, node: int):
        super().__init__(f"node {node} declared dead")
        self.node = node


@dataclass(frozen=True)
class RuntimeConfig:
    """Process-runtime shape: cluster size, chain config, detection."""

    n_nodes: int = 4
    chain: LocalJobConfig = LocalJobConfig()
    #: worker heartbeat period (wall-clock seconds)
    heartbeat_interval: float = 0.05
    #: silence before declaring a node dead; 0 = paper-mode omniscient
    #: detection (process exit is seen immediately)
    heartbeat_expiry: float = 0.0
    strategy: str = "rcmp"
    #: wall-clock seconds without dispatch progress before giving up
    io_timeout: float = 30.0
    #: wall-clock seconds every forked worker gets to report ready;
    #: must exceed heartbeat_expiry or a slow starter would be declared
    #: dead before its deadline even ran out
    startup_timeout: float = 30.0
    fig5_guard: bool = True
    #: concurrent tasks per worker process: 1 = classic single-slot
    #: semantics, N > 1 = a slot thread pool, "auto" = cores-aware
    #: (cpu count split across the co-hosted workers)
    task_slots: int | str = 1
    #: concurrent shuffle fetches per reduce/replicate task
    fetch_parallelism: int = 4
    #: per-attempt shuffle fetch timeout; must sit well under io_timeout
    #: so a dead source resolves to task-failed before dispatch is
    #: judged stalled
    fetch_timeout: float = 5.0
    #: filter map slices by reducer split on the serving node (ship 1/k
    #: of the partition bytes for a k-way split) instead of client-side
    server_split_filter: bool = True
    #: keep one pooled connection per peer (False = connection per
    #: request, the pre-pipelining data plane, kept for A/B benching)
    persistent_connections: bool = True
    #: bytes of hot map slices / reduce pieces each worker pins in RAM
    #: (write-through LRU over the on-disk durability tier); 0 disables
    #: the memory tier — every read goes back to the files
    memory_budget: int = 64 << 20
    #: publish committed outputs as shared-memory segments so colocated
    #: workers attach instead of fetching over loopback TCP
    #: (experimental; POSIX shm only)
    shared_memory: bool = False
    #: replicate every k-th job's output as a cascade-bounding anchor
    #: (strategy "hybrid" only; paper §IV-C)
    hybrid_interval: int = 2
    #: replication factor applied at hybrid anchors
    hybrid_replication: int = 2
    #: delete persisted map/reduce files behind each committed anchor
    hybrid_reclaim: bool = False
    #: launch backup attempts for tail tasks on idle slots (first commit
    #: wins; the loser's partial output is swept)
    speculation: bool = False
    #: a tail task older than ``slowdown x`` the phase's median committed
    #: task wall gets a backup attempt (Binocular/Hadoop semantics; must
    #: exceed 1)
    speculation_slowdown: float = 2.0
    #: absolute age floor before any backup launches (seconds) — keeps
    #: millisecond tasks from speculating on scheduler jitter
    speculation_min_age: float = 0.05
    #: eagerly replicate committed outputs held by suspected-slow nodes
    #: to a healthy peer, so their later death cascades nothing
    pre_replicate: bool = False
    #: trailing window (seconds) anchoring the fleet's task-duration
    #: baseline for progress-rate suspicion
    suspect_window: float = 1.0
    #: suspected when a node's oldest in-flight task is older than
    #: ratio x the fleet's median committed task duration
    suspect_ratio: float = 3.0
    #: fleet commits inside the window before any suspicion verdict
    suspect_min_commits: int = 3

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least 1 node")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}; "
                             f"expected one of {STRATEGIES}")
        if self.strategy == "hybrid" and self.hybrid_interval < 1:
            raise ValueError("hybrid strategy needs hybrid_interval >= 1")
        if self.hybrid_replication < 2:
            raise ValueError("hybrid_replication must be >= 2")
        if self.hybrid_reclaim and self.strategy != "hybrid":
            raise ValueError("hybrid_reclaim requires strategy='hybrid'")
        if self.replication > 1 and self.n_nodes < self.replication:
            raise ValueError(
                f"strategy {self.strategy!r} needs at least "
                f"{self.replication} nodes to place its replicas")
        if self.io_timeout <= 0:
            raise ValueError("io_timeout must be positive")
        if self.io_timeout <= 2 * self.heartbeat_expiry:
            raise ValueError(
                f"io_timeout ({self.io_timeout}s) must comfortably "
                f"exceed heartbeat_expiry ({self.heartbeat_expiry}s): "
                "a mid-shuffle death must be declared well before "
                "dispatch is judged stalled")
        if self.startup_timeout <= 0:
            raise ValueError("startup_timeout must be positive")
        if self.startup_timeout <= self.heartbeat_expiry:
            raise ValueError(
                f"startup_timeout ({self.startup_timeout}s) must exceed "
                f"heartbeat_expiry ({self.heartbeat_expiry}s): a worker "
                "still inside its startup budget may not be declared "
                "dead for heartbeat silence")
        if self.task_slots != "auto" and (
                not isinstance(self.task_slots, int)
                or self.task_slots < 1):
            raise ValueError("task_slots must be a positive int or 'auto'")
        if self.fetch_parallelism < 1:
            raise ValueError("fetch_parallelism must be >= 1")
        if self.fetch_timeout <= 0:
            raise ValueError("fetch_timeout must be positive")
        if self.fetch_timeout >= self.io_timeout:
            raise ValueError(
                f"fetch_timeout ({self.fetch_timeout}s) must be below "
                f"io_timeout ({self.io_timeout}s): a single fetch "
                "attempt may not consume the whole dispatch-stall "
                "budget")
        if not isinstance(self.memory_budget, int) \
                or self.memory_budget < 0:
            raise ValueError("memory_budget must be a non-negative "
                             "byte count (0 disables the memory tier)")
        if self.speculation_slowdown <= 1:
            raise ValueError("speculation_slowdown must be > 1 (a backup "
                             "at 1x would duplicate every task)")
        if self.speculation_min_age < 0:
            raise ValueError("speculation_min_age must be >= 0")
        if self.suspect_window <= 0:
            raise ValueError("suspect_window must be positive")
        if self.suspect_ratio <= 1:
            raise ValueError("suspect_ratio must be > 1")
        if self.suspect_min_commits < 1:
            raise ValueError("suspect_min_commits must be >= 1")
        if self.n_nodes == 1:
            # nowhere to place a backup or a pre-replica: warn and no-op
            # instead of queuing copies behind the only (possibly slow)
            # node — see also the idle-slot check in backup placement
            for knob in ("speculation", "pre_replicate"):
                if getattr(self, knob):
                    warnings.warn(
                        f"{knob} disabled: a 1-node cluster has no "
                        "healthy peer to run it on", stacklevel=2)
                    object.__setattr__(self, knob, False)
        # reuses the simulator's detector semantics (and its validation)
        self.detector  # noqa: B018 -- construct to validate

    @property
    def detector(self) -> HeartbeatDetector:
        return HeartbeatDetector(interval=self.heartbeat_interval,
                                 expiry=self.heartbeat_expiry)

    @property
    def replication(self) -> int:
        """Replication factor every committed job output maintains."""
        return _REPLICATION.get(self.strategy, 1)

    @property
    def resolved_task_slots(self) -> int:
        """``task_slots`` with ``"auto"`` resolved: the host's cores
        split across the co-hosted workers, at least 1."""
        if self.task_slots == "auto":
            return max(1, (os.cpu_count() or 1) // self.n_nodes)
        return int(self.task_slots)

    def worker_options(self) -> dict:
        """The data-plane knobs each forked worker receives."""
        return {
            "task_slots": self.resolved_task_slots,
            "fetch_parallelism": self.fetch_parallelism,
            "fetch_timeout": self.fetch_timeout,
            "server_timeout": self.io_timeout,
            "server_split_filter": self.server_split_filter,
            "persistent_connections": self.persistent_connections,
            "memory_budget": self.memory_budget,
            "shared_memory": self.shared_memory,
        }

    @property
    def recomputes(self) -> bool:
        """Whether recovery recomputes (RCMP family) — the REPL-k and
        OPTIMISTIC baselines never run a recomputation cascade."""
        return self.strategy in ("rcmp", "hybrid")

    @property
    def graph(self) -> JobGraph:
        """The chain's dependency DAG (linear when ``dependencies`` is
        unset), cached — it is consulted per dispatched task."""
        cached = self.__dict__.get("_graph")
        if cached is None:
            cached = self.chain.graph()
            object.__setattr__(self, "_graph", cached)
        return cached

    def is_anchor(self, job: int) -> bool:
        """Hybrid replication point (§IV-C) — every ``hybrid_interval``-th
        job except sinks (whose output is part of the final result)."""
        return (self.strategy == "hybrid"
                and job % self.hybrid_interval == 0
                and bool(self.graph.consumers(job)))

    def replication_for(self, job: int) -> int:
        """Copies ``job``'s committed output must hold on distinct nodes."""
        if self.is_anchor(job):
            return self.hybrid_replication
        return self.replication


@dataclass
class _Link:
    """Coordinator-side handles for one worker process."""

    node: int
    proc: multiprocessing.Process
    cmd: Any                      # command pipe (send end)
    evt: Any                      # event pipe (recv end)
    pid: int = 0
    port: int = 0
    last_seen: float = 0.0
    closed: bool = False
    #: epoch whose peer-port map this worker has cached (ports are
    #: broadcast once per epoch instead of riding on every command)
    ports_epoch: int = -1
    #: serializes pipe writes — service mode has many chain threads
    #: dispatching to the same worker, and interleaved ``send`` bytes
    #: would corrupt the command stream
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class RunReport:
    """What one chain execution did, wall-clock."""

    checksum: str
    #: (job ordinal, "run" | "rerun" | "recompute" | "re-replicate"
    #: | "cached", wall seconds) — "cached" jobs were adopted from the
    #: cross-run result cache and did no work
    job_times: list[tuple[int, str, float]] = field(default_factory=list)
    #: (wall time since chain start, node) per declared death
    deaths: list[tuple[float, int]] = field(default_factory=list)
    n_nodes: int = 0
    strategy: str = "rcmp"
    #: (anchor job, bytes freed) per hybrid reclamation pass
    reclaims: list[tuple[int, int]] = field(default_factory=list)
    #: dispatch phase -> bytes the phase's tasks pulled over loopback
    #: TCP sockets (``shuffle_bytes_tcp`` is the explicit alias)
    shuffle_bytes: dict[str, int] = field(default_factory=dict)
    #: dispatch phase -> bytes the phase's tasks resolved *without* a
    #: socket: the node's own store (memory tier or disk) and colocated
    #: shared-memory attaches.  Local bytes mirror what the TCP path
    #: would have shipped (split-filtered when server filtering is on),
    #: so tcp + local stays an exact, placement-comparable total.
    shuffle_bytes_local: dict[str, int] = field(default_factory=dict)
    #: service-mode submission id (None for single-chain runs)
    chain_id: Optional[str] = None
    #: straggler handling: speculative attempts/wins/wasted bytes,
    #: pre-replicated pieces, and the node -> factor throttle map
    speculation: dict = field(default_factory=dict)

    @property
    def wall_time(self) -> float:
        return sum(t for _, _, t in self.job_times)

    @property
    def shuffle_bytes_tcp(self) -> dict[str, int]:
        """Per-phase socket bytes (alias of ``shuffle_bytes`` — the
        historical name keeps its TCP-only meaning so byte-ratio gates
        measure wire traffic, not placement luck)."""
        return self.shuffle_bytes

    @property
    def total_shuffle_bytes(self) -> int:
        """Every byte the chain's tasks pulled through the shuffle,
        TCP and local combined — exact under any slot/node placement."""
        return self.total_shuffle_bytes_tcp + self.total_shuffle_bytes_local

    @property
    def total_shuffle_bytes_tcp(self) -> int:
        return sum(self.shuffle_bytes.values())

    @property
    def total_shuffle_bytes_local(self) -> int:
        return sum(self.shuffle_bytes_local.values())

    @property
    def reclaimed_bytes(self) -> int:
        return sum(b for _, b in self.reclaims)

    def to_dict(self) -> dict:
        """JSON-serializable form (the service front door's wire shape)."""
        return {
            "checksum": self.checksum,
            "job_times": [[j, k, t] for j, k, t in self.job_times],
            "deaths": [[t, n] for t, n in self.deaths],
            "n_nodes": self.n_nodes,
            "strategy": self.strategy,
            "reclaims": [[a, b] for a, b in self.reclaims],
            "shuffle_bytes": dict(self.shuffle_bytes),
            "shuffle_bytes_local": dict(self.shuffle_bytes_local),
            "chain_id": self.chain_id,
            "wall_time": self.wall_time,
            "speculation": dict(self.speculation),
        }

    def render(self) -> str:
        lines = [f"{'job':>4s}  {'kind':<12s}  {'wall':>9s}"]
        for job, kind, wall in self.job_times:
            lines.append(f"{job:>4d}  {kind:<12s}  {wall:>8.3f}s")
        for anchor, freed in self.reclaims:
            lines.append(f"{anchor:>4d}  {'reclaim':<12s}  "
                         f"{freed:>8d}B freed behind anchor")
        lines.append(f"deaths: {len(self.deaths)}   "
                     f"shuffle: {self.total_shuffle_bytes}B "
                     f"(tcp {self.total_shuffle_bytes_tcp}B, "
                     f"local {self.total_shuffle_bytes_local}B)   "
                     f"checksum: {self.checksum}")
        if self.speculation.get("attempts") or self.speculation.get(
                "pre_replicated") or self.speculation.get("throttled"):
            spec = self.speculation
            lines.append(
                f"speculation: {spec.get('attempts', 0)} attempts, "
                f"{spec.get('wins', 0)} wins, "
                f"{spec.get('wasted_bytes', 0)}B wasted, "
                f"{spec.get('pre_replicated', 0)} pre-replicated, "
                f"throttled: {spec.get('throttled', {})}")
        return "\n".join(lines)


#: distinguishes sequential pools forked from one coordinator process in
#: the shared-memory segment namespace
_SHM_SEQ = itertools.count()


class WorkerPool:
    """The shared worker processes and everything node-lifecycle.

    Forks one worker per node, waits for readiness, pumps the event
    pipes, fires due fault kills, declares deaths (idempotently — many
    chains may react to one death), and optionally respawns replacement
    workers.  It knows nothing about chains or jobs; that is
    :class:`ChainRun`'s side of the split."""

    def __init__(self, config: RuntimeConfig, workdir: str | Path,
                 tracer: Optional[Tracer] = None, faults=None):
        """``faults`` is anything with ``due(now, alive) -> victims``
        (a :class:`~repro.runtime.faults.LiveFaultPlan`, or the chain
        service's MTBF arrival process)."""
        self.config = config
        self.workdir = Path(workdir)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults
        self.alive: set[int] = set(range(config.n_nodes))
        self.epoch = 0
        #: (wall time since pool start, node) per declared death
        self.deaths: list[tuple[float, int]] = []
        #: node -> slow factor, per throttle command delivered (obs only;
        #: detection never reads this — suspicion is progress-rate based)
        self.throttled: dict[int, float] = {}
        #: progress-rate suspicion: *suspected-slow*, distinct from dead
        self.progress = ProgressRateTracker(
            window=config.suspect_window, ratio=config.suspect_ratio,
            min_commits=config.suspect_min_commits)
        #: nodes suspected at any point while alive — sticky, because a
        #: straggler's live verdict clears the moment its queue drains at
        #: a phase boundary, yet its committed outputs stay at risk
        self.suspected_recent: set[int] = set()
        self._suspected: set[int] = set()
        self._suspected_at = 0.0
        self._links: dict[int, _Link] = {}
        self._inbox: deque[tuple] = deque()
        self._respawning: set[int] = set()
        self._ctx = None
        self._t0 = 0.0
        self._started = False
        self._shut = False
        #: run-unique shared-memory namespace: the pool pid keys the
        #: segment names its workers publish, so death/shutdown sweeps
        #: can unlink by prefix without ever touching another run's
        self._shm_run = (f"{os.getpid():x}p{next(_SHM_SEQ)}"
                         if config.shared_memory else "")

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        """Fork the workers and wait for every readiness message within
        ``config.startup_timeout``."""
        if self._started:
            raise RuntimeError("already started")
        self._started = True
        self.workdir.mkdir(parents=True, exist_ok=True)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()
        self._t0 = time.monotonic()
        self.tracer.bind(self.now, label="process-runtime")
        try:
            for node in range(self.config.n_nodes):
                self._fork_worker(node)
            pending = set(self._links)
            deadline = time.monotonic() + self.config.startup_timeout
            while pending:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"workers never reported ready within "
                        f"{self.config.startup_timeout:g}s: "
                        f"{sorted(pending)}")
                try:
                    msg = self.pump(check_faults=False)
                except NodeDeath as death:
                    raise RuntimeError(f"worker {death.node} died during "
                                       f"startup") from death
                if msg and msg[0] == "ready":
                    _, node, port, pid = msg
                    self._links[node].port = port
                    self._links[node].pid = pid
                    pending.discard(node)
        except BaseException:
            # __enter__ has not returned yet, so the context manager will
            # never call shutdown(); reap the live workers here or they
            # leak until interpreter exit
            self.shutdown()
            raise

    def _fork_worker(self, node: int) -> _Link:
        chain = self.config.chain
        cmd_recv, cmd_send = self._ctx.Pipe(duplex=False)
        evt_recv, evt_send = self._ctx.Pipe(duplex=False)
        options = self.config.worker_options()
        options["shm_run"] = self._shm_run
        proc = self._ctx.Process(
            target=worker_main,
            args=(node, str(self.workdir), cmd_recv, evt_send,
                  self.config.heartbeat_interval, chain.seed,
                  chain.records_per_node, chain.value_size, options),
            name=f"rcmp-worker-{node}", daemon=True)
        proc.start()
        cmd_recv.close()
        evt_send.close()
        link = _Link(node, proc, cmd_send, evt_recv,
                     last_seen=time.monotonic())
        self._links[node] = link
        return link

    def shutdown(self) -> None:
        """Stop and reap every worker.

        Idempotent: a failed ``start()`` reaps its own workers before
        the ``with`` block's ``__exit__`` runs shutdown again, and an
        explicit shutdown followed by the context-manager exit must not
        re-walk dead links.  Workers are joined on parallel reaper
        threads so teardown costs O(slowest worker), not a serial sum
        of up to 3 x 2 s join budgets per link."""
        if self._shut:
            return
        self._shut = True
        for link in self._links.values():
            try:
                link.cmd.send({"op": "stop"})
            except CHANNEL_DOWN:
                pass
        reapers = [threading.Thread(target=self._reap, args=(link,),
                                    name=f"reap-node{link.node}")
                   for link in self._links.values()]
        for reaper in reapers:
            reaper.start()
        for reaper in reapers:
            reaper.join()
        for link in self._links.values():
            for conn in (link.cmd, link.evt):
                try:
                    conn.close()
                except OSError:
                    pass
        if self._shm_run:
            # whatever the workers' own cleanup missed (SIGKILLed
            # workers never ran theirs) goes with the run's prefix
            shm.sweep_prefix(shm.run_prefix(self._shm_run))

    @staticmethod
    def _reap(link: _Link) -> None:
        link.proc.join(timeout=2.0)
        if link.proc.is_alive():
            link.proc.terminate()
            link.proc.join(timeout=2.0)
        if link.proc.is_alive():  # pragma: no cover - last resort
            link.proc.kill()
            link.proc.join(timeout=2.0)

    def now(self) -> float:
        return time.monotonic() - self._t0

    # -------------------------------------------------------------- sending
    def send(self, node: int, cmd: dict) -> None:
        """Send one control command (no peer-port precondition)."""
        link = self._links[node]
        with link.lock:
            self._send_locked(link, cmd)

    @staticmethod
    def _send_locked(link: _Link, cmd: dict) -> None:
        try:
            link.cmd.send(cmd)
        except CHANNEL_DOWN:
            link.closed = True  # death will be declared by the pump

    def dispatch(self, node: int, cmd: dict) -> None:
        """Send one task command, preceded — once per (link, epoch) —
        by the peer-port broadcast.  Both sends happen under the link
        lock so concurrent chain threads can neither interleave pipe
        writes nor slip a task in front of its epoch's port map."""
        link = self._links[node]
        with link.lock:
            if link.ports_epoch != self.epoch:
                self._send_locked(link, {"op": "ports", "epoch": self.epoch,
                                         "ports": self.ports()})
                link.ports_epoch = self.epoch
            self._send_locked(link, cmd)
        if (cmd.get("op") in ("map", "reduce", "replicate")
                and cmd.get("epoch") == self.epoch):
            self.progress.record_dispatch(node, time.monotonic())

    def ports(self) -> dict[int, int]:
        return {n: self._links[n].port for n in self.alive}

    def pid_of(self, node: int) -> int:
        return self._links[node].pid

    # ----------------------------------------------------------- event pump
    def pump(self, timeout: float = 0.02,
             check_faults: bool = True) -> Optional[tuple]:
        """Receive one event; fire due fault kills; declare deaths.

        Returns a non-heartbeat worker message, or None on an idle tick.
        Pending inbox messages are always delivered before a death is
        declared, so commits that beat the kill are not lost.  Readiness
        messages from respawning replacement workers are consumed here
        (they re-join ``alive`` without an epoch bump)."""
        if check_faults and self.faults:
            # slow events first: a plan pairing slow@t and kill@t must
            # throttle the victim before any same-tick kill lands.  MTBF
            # arrival processes (service mode) have no throttle clock —
            # hence the getattr duck-typing.
            due_throttles = getattr(self.faults, "due_throttles", None)
            if due_throttles is not None:
                for node, factor in due_throttles(time.monotonic(),
                                                  self.alive):
                    self.throttle_node(node, factor)
            for victim in self.faults.due(time.monotonic(), self.alive):
                self.kill_node(victim)
        if self._started:
            # keep the suspicion verdict fresh (cached ~0.05s) even when
            # nothing else polls it — detection is always on; only its
            # consumers (speculation, pre-replication) are opt-in
            self.suspected_slow()
        conns = {link.evt: node for node, link in self._links.items()
                 if (node in self.alive or node in self._respawning)
                 and not link.closed}
        if conns:
            for conn in connection_wait(list(conns), timeout=timeout):
                node = conns[conn]
                try:
                    msg = conn.recv()
                except CHANNEL_DOWN:
                    self._links[node].closed = True
                    continue
                self._links[node].last_seen = time.monotonic()
                if msg[0] != "hb":
                    if msg[0] in ("map-done", "reduce-done",
                                  "replica-done"):
                        if msg[2] == self.epoch:
                            self.progress.record_commit(
                                msg[1], time.monotonic())
                    elif msg[0] == "task-failed" and msg[2] == self.epoch:
                        self.progress.record_settled(msg[1])
                    self._inbox.append(msg)
        else:
            time.sleep(timeout)
        if self._inbox:
            msg = self._inbox.popleft()
            if msg[0] == "ready" and msg[1] in self._respawning:
                self._admit_respawned(msg)
                return None
            return msg
        dead = self._expired_nodes()
        if dead:
            raise NodeDeath(dead[0])
        return None

    def _expired_nodes(self) -> list[int]:
        detector = self.config.detector
        now = time.monotonic()
        dead = []
        for node in sorted(self.alive):
            link = self._links[node]
            if detector.paper_mode:
                # omniscient mode: a closed pipe or reaped process is an
                # immediate declaration (the paper's zero-delay detector)
                if link.closed or not link.proc.is_alive():
                    dead.append(node)
            elif now - link.last_seen > detector.expiry:
                dead.append(node)
        return dead

    # ------------------------------------------------------------ straggler
    def throttle_node(self, node: int, factor: float) -> None:
        """Deliver a ``slow@node:factor`` fault: the worker self-throttles
        its task loop and shuffle serving to 1/factor speed.  The node
        stays up, heartbeats keep flowing — slow is never dead."""
        if node not in self.alive:
            return
        self.send(node, {"op": "throttle", "factor": factor})
        self.throttled[node] = factor
        self.tracer.instant("cascade", "node-throttled", node=node,
                            factor=factor)

    def load(self, node: int) -> int:
        """Tasks currently in flight on ``node`` (backup placement)."""
        return self.progress.load(node)

    def suspected_slow(self) -> set[int]:
        """The alive nodes currently suspected slow (progress-rate
        verdict, cached briefly — chain threads poll this per event).
        Suspicion feeds speculation and pre-replication only; it never
        feeds death declaration."""
        now = time.monotonic()
        if now - self._suspected_at < 0.05:
            return self._suspected
        current = self.progress.suspects(now, self.alive)
        for node in current - self.suspected_recent:
            self.tracer.instant("cascade", "suspected-slow", node=node,
                                rate=self.progress.rate(node, now))
        for node in self._suspected - current:
            # only a genuine recovery clears: a drained queue at a phase
            # boundary says nothing about the node's speed
            if self.progress.load(node) > 0:
                self.tracer.instant("cascade", "suspicion-cleared",
                                    node=node)
        self.suspected_recent = self.suspected_recent | current
        self._suspected = current
        self._suspected_at = now
        return current

    # -------------------------------------------------------------- failure
    def kill_node(self, node: int) -> None:
        """SIGKILL a worker — a real fail-stop.  Detection still flows
        through the heartbeat channel; callers do not mark it dead."""
        link = self._links[node]
        if not link.pid:
            raise RuntimeError(f"node {node} has not reported ready")
        try:
            os.kill(link.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    def on_death(self, node: int) -> bool:
        """Pool-level death bookkeeping; idempotent (in service mode
        every chain reacts to the death, but the pool declares it once).
        Returns True when this call actually declared it.

        ``alive`` is rebound, never mutated in place: chain threads
        iterate it concurrently (``sorted(pool.alive)``) and an in-place
        ``discard`` could blow up their iteration mid-walk."""
        if node not in self.alive:
            return False
        self.epoch += 1  # cancel in-flight work: stale results discarded
        self.alive = self.alive - {node}
        self.progress.forget(node)
        self.progress.clear_outstanding()  # epoch bump cancelled the rest
        self._suspected = self._suspected - {node}
        self.suspected_recent = self.suspected_recent - {node}
        self.throttled.pop(node, None)
        link = self._links[node]
        link.closed = True
        link.proc.join(timeout=1.0)
        if self._shm_run:
            # a SIGKILLed worker never unlinks its published segments;
            # sweeping its prefix here forces readers onto the TCP path
            # (where the dead socket correctly surfaces the death)
            shm.sweep_prefix(shm.node_prefix(self._shm_run, node))
        self.deaths.append((self.now(), node))
        self.tracer.instant("cascade", "node-death", node=node,
                            pid=link.pid)
        return True

    # -------------------------------------------------------------- respawn
    def respawn(self, node: int) -> Optional[_Link]:
        """Fork a replacement worker for a dead node id (service mode).

        The replacement re-joins ``alive`` when its readiness message
        arrives in :meth:`pump` — *without* an epoch bump, which would
        silently cancel every chain's in-flight phase.  The dead
        worker's files are left on disk on purpose: each chain's
        registry dropped its entries at death (nothing references them
        again — any re-used path is atomically overwritten first), and
        the coordinator side may still be reading a completed chain's
        final output from that directory."""
        if node in self.alive or node in self._respawning:
            return None
        old = self._links.get(node)
        if old is not None:
            for conn in (old.cmd, old.evt):
                try:
                    conn.close()
                except OSError:
                    pass
        link = self._fork_worker(node)
        self._respawning.add(node)
        return link

    def _admit_respawned(self, msg: tuple) -> None:
        _, node, port, pid = msg
        link = self._links[node]
        link.port = port
        link.pid = pid
        self._respawning.discard(node)
        self.alive = self.alive | {node}
        # every worker must relearn the port map (the replacement's port
        # changed) — reset the broadcast marker under each link's lock
        # so a concurrently dispatching chain can't skip the rebroadcast
        for other in self._links.values():
            with other.lock:
                other.ports_epoch = -1
        self.tracer.instant("cascade", "node-respawned", node=node,
                            pid=pid)


class ChainRun:
    """One chain's execution state machine over a shared worker pool.

    Owns the chain's registry, job loop, recovery, and dispatch; the
    pool owns the processes.  ``chain_id=None`` is classic single-chain
    mode (files in the node roots, events pumped inline); a string id
    namespaces the chain's files on every node and expects a service
    router to feed events through :meth:`attach_inbox`'s queue."""

    def __init__(self, config: RuntimeConfig, pool: WorkerPool,
                 chain_id: Optional[str] = None,
                 tracer: Optional[Tracer] = None,
                 hooks: Optional[Hooks] = None,
                 map_assignment: Optional[Callable[[int, int, int], int]]
                 = None,
                 fault_plan: Optional[LiveFaultPlan] = None):
        """``map_assignment(job, task_id, storage_node) -> node`` overrides
        the data-local default, mirroring ``LocalCluster``'s hook (tests
        use it to construct the Fig. 5 hazard on real processes)."""
        self.config = config
        self.pool = pool
        self.chain_id = chain_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.hooks = hooks or (lambda event, **info: None)
        self.map_assignment = map_assignment or (lambda j, t, node: node)
        self.fault_plan = fault_plan
        self.registry = ClusterRegistry()
        self.graph = config.graph
        #: committed jobs — a *set*, not a high-water mark: independent
        #: DAG branches complete out of index order
        self.done_jobs: set[int] = set()
        #: jobs skipped at start via cross-run cache adoption
        self.adopted_jobs = 0
        self.deaths: list[tuple[float, int]] = []
        self.job_times: list[tuple[int, str, float]] = []
        self.reclaims: list[tuple[int, int]] = []
        self.shuffle_bytes: dict[str, int] = {}
        self.shuffle_bytes_local: dict[str, int] = {}
        # straggler accounting: backup attempts, first-commit wins, the
        # loser attempts' discarded bytes, eager pre-replications
        self.spec_attempts = 0
        self.spec_wins = 0
        self.spec_wasted_bytes = 0
        self.pre_replications = 0
        #: task key -> losing node of a resolved speculative race; its
        #: late duplicate event is swallowed and its output swept
        self._spec_losers: dict[tuple, int] = {}
        self._spec_warned = False
        self._pending_deaths: deque[int] = deque()
        self._inbox: Optional[queue.Queue] = None

    @property
    def completed_jobs(self) -> int:
        """Length of the contiguous completed prefix — the linear-chain
        view of :attr:`done_jobs`, kept for callers (benches, service
        wire shape) that report chain progress as a single number."""
        done = 0
        while done + 1 in self.done_jobs:
            done += 1
        return done

    @completed_jobs.setter
    def completed_jobs(self, value: int) -> None:
        self.done_jobs = set(range(1, value + 1))

    # --------------------------------------------------------- event intake
    def attach_inbox(self) -> queue.Queue:
        """Switch to service mode: events arrive on a queue fed by the
        service's router thread instead of pumping the pool inline."""
        self._inbox = queue.Queue()
        return self._inbox

    def notify_death(self, node: int) -> None:
        """Called by the service loop when the pool declares a death.
        Queues the death for this chain and wakes it if it is blocked
        waiting for events (task events already queued are delivered
        first, matching the pump's commits-beat-the-kill ordering)."""
        self._pending_deaths.append(node)
        if self._inbox is not None:
            self._inbox.put(("death", node))

    def _raise_pending_death(self) -> None:
        if self._pending_deaths:
            raise NodeDeath(self._pending_deaths.popleft())

    def _next_event(self, timeout: float = 0.02) -> Optional[tuple]:
        if self._inbox is None:
            return self.pool.pump(timeout)
        try:
            msg = self._inbox.get(timeout=timeout)
        except queue.Empty:
            self._raise_pending_death()
            return None
        if msg[0] == "death":
            self._raise_pending_death()
            return None
        return msg

    # ------------------------------------------------------- cache adoption
    def adopt_prefix(self, entries) -> int:
        """Adopt cached jobs (cross-run result cache): register every
        cached piece in this chain's registry and mark those jobs
        complete, so execution starts at the first uncached job.

        ``entries`` are :class:`~repro.runtime.cache.CacheEntry` rows
        forming a dependency-closed subgraph (every parent of an adopted
        job is adopted too — :func:`adoptable_closure`); on a linear
        chain that is the classic contiguous prefix.  Adopted pieces
        keep their physical namespace (``piece.chain``) — the shuffle
        path serves them across namespaces — and are single-holder by
        construction: if one dies,
        :meth:`~ClusterRegistry.record_death` files it as plain damage
        and the normal RCMP cascade recomputes it (through adopted
        upstream or from regenerated chain input).  Must run before any
        job executes."""
        if self.done_jobs or self.registry.pieces:
            raise RuntimeError("prefix adoption must precede execution")
        for entry in entries:
            for piece in entry.pieces:
                self.registry.add_piece(PieceEntry(
                    entry.job, piece.partition, piece.split_index,
                    piece.n_splits, piece.node, piece.n_records,
                    chain=piece.chain))
            self.job_times.append((entry.job, "cached", 0.0))
            self.done_jobs.add(entry.job)
        self.adopted_jobs = len(self.done_jobs)
        if entries:
            self.tracer.instant("chain", "cache-adopt",
                                jobs=self.adopted_jobs,
                                chain_id=self.chain_id)
        return self.adopted_jobs

    # ---------------------------------------------------------- chain logic
    def run(self) -> RunReport:
        """Execute the chain end to end, recovering from every death."""
        chain = self.config.chain
        span = self.tracer.span("chain", f"chain-x{chain.n_jobs}",
                                nodes=self.config.n_nodes,
                                strategy=self.config.strategy,
                                chain_id=self.chain_id)
        outcome = "ok"
        try:
            while (len(self.done_jobs) < chain.n_jobs
                   or self._cascade_jobs()
                   or self._under_replicated()):
                try:
                    self._raise_pending_death()
                    if self._cascade_jobs():
                        self._recover()
                    elif self._under_replicated():
                        self._re_replicate()
                    else:
                        # the wave of every dependency-ready job: one
                        # job on a linear chain, whole levels of a DAG
                        self._run_wave(self.graph.ready(self.done_jobs))
                except NodeDeath as death:
                    self._handle_death(death.node)
        except BaseException:
            outcome = "failed"
            raise
        finally:
            span.end(outcome=outcome, deaths=len(self.deaths))
        if self._spec_losers:
            self._drain_spec_losers()
        self.hooks("chain-done")
        checksum = self.checksum()
        return RunReport(checksum=checksum, job_times=list(self.job_times),
                         deaths=list(self.deaths),
                         n_nodes=self.config.n_nodes,
                         strategy=self.config.strategy,
                         reclaims=list(self.reclaims),
                         shuffle_bytes=dict(self.shuffle_bytes),
                         shuffle_bytes_local=dict(self.shuffle_bytes_local),
                         chain_id=self.chain_id,
                         speculation={
                             "attempts": self.spec_attempts,
                             "wins": self.spec_wins,
                             "wasted_bytes": self.spec_wasted_bytes,
                             "pre_replicated": self.pre_replications,
                             "throttled": dict(self.pool.throttled),
                         })

    def _handle_death(self, node: int) -> None:
        self.pool.on_death(node)  # no-op if another chain got there first
        self.deaths.append((self.pool.now(), node))
        if not self.pool.alive:
            raise RuntimeError("no surviving workers; chain unrecoverable")
        self.registry.record_death(node, self.done_jobs)
        self.hooks("death", node=node)

    def _run_job(self, job: int, kind: str = "run") -> None:
        """Run one job, reusing whatever committed outputs survive."""
        self._run_wave([job], kind=kind)

    def _run_wave(self, jobs: list[int], kind: str = "run") -> None:
        """Run a wave of dependency-ready jobs, reusing whatever
        committed outputs survive.  The wave's map tasks dispatch as one
        batch and its reduce tasks as another, so independent DAG
        branches genuinely overlap across workers; a single-job wave is
        byte-for-byte the classic linear job loop (same phase names,
        same dispatch order)."""
        chain = self.config.chain
        jobs = sorted(jobs)
        label = "+".join(map(str, jobs))
        t_start = time.monotonic()
        spans = {job: self.tracer.span("job", f"job-{job}", job=job,
                                       kind=kind) for job in jobs}
        outcome = "cancelled"
        try:
            for job in jobs:
                self.hooks("job-start", job=job, kind=kind)
                if self.fault_plan and kind == "run":
                    self.fault_plan.arm_job_start(job, time.monotonic())
            map_cmds = {}
            for job in jobs:
                blocks = self._blocks_for(job)
                todo = [b for b in blocks
                        if (job, b.task_id)
                        not in self.registry.map_outputs]
                map_cmds.update(self._map_commands(job, todo))
            self._run_tasks(map_cmds, phase=f"map-{label}")
            for job in jobs:
                self.hooks("maps-done", job=job)

            alive = sorted(self.pool.alive)
            cmds = {}
            for job in jobs:
                sources = self._sources(job)
                for partition in range(chain.n_partitions):
                    if self.registry.covered(job, partition):
                        continue
                    node = alive[partition % len(alive)]
                    cmds[("reduce", job, partition, 0, 1)] = (
                        node, self._reduce_command(job, partition, 0, 1,
                                                   sources))

            def dispatched() -> None:
                for job in jobs:
                    self.hooks("reduce-dispatch", job=job)

            self._run_tasks(cmds, phase=f"reduce-{label}",
                            after_send=dispatched)
            for job in jobs:
                if self.config.replication_for(job) > 1:
                    self._replicate_job_output(job)
                    if self.config.is_anchor(job) \
                            and self.config.hybrid_reclaim:
                        self._reclaim_behind(job)
            if self.config.pre_replicate:
                self._pre_replicate_suspected()
            outcome = "ok"
        finally:
            for span in spans.values():
                span.end(outcome=outcome)
        wall = (time.monotonic() - t_start) / len(jobs)
        for job in jobs:
            self.done_jobs.add(job)
            self.job_times.append((job, kind, wall))
            self.hooks("job-commit", job=job, kind=kind)

    # ---------------------------------------------------------- replication
    def _replica_commands(self, entries) -> dict:
        """Replication commands bringing each piece up to its job's
        target holder count: each missing copy is fetched from the
        primary holder by the target node over the shuffle transport."""
        alive = sorted(self.pool.alive)
        cmds = {}
        rr = 0
        for entry in entries:
            want = min(self.registry.replicated_jobs.get(
                entry.job, self.config.replication_for(entry.job)),
                len(alive))
            holders = self.registry.holders(*entry.key)
            candidates = [n for n in alive if n not in holders]
            for _ in range(want - len(holders)):
                if not candidates:
                    break
                node = candidates.pop(rr % len(candidates))
                rr += 1
                cmds[("replicate", *entry.key, node)] = (node, {
                    "op": "replicate", "job": entry.job,
                    "partition": entry.partition,
                    "split": entry.split_index,
                    "n_splits": entry.n_splits,
                    "source": entry.node, "target": node,
                    "source_chain": entry.chain,
                })
        return cmds

    def _replicate_job_output(self, job: int) -> None:
        """Copy ``job``'s committed pieces to its replication target
        (REPL-k: every job; HYBRID: the anchor jobs).  The job only
        counts as replication-tracked once every copy has committed, so
        a death mid-replication simply re-enters the job and dispatches
        the still-missing copies."""
        entries = [e for plist in self.registry.pieces.get(job, {}).values()
                   for e in plist]
        self._run_tasks(
            self._replica_commands(entries), phase=f"replicate-{job}",
            after_send=lambda: self.hooks("replicate-dispatch", job=job))
        self.registry.mark_replicated(
            job, self.config.replication_for(job))
        self.tracer.instant("cascade", "replicated", job=job,
                            target=self.config.replication_for(job),
                            anchor=self.config.is_anchor(job))

    def _under_replicated(self) -> list:
        return self.registry.under_replicated(len(self.pool.alive))

    def _re_replicate(self) -> None:
        """Restore lost copies of replication-tracked pieces after a
        death (the HDFS re-replication the REPL baselines lean on, and
        what keeps hybrid anchors intact across repeated failures)."""
        entries = self._under_replicated()
        jobs = sorted({e.job for e in entries})
        t_start = time.monotonic()
        span = self.tracer.span("cascade", "re-replicate", jobs=jobs,
                                pieces=len(entries))
        outcome = "interrupted"
        try:
            self._run_tasks(self._replica_commands(entries),
                            phase="re-replicate")
            outcome = "ok"
        finally:
            span.end(outcome=outcome)
        wall = time.monotonic() - t_start
        for job in jobs:
            self.job_times.append((job, "re-replicate", wall / len(jobs)))

    def _reclaim_behind(self, anchor: int) -> None:
        """Hybrid reclamation (§IV-C): with ``anchor``'s output safely
        replicated, delete with real unlinks the persisted map outputs
        of jobs every consumer of which is shielded behind an intact
        anchor, and the reducer pieces of jobs no unshielded anchor
        still reduces from (``hybrid_reclaimable`` — the graph cut that
        reduces to ``map < anchor, piece < anchor - 1`` on a linear
        chain).  Files a live recovery could still read are never
        touched — they are the recovery floor."""
        map_jobs, piece_jobs = hybrid_reclaimable(
            self.graph, self.done_jobs | {anchor},
            self._intact_anchors())
        if not map_jobs:
            return
        self.registry.reclaim_job_sets(map_jobs, piece_jobs)
        cmds = {}
        for node in sorted(self.pool.alive):
            cmds[("reclaim", anchor, node)] = (node, {
                "op": "reclaim", "anchor": anchor,
                "map_jobs": sorted(map_jobs),
                "piece_jobs": sorted(piece_jobs)})
        freed_box = [0]
        self._run_tasks(cmds, phase=f"reclaim-{anchor}",
                        on_freed=lambda n: freed_box.__setitem__(
                            0, freed_box[0] + n))
        self.reclaims.append((anchor, freed_box[0]))
        self.tracer.instant("cascade", "reclaimed", anchor=anchor,
                            bytes=freed_box[0])

    # ------------------------------------------------------------- recovery
    def _intact_anchors(self) -> list[int]:
        """Hybrid anchors whose replicated output is currently intact —
        fully covered with no outstanding damage — and therefore bound
        the recomputation cascade from below."""
        if self.config.strategy != "hybrid":
            return []
        chain = self.config.chain
        return [j for j in sorted(self.registry.replicated_jobs)
                if not any(self.registry.damage.get(j, {}).values())
                and self.registry.coverage_complete(j, chain.n_partitions)]

    def _cascade_jobs(self) -> list[int]:
        """Damaged jobs the live cascade must recompute, ascending.

        Damage filed for a job upstream of an intact one is outside the
        cascade (paper §IV-A: its output is not needed while its
        consumer survives).  It stays filed — a later death can damage
        the jobs in between and re-join it to a contiguous run — but it
        must not drive the run loop or a recovery pass, or the chain
        would spin recovering nothing.  An intact hybrid anchor bounds
        the cascade the same way (§IV-C).  The cut runs over the real
        dependency edges: a damaged job joins only when a sink, an
        undone consumer, or a cascading consumer still needs it."""
        return cascade_jobs(self.graph, self.done_jobs,
                            self.registry.damaged_jobs(),
                            intact_anchors=self._intact_anchors())

    def _recover(self) -> None:
        jobs = self._cascade_jobs()
        if not self.config.recomputes \
                and self.config.strategy != "optimistic":
            raise RuntimeError(
                f"irrecoverable data loss under {self.config.strategy}: "
                f"every replica of some piece in jobs {jobs} is gone "
                f"(replication was insufficient)")
        self.hooks("recovery-start", jobs=jobs)
        span = self.tracer.span("cascade", "recovery", jobs=jobs,
                                strategy=self.config.strategy)
        outcome = "interrupted"
        try:
            # topological levels: jobs inside a level are independent
            # and recompute as one combined wave (parallel branches);
            # each level sees its in-cascade parents already repaired
            for level in self.graph.topo_levels(jobs):
                if self.config.strategy == "optimistic":
                    self._rerun_jobs(level)
                else:
                    self._recompute_jobs(level)
            outcome = "ok"
        finally:
            span.end(outcome=outcome)

    def _rerun_jobs(self, jobs: list[int]) -> None:
        """OPTIMISTIC recovery: re-execute whole damaged jobs (one
        independent level per call)."""
        chain = self.config.chain
        for job in jobs:
            self.tracer.instant("cascade", "rerun-job", job=job)
            self.registry.drop_job(job)
            # keep the job filed as damaged until the rerun commits: if
            # a second death interrupts it, the next recovery pass must
            # still see this (now fully dropped) job as needing
            # re-execution
            self.registry.damage[job] = {
                p: [(0, 1)] for p in range(chain.n_partitions)}
        self._sweep_job_files(jobs)
        self._run_wave(list(jobs), kind="rerun")
        for job in jobs:
            self.registry.damage[job] = {}

    def _sweep_job_files(self, jobs: list[int]) -> None:
        """Delete dropped jobs' files from every surviving node's disk.
        ``drop_job`` forgets the *metadata* only; without the sweep the
        job's map slices and reducer pieces linger as orphans across
        reruns — leaking storage and hiding any accidental stale-path
        read (a rerun may place work on different nodes)."""
        cmds = {}
        for job in jobs:
            for node in sorted(self.pool.alive):
                cmds[("drop-job", job, node)] = (
                    node, {"op": "drop-job", "job": job})
        self._run_tasks(cmds,
                        phase=f"sweep-{'+'.join(map(str, jobs))}")

    def _recompute_jobs(self, jobs: list[int]) -> None:
        """RCMP recovery: re-execute exactly what the planner says, for
        one independent level of the cascade — the levels' map tasks
        dispatch as one batch and their reduces as another, so damaged
        sibling branches recompute in parallel."""
        chain = self.config.chain
        jobs = sorted(jobs)
        label = "+".join(map(str, jobs))
        t_start = time.monotonic()
        plans: dict[int, Any] = {}
        map_cmds: dict = {}
        for job in jobs:
            blocks = self._blocks_for(job)
            plan = plan_job_recovery(
                job, self.registry.damage[job],
                all_map_tasks=[b.task_id for b in blocks],
                present_map_tasks=[t for (j, t) in
                                   self.registry.map_outputs if j == job],
                alive=self.pool.alive,
                split_ratio=chain.split_ratio)
            plans[job] = plan
            self.tracer.instant(
                "cascade", "recompute-plan", job=job,
                maps=len(plan.map_tasks), reduces=len(plan.reduces),
                split_partitions=list(plan.split_partitions))
            by_task = {b.task_id: b for b in blocks}
            map_cmds.update(self._map_commands(
                job, [by_task[t] for t in plan.map_tasks]))
        spans = {job: self.tracer.span("job", f"job-{job}-recompute",
                                       job=job, kind="recompute")
                 for job in jobs}
        outcome = "cancelled"
        try:
            self._run_tasks(map_cmds, phase=f"recompute-map-{label}")
            cmds = {}
            for job in jobs:
                sources = self._sources(job)
                for spec in plans[job].reduces:
                    cmds[("reduce", job, spec.partition, spec.split_index,
                          spec.n_splits)] = (
                        spec.node,
                        self._reduce_command(job, spec.partition,
                                             spec.split_index,
                                             spec.n_splits, sources))
            # Buffer piece commits; merge only when the whole level
            # lands, so a mid-recovery death restarts from the same
            # inventory.
            overlay: list[PieceEntry] = []
            self._run_tasks(cmds, phase=f"recompute-reduce-{label}",
                            on_piece=overlay.append)
            for entry in overlay:
                self.registry.add_piece(entry)
            for job in jobs:
                self.registry.damage[job] = {}
            outcome = "ok"
        finally:
            for span in spans.values():
                span.end(outcome=outcome)
        wall = (time.monotonic() - t_start) / len(jobs)
        for job in jobs:
            self.job_times.append((job, "recompute", wall))
        if self.config.fig5_guard:
            for job in jobs:
                for partition in plans[job].split_partitions:
                    self._invalidate_consumers(job, partition)

    def _invalidate_consumers(self, job: int, partition: int) -> None:
        """The Fig. 5 guard on real storage: drop every consumer's map
        outputs derived from a split-regenerated partition of ``job``
        (a DAG partition may feed several consumers, each reading it at
        its own parent position)."""
        for consumer in self.graph.consumers(job):
            doomed = consumer_invalidations(
                ((t, m.origin) for (j, t), m in
                 self.registry.map_outputs.items() if j == consumer),
                job, partition,
                parent_pos=self.graph.parent_pos(consumer, job))
            cmds = {}
            for task_id in doomed:
                entry = self.registry.drop_map(consumer, task_id)
                self.tracer.instant("cascade", "invalidate-map",
                                    job=consumer, task=task_id,
                                    node=entry.node,
                                    split_source=[job, partition])
                if entry.node in self.pool.alive:
                    cmds[("drop", consumer, task_id)] = (
                        entry.node,
                        {"op": "drop", "job": consumer, "task": task_id})
            self._run_tasks(cmds, phase=f"invalidate-{consumer}")

    # ------------------------------------------------------------- dispatch
    def _map_commands(self, job: int,
                      blocks: list[BlockSpec]) -> dict:
        chain = self.config.chain
        cmds = {}
        for block in blocks:
            node = self.map_assignment(job, block.task_id, block.node)
            if node not in self.pool.alive:
                node = min(self.pool.alive)
            cmds[("map", job, block.task_id)] = (node, {
                "op": "map", "job": job, "task": block.task_id,
                "origin": block.origin, "source": block.source,
                "n_partitions": chain.n_partitions,
            })
        return cmds

    def _reduce_command(self, job: int, partition: int, split_index: int,
                        n_splits: int, sources: list) -> dict:
        return {"op": "reduce", "job": job, "partition": partition,
                "split": split_index, "n_splits": n_splits,
                "sources": sources}

    def _sources(self, job: int) -> list[tuple[int, int]]:
        return [(t, self.registry.map_outputs[(job, t)].node)
                for t in self.registry.map_tasks_of(job)]

    def _blocks_for(self, job: int) -> list[BlockSpec]:
        chain = self.config.chain
        return self.registry.blocks_for(job, self.config.n_nodes,
                                        chain.records_per_node,
                                        chain.records_per_block,
                                        parents=self.graph.parents(job))

    def _run_tasks(self, cmds: dict, phase: str,
                   after_send: Optional[Callable[[], None]] = None,
                   on_piece: Optional[Callable[[PieceEntry], None]]
                   = None,
                   on_freed: Optional[Callable[[int], None]]
                   = None) -> None:
        """Dispatch a batch of commands and pump until all complete.

        Completed map outputs register immediately (they are durable and
        reusable whatever happens next); reducer pieces go through
        ``on_piece`` when given (recovery overlays) or register directly;
        committed replicas register on arrival; ``on_freed`` receives the
        bytes each reclaim/sweep reply reports.
        Raises :class:`NodeDeath` as soon as one is declared (pumped
        inline in single-chain mode, queued by the service router in
        service mode)."""
        self._raise_pending_death()
        outstanding: dict[tuple, tuple[int, dict]] = {}
        spans: dict[tuple, Any] = {}
        dispatched_at: dict[tuple, float] = {}
        for key, (node, cmd) in cmds.items():
            cmd = dict(cmd)
            cmd["epoch"] = self.pool.epoch
            cmd["chain"] = self.chain_id
            self.pool.dispatch(node, cmd)
            outstanding[key] = (node, cmd)
            dispatched_at[key] = time.monotonic()
            if self.tracer.enabled:
                spans[key] = self.tracer.span(
                    "task", f"{phase}:{':'.join(map(str, key))}",
                    tid=node, phase=phase)
        if after_send is not None:
            after_send()
        attempts: dict[tuple, int] = {}
        retry_at: dict[tuple, float] = {}
        #: task key -> backup node of an in-flight speculative attempt
        backups: dict[tuple, int] = {}
        #: committed task walls this batch (speculation's median baseline)
        durations: list[float] = []
        total = len(outstanding)
        last_progress = time.monotonic()
        while outstanding:
            now = time.monotonic()
            if now - last_progress > self.config.io_timeout:
                raise RuntimeError(
                    f"dispatch stalled in {phase}: "
                    f"{sorted(outstanding)} outstanding")
            for key in [k for k, t in retry_at.items() if t <= now]:
                del retry_at[key]
                if key in outstanding:
                    self.pool.dispatch(outstanding[key][0],
                                       dict(outstanding[key][1]))
            if self.config.speculation:
                self._maybe_speculate(outstanding, backups, dispatched_at,
                                      durations, total, now)
            msg = self._next_event()
            if msg is None:
                continue
            kind = msg[0]
            if kind == "map-done":
                (_, node, epoch, chain, job, task, origin, counts, pid,
                 fetched, local) = msg
                key = ("map", job, task)
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    # a speculative race's losing attempt committing
                    # after the winner: swallow and sweep, never register
                    self._stale_duplicate(key, node, chain, fetched)
                    continue
                self._count_shuffle(phase, fetched, local)
                self.registry.add_map(MapEntry(job, task, node, origin,
                                               counts))
            elif kind == "reduce-done":
                (_, node, epoch, chain, job, partition, s, k, n, pid,
                 fetched, local) = msg
                key = ("reduce", job, partition, s, k)
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    self._stale_duplicate(key, node, chain, fetched)
                    continue
                self._count_shuffle(phase, fetched, local)
                entry = PieceEntry(job, partition, s, k, node, n)
                if on_piece is not None:
                    on_piece(entry)
                else:
                    self.registry.add_piece(entry)
            elif kind == "replica-done":
                (_, node, epoch, chain, job, partition, s, k, pid,
                 fetched, local) = msg
                key = ("replicate", job, partition, s, k, node)
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    continue
                self._count_shuffle(phase, fetched, local)
                self.registry.add_replica(job, partition, s, k, node)
            elif kind == "dropped":
                _, node, epoch, chain, job, task = msg
                key = ("drop", job, task)
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    continue
                # the link lookup must stay behind the guard: a stale
                # message may name a node whose link no longer exists
                pid = self.pool.pid_of(node)
            elif kind == "job-dropped":
                _, node, epoch, chain, job, freed = msg
                key = ("drop-job", job, node)
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    continue
                pid = self.pool.pid_of(node)
                if on_freed is not None:
                    on_freed(freed)
            elif kind == "reclaimed":
                _, node, epoch, chain, anchor, freed = msg
                key = ("reclaim", anchor, node)
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    continue
                pid = self.pool.pid_of(node)
                if on_freed is not None:
                    on_freed(freed)
            elif kind == "piece-dropped":
                _, node, epoch, chain, job, partition, s, k, freed = msg
                if chain == self.chain_id:
                    self.tracer.instant("cascade", "speculation-swept",
                                        node=node, job=job,
                                        partition=partition, split=s,
                                        n_splits=k, freed=freed)
                continue
            elif kind == "task-failed":
                _, node, epoch, chain, op, key, err = msg
                if (epoch != self.pool.epoch or chain != self.chain_id
                        or key not in outstanding):
                    if (chain == self.chain_id
                            and self._spec_losers.get(key) == node):
                        # the losing attempt failed outright: it wrote
                        # nothing, so there is nothing left to sweep
                        del self._spec_losers[key]
                    continue
                if backups.get(key) == node:
                    # the backup attempt failed; the original still runs —
                    # clear the marker so the tail may speculate again
                    del backups[key]
                    continue
                # re-dispatch with backoff until the fetch source's death
                # is declared by the pump or io_timeout judges the phase
                # stalled — never abandon a task while both are pending
                attempts[key] = attempts.get(key, 0) + 1
                retry_at[key] = time.monotonic() + min(
                    0.05 * attempts[key], 0.5)
                continue
            elif kind == "task-error":
                _, node, epoch, chain, op, key, tb = msg
                if epoch != self.pool.epoch or chain != self.chain_id:
                    continue  # cancelled work; its error is moot
                raise RuntimeError(
                    f"worker {node} hit a software error in {op} task "
                    f"{key}:\n{tb}")
            else:
                continue
            last_progress = time.monotonic()
            if kind in ("map-done", "reduce-done"):
                durations.append(
                    last_progress - dispatched_at.get(key, last_progress))
                if key in backups:
                    self._resolve_speculation(
                        key, winner=node, original=outstanding[key][0],
                        backup=backups.pop(key))
            if key in spans:
                extra = {"node": node, "pid": pid}
                if kind == "reduce-done":
                    extra.update(split=key[3], n_splits=key[4])
                spans[key].end(**extra)
            del outstanding[key]

    def _count_shuffle(self, phase: str, fetched: int,
                       local: int = 0) -> None:
        """Credit one committed task's shuffle traffic to its phase:
        ``fetched`` crossed a loopback socket, ``local`` was resolved
        in-process (own store / memory tier / shared-memory attach)."""
        if fetched:
            self.shuffle_bytes[phase] = (
                self.shuffle_bytes.get(phase, 0) + fetched)
        if local:
            self.shuffle_bytes_local[phase] = (
                self.shuffle_bytes_local.get(phase, 0) + local)

    # ----------------------------------------------------------- speculation
    def _maybe_speculate(self, outstanding: dict, backups: dict,
                         dispatched_at: dict, durations: list,
                         total: int, now: float) -> None:
        """Launch backup attempts for tail tasks on idle healthy slots.

        A task earns a backup when its original sits on a suspected-slow
        node and is older than ``speculation_min_age``, or — with half
        the batch committed — when its age exceeds ``slowdown x`` the
        batch's median committed wall (Hadoop/LATE semantics).  First
        commit wins through the normal completion path; this only adds
        attempts, it never cancels one."""
        if len(self.pool.alive) < 2:
            return
        suspected = self.pool.suspected_slow() | \
            self.pool.suspected_recent
        done = total - len(outstanding)
        median = sorted(durations)[len(durations) // 2] \
            if durations else None
        for key, (node, cmd) in list(outstanding.items()):
            if key in backups or key[0] not in ("map", "reduce"):
                continue
            if node in suspected:
                threshold = self.config.speculation_min_age
            elif median is not None and done * 2 >= total:
                threshold = max(self.config.speculation_min_age,
                                self.config.speculation_slowdown * median)
            else:
                continue
            age = now - dispatched_at.get(key, now)
            if age < threshold:
                continue
            backup = self._backup_candidate(node, suspected)
            if backup is None:
                return  # no healthy idle slot anywhere: retry next tick
            self.pool.dispatch(backup, dict(cmd))
            backups[key] = backup
            self.spec_attempts += 1
            self.tracer.instant("cascade", "speculative-attempt",
                                key=[str(k) for k in key], original=node,
                                backup=backup, age=round(age, 4))

    def _backup_candidate(self, original: int,
                          suspected: set[int]) -> Optional[int]:
        """The least-loaded healthy node with an idle slot, or None.

        None means every healthy peer is saturated: the backup is NOT
        queued — queuing it behind busy slots (worst case, behind the
        straggler itself) would add load without cutting the tail."""
        slots = self.config.resolved_task_slots
        candidates = [n for n in sorted(self.pool.alive)
                      if n != original and n not in suspected
                      and self.pool.load(n) < slots]
        if not candidates:
            if not self._spec_warned:
                self._spec_warned = True
                warnings.warn(
                    "speculation is a no-op right now: no healthy idle "
                    "slot (raise task_slots or cluster size to give "
                    "backups somewhere to run)", stacklevel=2)
            return None
        return min(candidates, key=lambda n: (self.pool.load(n), n))

    def _resolve_speculation(self, key: tuple, winner: int, original: int,
                             backup: int) -> None:
        """First commit won the race; remember the loser so its late
        duplicate event is swallowed and its partial output swept."""
        backup_won = winner == backup
        loser = original if backup_won else backup
        if backup_won:
            self.spec_wins += 1
        self._spec_losers[key] = loser
        self.tracer.instant("cascade", "speculative-result",
                            key=[str(k) for k in key], winner=winner,
                            loser=loser, backup_won=backup_won)

    def _stale_duplicate(self, key: tuple, node: int,
                         chain: Optional[str], fetched: int) -> bool:
        """A commit event that missed the epoch/outstanding guard: if it
        is the losing attempt of a resolved speculative race, account
        its wasted work and sweep its orphan output from the loser's
        disk (the PR-4 drop paths, epoch-tagged at current epoch)."""
        if chain != self.chain_id or self._spec_losers.get(key) != node:
            return False
        del self._spec_losers[key]
        self.spec_wasted_bytes += fetched
        self.tracer.instant("cascade", "speculation-loser",
                            key=[str(k) for k in key], node=node,
                            wasted=fetched)
        if node in self.pool.alive:
            if key[0] == "map":
                self.pool.dispatch(node, {
                    "op": "drop", "job": key[1], "task": key[2],
                    "epoch": self.pool.epoch, "chain": self.chain_id})
            else:
                self.pool.dispatch(node, {
                    "op": "drop-piece", "job": key[1],
                    "partition": key[2], "split": key[3],
                    "n_splits": key[4], "epoch": self.pool.epoch,
                    "chain": self.chain_id})
        return True

    def _drain_spec_losers(self, deadline: float = 2.0) -> None:
        """Before the final checksum, wait briefly for resolved races'
        losing attempts to surface so their duplicates are swallowed and
        their partial output swept.  Dead losers left nothing the
        registry references; their entries are simply dropped."""
        t_end = time.monotonic() + deadline
        while self._spec_losers and time.monotonic() < t_end:
            self._spec_losers = {k: n for k, n in
                                 self._spec_losers.items()
                                 if n in self.pool.alive}
            if not self._spec_losers:
                break
            try:
                msg = self._next_event()
            except NodeDeath as death:
                self._handle_death(death.node)
                break
            if msg is None:
                continue
            kind = msg[0]
            if kind == "map-done":
                _, node, _epoch, chain, job, task = msg[:6]
                self._stale_duplicate(("map", job, task), node, chain,
                                      msg[9])
            elif kind == "reduce-done":
                _, node, _epoch, chain, job, partition, s, k = msg[:8]
                self._stale_duplicate(("reduce", job, partition, s, k),
                                      node, chain, msg[10])
            elif kind == "task-failed":
                _, node, _epoch, chain, op, key, err = msg
                if (chain == self.chain_id
                        and self._spec_losers.get(key) == node):
                    del self._spec_losers[key]
            elif kind == "piece-dropped":
                _, node, _epoch, chain, job, partition, s, k, freed = msg
                if chain == self.chain_id:
                    self.tracer.instant("cascade", "speculation-swept",
                                        node=node, job=job,
                                        partition=partition, split=s,
                                        n_splits=k, freed=freed)

    def _pre_replicate_suspected(self) -> None:
        """Eagerly copy pieces held by a suspected-slow node to a
        healthy peer (existing replicate transport ops): if the
        straggler later dies, survivors already hold its outputs and
        replica promotion makes the death cascade nothing.  One-shot:
        the job is not marked replication-tracked, so the background
        re-replication invariant is untouched."""
        self.pool.suspected_slow()  # refresh the sticky verdict
        suspected = self.pool.suspected_recent & self.pool.alive
        if not suspected or len(self.pool.alive) < 2:
            return
        entries = [e for job_pieces in self.registry.pieces.values()
                   for plist in job_pieces.values() for e in plist
                   if e.node in suspected
                   and len(self.registry.holders(*e.key)) < 2]
        if not entries:
            return
        targets = pre_replication_targets(
            [(e.key, self.registry.holders(*e.key)) for e in entries],
            suspected, self.pool.alive)
        cmds = {}
        for entry in entries:
            target = targets.get(entry.key)
            if target is None:
                continue
            cmds[("replicate", *entry.key, target)] = (target, {
                "op": "replicate", "job": entry.job,
                "partition": entry.partition,
                "split": entry.split_index,
                "n_splits": entry.n_splits,
                "source": entry.node, "target": target,
                "source_chain": entry.chain})
        if not cmds:
            return
        self.tracer.instant("cascade", "pre-replicate",
                            suspected=sorted(suspected),
                            pieces=len(cmds))
        self._run_tasks(cmds, phase="pre-replicate")
        self.pre_replications += len(cmds)

    # -------------------------------------------------------------- queries
    def final_output(self) -> dict[int, list[Record]]:
        """The computation's output, read back from the nodes' files
        (registry-driven, like any DFS read): the union over sink jobs,
        keyed ``sink_pos * STRIDE + partition`` so a single-sink chain
        keeps plain partition keys (and checksums) unchanged."""
        chain = self.config.chain
        out: dict[int, list[Record]] = {}
        for pos, sink in enumerate(sorted(self.graph.sinks())):
            last = self.registry.pieces.get(sink)
            if last is None or not self.registry.coverage_complete(
                    sink, chain.n_partitions):
                raise RuntimeError("chain has not completed")
            for partition, plist in last.items():
                records: list[Record] = []
                for entry in plist:
                    # an adopted piece (cache hit) lives in its donor
                    # chain's namespace; everything else in our own
                    namespace = entry.chain if entry.chain is not None \
                        else self.chain_id
                    data = NodeStore(self.pool.workdir, entry.node,
                                     chain=namespace).read_piece(
                        entry.job, entry.partition, entry.split_index,
                        entry.n_splits)
                    records.extend(decode_records(data))
                out[pos * STRIDE + partition] = sorted(records)
        return out

    def checksum(self) -> str:
        return chain_checksum(self.final_output())


class Coordinator:
    """Drives one multi-job chain over real worker processes: a private
    :class:`WorkerPool` plus one :class:`ChainRun` behind the classic
    single-chain API (the multi-chain front is
    :class:`repro.runtime.service.ChainService`)."""

    def __init__(self, config: RuntimeConfig, workdir: str | Path,
                 tracer: Optional[Tracer] = None,
                 hooks: Optional[Hooks] = None,
                 fault_model: Optional[FaultModel] = None,
                 fault_seed: int = 0, fault_time_scale: float = 1.0,
                 map_assignment: Optional[Callable[[int, int, int], int]]
                 = None):
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = (LiveFaultPlan(fault_model, seed=fault_seed,
                                     time_scale=fault_time_scale)
                       if fault_model is not None else None)
        self.pool = WorkerPool(config, workdir, tracer=self.tracer,
                               faults=self.faults)
        self.chain_run = ChainRun(config, self.pool, tracer=self.tracer,
                                  hooks=hooks,
                                  map_assignment=map_assignment,
                                  fault_plan=self.faults)

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "Coordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        self.pool.start()

    def shutdown(self) -> None:
        self.pool.shutdown()

    # ---------------------------------------------------------- chain logic
    def run_chain(self) -> RunReport:
        """Execute the chain end to end, recovering from every death."""
        if self.faults:
            self.faults.arm_chain_start(time.monotonic())
        return self.chain_run.run()

    def kill_node(self, node: int) -> None:
        self.pool.kill_node(node)

    def throttle_node(self, node: int, factor: float) -> None:
        self.pool.throttle_node(node, factor)

    def suspected_slow(self) -> set[int]:
        return self.pool.suspected_slow()

    @property
    def throttled(self) -> dict[int, float]:
        return self.pool.throttled

    def final_output(self) -> dict[int, list[Record]]:
        return self.chain_run.final_output()

    def checksum(self) -> str:
        return self.chain_run.checksum()

    # ------------------------------------------------- delegated state
    # (kept as properties so tests and tools can keep poking the classic
    # flat Coordinator surface)
    @property
    def workdir(self) -> Path:
        return self.pool.workdir

    @property
    def registry(self) -> ClusterRegistry:
        return self.chain_run.registry

    @property
    def alive(self) -> set[int]:
        return self.pool.alive

    @alive.setter
    def alive(self, value: set[int]) -> None:
        self.pool.alive = set(value)

    @property
    def epoch(self) -> int:
        return self.pool.epoch

    @epoch.setter
    def epoch(self, value: int) -> None:
        self.pool.epoch = value

    @property
    def completed_jobs(self) -> int:
        return self.chain_run.completed_jobs

    @completed_jobs.setter
    def completed_jobs(self, value: int) -> None:
        self.chain_run.completed_jobs = value

    @property
    def done_jobs(self) -> set[int]:
        return self.chain_run.done_jobs

    @done_jobs.setter
    def done_jobs(self, value: set[int]) -> None:
        self.chain_run.done_jobs = set(value)

    @property
    def deaths(self) -> list[tuple[float, int]]:
        return self.chain_run.deaths

    @property
    def job_times(self) -> list[tuple[int, str, float]]:
        return self.chain_run.job_times

    @property
    def reclaims(self) -> list[tuple[int, int]]:
        return self.chain_run.reclaims

    @property
    def shuffle_bytes(self) -> dict[str, int]:
        return self.chain_run.shuffle_bytes

    @property
    def shuffle_bytes_local(self) -> dict[str, int]:
        return self.chain_run.shuffle_bytes_local

    @property
    def hooks(self) -> Hooks:
        return self.chain_run.hooks

    @property
    def _links(self) -> dict[int, _Link]:
        return self.pool._links

    def _cascade_jobs(self) -> list[int]:
        return self.chain_run._cascade_jobs()

    def _run_tasks(self, cmds: dict, phase: str, **kwargs) -> None:
        self.chain_run._run_tasks(cmds, phase, **kwargs)
