"""Multi-tenant chain service: many chains, one shared worker pool.

The single-chain :class:`~repro.runtime.coordinator.Coordinator` forks a
worker set, runs one chain, and tears everything down.  RCMP's setting
is the opposite — a resident cluster absorbing heavy traffic from many
users — so :class:`ChainService` keeps one :class:`WorkerPool` of
multi-slot workers alive and multiplexes submitted chains over it:

* **Admission** is FIFO by default, with an optional ``fair`` policy
  (least-loaded tenant first) and a ``max_concurrent`` cap on chains
  running simultaneously.
* **Isolation**: each admitted chain gets a unique id that namespaces
  its files on every node (``node000/chains/<id>/...``), rides on every
  task command, and is echoed in every worker event, so one worker can
  interleave task slots across chains without mixing streams.  Each
  chain owns its own :class:`~repro.runtime.storage.ClusterRegistry`
  and :class:`~repro.runtime.coordinator.RunReport`.
* **Recovery isolation**: a node death is declared once by the pool and
  fanned out to every running chain.  Each chain files damage against
  *its own* registry — a chain with no pieces on the dead node records
  nothing and resumes where it was (its job timeline shows plain
  ``run`` entries only); chains that did lose pieces run the normal
  recomputation cascade, concurrently, on the surviving workers.
* **Faults**: :class:`MTBFKills` injects service-level mean-time-
  between-failures arrivals (seeded exponential gaps), the long-running
  analog of the per-chain fault plans.  ``replace_dead=True`` respawns
  a replacement worker for each dead node id so a long-lived service
  does not bleed capacity.

The front door is deliberately small: one JSON request per TCP
connection, newline-terminated (``serve`` / :func:`request`), driven by
the ``rcmp-repro serve | submit | status`` CLI.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.localexec.engine import LocalJobConfig
from repro.obs import NULL_TRACER, Tracer
from repro.runtime.cache import (
    CacheRegistry,
    chain_fingerprints,
    scan_chain_sequence,
)
from repro.runtime.coordinator import (
    ChainRun,
    NodeDeath,
    RunReport,
    RuntimeConfig,
    WorkerPool,
)

QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
POLICIES = ("fifo", "fair")

#: front-door request cap: one JSON submit/status/wait line has no
#: business being this large — beyond it the reply is a structured
#: error instead of an unbounded buffer
MAX_REQUEST_BYTES = 1 << 20


class MTBFKills:
    """Poisson failure arrivals for a long-lived pool: SIGKILL a random
    live worker with exponentially distributed gaps of mean ``mtbf``
    seconds.  Duck-types :class:`~repro.runtime.faults.LiveFaultPlan`'s
    ``due(now, alive)`` so :meth:`WorkerPool.pump` fires it natively.

    ``min_alive`` is a floor: an arrival that would leave fewer live
    workers is skipped (the clock still advances — skipped arrivals do
    not pile up into a burst)."""

    def __init__(self, mtbf: float, seed: int = 0, min_alive: int = 2):
        if mtbf <= 0:
            raise ValueError("mtbf must be positive seconds")
        if min_alive < 1:
            raise ValueError("min_alive must be >= 1")
        self.mtbf = mtbf
        self.min_alive = min_alive
        self._rng = random.Random(seed)
        self._next: Optional[float] = None

    def due(self, now: float, alive: set) -> list[int]:
        if self._next is None:
            self._next = now + self._rng.expovariate(1.0 / self.mtbf)
        victims: list[int] = []
        while self._next <= now:
            self._next += self._rng.expovariate(1.0 / self.mtbf)
            candidates = sorted(set(alive) - set(victims))
            if len(candidates) <= self.min_alive:
                continue
            victims.append(candidates[self._rng.randrange(
                len(candidates))])
        return victims


@dataclass
class ChainJob:
    """One submitted chain's lifecycle record."""

    id: str
    tenant: str
    config: RuntimeConfig
    state: str = QUEUED
    order: int = 0                      # FIFO position
    submitted: float = 0.0              # service-clock seconds
    started: Optional[float] = None
    finished: Optional[float] = None
    report: Optional[RunReport] = None
    error: Optional[str] = None
    run: Optional[ChainRun] = None
    inbox: Any = None
    #: False when submitted with ``no_cache`` — neither adopts nor admits
    use_cache: bool = True
    #: jobs skipped at admission via the cross-run cache
    adopted_jobs: int = 0
    done: threading.Event = field(default_factory=threading.Event)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "strategy": self.config.strategy,
            "n_jobs": self.config.chain.n_jobs,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "cached_jobs": self.adopted_jobs,
            "report": self.report.to_dict() if self.report else None,
            "error": self.error,
        }


class ChainService:
    """A resident pool of workers serving a queue of submitted chains."""

    def __init__(self, config: RuntimeConfig, workdir: str | Path,
                 policy: str = "fifo", max_concurrent: int = 4,
                 tracer: Optional[Tracer] = None,
                 faults=None, replace_dead: bool = False,
                 cache_budget: Optional[int] = None):
        """``config`` fixes the pool shape (n_nodes, slots, transport
        knobs) and is the template submissions override per chain.
        ``faults`` is typically an :class:`MTBFKills`; ``replace_dead``
        respawns a replacement worker for every dead node id.
        ``cache_budget`` (bytes) enables the cross-run result cache:
        completed job outputs are kept under an LRU byte budget and
        adopted by later overlapping submissions.  ``None`` disables
        caching entirely."""
        if policy not in POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}; "
                             f"expected one of {POLICIES}")
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.config = config
        self.policy = policy
        self.max_concurrent = max_concurrent
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.replace_dead = replace_dead
        self.pool = WorkerPool(config, workdir, tracer=self.tracer,
                               faults=faults)
        self.shutdown_requested = threading.Event()
        #: most chains ever RUNNING at once (bench asserts concurrency)
        self.running_peak = 0
        self._lock = threading.RLock()
        self._jobs: dict[str, ChainJob] = {}
        self._queue: list[ChainJob] = []
        self._running: dict[str, ChainJob] = {}
        self._tenant_admitted: dict[str, int] = {}
        self.cache: Optional[CacheRegistry] = None
        if cache_budget is not None:
            self.cache = CacheRegistry(workdir, cache_budget)
            self.cache.load()
        # never reissue a chain id whose namespace dirs exist from a
        # previous service incarnation in this workdir: a collision
        # would silently overwrite files cache entries still reference
        self._seq = scan_chain_sequence(workdir)
        self._stop = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._server: Optional[socket.socket] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "ChainService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def start(self) -> None:
        self.pool.start()
        self._loop_thread = threading.Thread(target=self._loop,
                                             name="chain-service-loop",
                                             daemon=True)
        self._loop_thread.start()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the service. ``drain`` waits for running chains first
        (queued chains are failed either way)."""
        with self._lock:
            for job in self._queue:
                job.state = FAILED
                job.error = "service shut down before admission"
                job.done.set()
            self._queue.clear()
            running = list(self._running.values())
        if drain:
            for job in running:
                job.done.wait()
        self._stop.set()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        self.pool.shutdown()

    # ------------------------------------------------------------ admission
    def submit(self, chain: Optional[LocalJobConfig] = None,
               tenant: str = "default", no_cache: bool = False,
               **overrides) -> ChainJob:
        """Queue a chain for execution; returns its :class:`ChainJob`.

        ``overrides`` are :class:`RuntimeConfig` fields applied over the
        service template (strategy, hybrid knobs, ...).  The pool shape
        is fixed at service start: n_nodes cannot be overridden.
        ``no_cache`` opts this chain out of the cross-run cache — it
        neither adopts cached prefixes nor admits its outputs.
        Validation errors (unknown strategy, bad knobs) raise here, at
        submission time, not in the service loop."""
        if self._stop.is_set():
            raise RuntimeError("service is shut down")
        overrides.pop("n_nodes", None)
        if chain is not None:
            overrides["chain"] = chain
        config = dataclasses.replace(self.config, **overrides)
        with self._lock:
            self._seq += 1
            job = ChainJob(id=f"c{self._seq:04d}", tenant=tenant,
                           config=config, order=self._seq,
                           submitted=self.pool.now(),
                           use_cache=not no_cache)
            self._jobs[job.id] = job
            self._queue.append(job)
        return job

    def _admit_next(self) -> None:
        """Admit queued chains while there is concurrency headroom."""
        while True:
            with self._lock:
                if not self._queue or \
                        len(self._running) >= self.max_concurrent:
                    return
                job = self._pick_locked()
                self._queue.remove(job)
                self._tenant_admitted[job.tenant] = \
                    self._tenant_admitted.get(job.tenant, 0) + 1
                job.state = RUNNING
                job.started = self.pool.now()
                self._running[job.id] = job
                self.running_peak = max(self.running_peak,
                                        len(self._running))
            job.run = ChainRun(job.config, self.pool,
                               chain_id=job.id, tracer=self.tracer)
            job.inbox = job.run.attach_inbox()
            self._open_chain(job)
            self._adopt_cached_prefix(job)
            threading.Thread(target=self._drive, args=(job,),
                             name=f"chain-{job.id}", daemon=True).start()

    def _adopt_cached_prefix(self, job: ChainJob) -> None:
        """Hand the largest resident dependency-closed cached subgraph
        (the classic prefix on a linear chain) to the new chain.

        Only for replication-1 strategies (rcmp, optimistic, hybrid):
        adopted pieces are single-holder, so losing one must be
        recoverable by recomputation — a REPL-k chain would instead hit
        "irrecoverable data loss" on a piece it never replicated.
        Best-effort: a cache fault degrades to a cold run, never a
        failed chain."""
        if self.cache is None or not job.use_cache \
                or job.config.replication > 1:
            return
        try:
            fps = chain_fingerprints(job.config.chain,
                                     self.config.n_nodes)
            entries = self.cache.adopt(fps, job.id,
                                       graph=job.config.graph)
            if entries:
                job.adopted_jobs = job.run.adopt_prefix(entries)
        except Exception:  # noqa: BLE001 - cache is advisory
            self.cache.release(job.id)

    def _pick_locked(self) -> ChainJob:
        if self.policy == "fifo":
            return min(self._queue, key=lambda j: j.order)
        # fair-share: least-loaded tenant first — fewest chains running
        # now, then fewest ever admitted, then FIFO order
        running_by = {}
        for job in self._running.values():
            running_by[job.tenant] = running_by.get(job.tenant, 0) + 1
        return min(self._queue, key=lambda j: (
            running_by.get(j.tenant, 0),
            self._tenant_admitted.get(j.tenant, 0),
            j.order))

    def _open_chain(self, job: ChainJob, nodes: Optional[list[int]]
                    = None) -> None:
        """Broadcast the chain's input parameters to the workers (every
        link, so a task placed anywhere finds the chain open).  Pipe
        order guarantees the open precedes any of the chain's tasks."""
        chain = job.config.chain
        cmd = {"op": "chain-open", "chain": job.id, "seed": chain.seed,
               "records_per_node": chain.records_per_node,
               "value_size": chain.value_size}
        for node in (nodes if nodes is not None
                     else sorted(self.pool._links)):
            self.pool.send(node, dict(cmd))

    def _close_chain(self, job: ChainJob) -> None:
        """Drop the chain's caches on every worker, then sweep its
        namespace files — sparing the reduce jobs the cross-run cache
        registered, so beyond the cache budget nothing grows the
        workdir.  (A dead node's files linger until its id is reused —
        there is no worker left to sweep them.)"""
        keep = sorted(self.cache.kept_jobs(job.id)) \
            if self.cache is not None else []
        for node in sorted(self.pool._links):
            self.pool.send(node, {"op": "chain-close", "chain": job.id})
            self.pool.send(node, {"op": "chain-sweep", "chain": job.id,
                                  "keep": keep})

    # --------------------------------------------------------- service loop
    def _loop(self) -> None:
        """Pump the pool, route events to their chain, admit from the
        queue, and fan node deaths out to every running chain."""
        while not self._stop.is_set():
            self._admit_next()
            try:
                msg = self.pool.pump(timeout=0.02)
            except NodeDeath as death:
                self._on_death(death.node)
                continue
            if msg is None:
                continue
            chain_id = msg[3] if len(msg) > 3 else None
            with self._lock:
                job = self._running.get(chain_id)
            if job is not None:
                job.inbox.put(msg)
            # else: a straggler from a chain that already finished or
            # died mid-phase — stale by construction, drop it

    def _on_death(self, node: int) -> None:
        if not self.pool.on_death(node):
            return
        if self.cache is not None:
            # every cached piece is a sole copy: entries touching the
            # dead node are invalid now.  For chains mid-adoption the
            # loss is just RCMP damage — their recovery recomputes it.
            self.cache.on_death(node)
        with self._lock:
            running = list(self._running.values())
        for job in running:
            job.run.notify_death(node)
        if self.replace_dead and self.pool.respawn(node) is not None:
            # replacement workers start blank: re-open every live chain
            # (commands queue in the pipe until the worker is up)
            for job in running:
                self._open_chain(job, nodes=[node])

    def _drive(self, job: ChainJob) -> None:
        """One chain's thread: run the state machine to completion."""
        try:
            job.report = job.run.run()
            job.state = DONE
        except BaseException as exc:  # noqa: BLE001 - recorded, not raised
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = FAILED
        finally:
            job.finished = self.pool.now()
            if self.cache is not None:
                try:
                    if job.state == DONE and job.use_cache:
                        self.cache.admit(
                            chain_fingerprints(job.config.chain,
                                               self.config.n_nodes),
                            job.id, job.run.registry)
                finally:
                    # unpin whatever this chain adopted (reaps doomed
                    # entries it was the last reader of)
                    self.cache.release(job.id)
            self._close_chain(job)
            with self._lock:
                self._running.pop(job.id, None)
            job.done.set()

    # -------------------------------------------------------------- queries
    def wait(self, job_id: str, timeout: Optional[float] = None) \
            -> ChainJob:
        job = self._jobs[job_id]
        if not job.done.wait(timeout):
            raise TimeoutError(f"chain {job_id} still {job.state} after "
                               f"{timeout}s")
        return job

    def status(self, job_id: Optional[str] = None) -> dict:
        with self._lock:
            if job_id is not None:
                return self._jobs[job_id].to_dict()
            return {
                "policy": self.policy,
                "max_concurrent": self.max_concurrent,
                "alive": sorted(self.pool.alive),
                "epoch": self.pool.epoch,
                "deaths": [[t, n] for t, n in self.pool.deaths],
                "throttled": {str(n): f
                              for n, f in self.pool.throttled.items()},
                "suspected": sorted(self.pool.suspected_slow()),
                "queued": len(self._queue),
                "running": len(self._running),
                "running_peak": self.running_peak,
                "cache": (self.cache.stats()
                          if self.cache is not None else None),
                "jobs": [j.to_dict() for j in self._jobs.values()],
            }

    # ------------------------------------------------------- TCP front door
    def serve(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Open the JSON front door; returns the bound port.  Protocol:
        one newline-terminated JSON request per connection, one JSON
        reply.  Ops: submit, status, wait, ping, shutdown."""
        self._server = socket.create_server((host, port))
        self.port = self._server.getsockname()[1]
        threading.Thread(target=self._accept_loop,
                         name="chain-service-door", daemon=True).start()
        return self.port

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._server.accept()
            except OSError:
                return  # socket closed by shutdown
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            try:
                data, total = b"", 0
                while not data.endswith(b"\n"):
                    got = conn.recv(65536)
                    if not got:
                        break
                    total += len(got)
                    if total <= MAX_REQUEST_BYTES:
                        data += got
                    elif got.endswith(b"\n") or total > \
                            64 * MAX_REQUEST_BYTES:
                        # oversized: discard (bounded) until the line
                        # ends so the close is clean — an unread-data
                        # RST could destroy the error reply in flight
                        break
                if total > MAX_REQUEST_BYTES:
                    raise ValueError(
                        f"request exceeds {MAX_REQUEST_BYTES} bytes")
                reply = self._dispatch_request(json.loads(data))
            except Exception as exc:  # noqa: BLE001 - wire it back
                reply = {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}"}
            try:
                conn.sendall(json.dumps(reply).encode() + b"\n")
            except OSError:
                pass

    def _dispatch_request(self, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "submit":
            chain = (LocalJobConfig(**req["chain"])
                     if req.get("chain") else None)
            job = self.submit(chain=chain,
                              tenant=req.get("tenant", "default"),
                              no_cache=bool(req.get("no_cache")),
                              **req.get("overrides", {}))
            return {"ok": True, "id": job.id}
        if op == "status":
            return {"ok": True, "status": self.status(req.get("id"))}
        if op == "wait":
            job = self.wait(req["id"], timeout=req.get("timeout"))
            return {"ok": True, "job": job.to_dict()}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def request(port: int, payload: dict,
            host: str = "127.0.0.1", timeout: float = 60.0) -> dict:
    """Send one front-door request and return the decoded reply."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        data = b""
        while not data.endswith(b"\n"):
            got = conn.recv(65536)
            if not got:
                break
            data += got
    reply = json.loads(data)
    if not reply.get("ok"):
        raise RuntimeError(f"service refused {payload.get('op')}: "
                           f"{reply.get('error')}")
    return reply


def wait_for_port(port: int, host: str = "127.0.0.1",
                  deadline: float = 10.0) -> None:
    """Block until the front door answers a ping (CLI/tests helper)."""
    t_end = time.monotonic() + deadline
    while True:
        try:
            request(port, {"op": "ping"}, host=host, timeout=1.0)
            return
        except OSError:
            if time.monotonic() > t_end:
                raise TimeoutError(
                    f"no chain service answering on {host}:{port}")
            time.sleep(0.05)
