"""Fault plan -> live injection: real ``SIGKILL``s and throttles.

Compiles a :class:`repro.faults.FaultModel` into wall-clock deadlines the
coordinator checks on every event-pump tick.  The paper's trigger
semantics carry over: ``kill@job2+5`` arms 5 (wall-clock) seconds after
chain job 2 starts, ``kill@t30`` arms 30 seconds after the chain starts.
``time_scale`` shrinks all offsets uniformly so plans written for
simulated seconds stay usable on fast real runs.

Two fault kinds map onto live workers: ``fail-stop`` becomes a SIGKILL
(popped by :meth:`LiveFaultPlan.due`) and ``slow`` becomes a worker
self-throttle command (popped by :meth:`LiveFaultPlan.due_throttles`)
that paces the victim's task loop and shuffle serving to ``1/factor``
speed while its heartbeats keep flowing.  Other kinds raise up front
rather than silently degrade (transient recovery is the simulator's
territory, see :mod:`repro.faults.injector`).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.faults.model import FaultEvent, FaultModel


class LiveFaultPlan:
    """Wall-clock SIGKILL deadlines compiled from a fault model."""

    def __init__(self, model: FaultModel, seed: int = 0,
                 time_scale: float = 1.0):
        if model.stochastic:
            raise ValueError(
                "the process runtime executes planned kills only; "
                "mtbf arrivals are simulator-only")
        for ev in model.events:
            if ev.kind not in ("fail-stop", "slow"):
                raise ValueError(
                    f"the process runtime cannot inject {ev.kind!r} "
                    "faults; only fail-stop kills and slow throttles "
                    "map onto live workers")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = float(time_scale)
        self._rng = random.Random(seed)
        #: job ordinal -> events waiting for that job to start
        self._by_job: dict[int, list[FaultEvent]] = {}
        self._at_start: list[FaultEvent] = []
        for ev in model.events:
            if ev.at_job is not None:
                self._by_job.setdefault(ev.at_job, []).append(ev)
            else:
                self._at_start.append(ev)
        #: armed (deadline, event) pairs, unordered
        self._armed: list[tuple[float, FaultEvent]] = []

    def arm_chain_start(self, now: float) -> None:
        for ev in self._at_start:
            self._armed.append(
                (now + (ev.at_time or 0.0) * self.time_scale, ev))
        self._at_start = []

    def arm_job_start(self, job: int, now: float) -> None:
        """Arm the events triggered by chain job ``job`` starting (the
        paper's started-job ordinal; recomputation re-runs do not count)."""
        for ev in self._by_job.pop(job, ()):
            self._armed.append((now + ev.offset * self.time_scale, ev))

    def due(self, now: float, alive: Iterable[int]) -> list[int]:
        """Pop every kill deadline at or before ``now``; returns victims.

        Victims without a pinned ``node_id`` are drawn from the sorted
        alive set by the plan's own seeded RNG, so a given (plan, seed)
        always kills the same nodes in the same order."""
        victims: list[int] = []
        alive_now = sorted(alive)
        still_armed = []
        for deadline, ev in self._armed:
            if deadline > now or ev.kind != "fail-stop":
                still_armed.append((deadline, ev))
                continue
            victim = self._pick(ev, [n for n in alive_now
                                     if n not in victims])
            if victim is not None:
                victims.append(victim)
        self._armed = still_armed
        return victims

    def due_throttles(self, now: float,
                      alive: Iterable[int]) -> list[tuple[int, float]]:
        """Pop every slow deadline at or before ``now``; returns
        ``(node, factor)`` throttle commands.  Unpinned victims draw from
        the same seeded RNG stream as :meth:`due`, so interleaved slow and
        kill plans stay deterministic for a given seed."""
        throttles: list[tuple[int, float]] = []
        alive_now = sorted(alive)
        still_armed = []
        for deadline, ev in self._armed:
            if deadline > now or ev.kind != "slow":
                still_armed.append((deadline, ev))
                continue
            picked = {n for n, _ in throttles}
            victim = self._pick(ev, [n for n in alive_now
                                     if n not in picked])
            if victim is not None:
                throttles.append((victim, ev.factor))
        self._armed = still_armed
        return throttles

    def _pick(self, ev: FaultEvent,
              candidates: list[int]) -> Optional[int]:
        if ev.node_id is not None:
            return ev.node_id if ev.node_id in candidates else None
        if not candidates:
            return None
        return self._rng.choice(candidates)

    @property
    def exhausted(self) -> bool:
        return not (self._armed or self._by_job or self._at_start)
