"""Cross-run result cache: lineage fingerprints and prefix adoption.

RCMP makes recomputation the recovery path; this module makes it the
*reuse* path too (ReStore's observation, adapted to positional chains).
The chain service re-runs identical and overlapping chains from scratch
on every submission, yet the canonical record codec already makes every
job output a pure function of the chain's input identity and the job's
position.  So:

* :func:`chain_fingerprints` assigns each job output a
  :class:`LineageFingerprint` — a canonical hash chaining the input
  identity (seed, records_per_node, value_size, node/partition layout)
  through the UDF identity and the *dependency structure*: each job
  hashes the sorted fingerprints of its actual parents, linear or DAG.
  Two submissions that share an upstream subgraph of work share its
  fingerprints, regardless of chain length, strategy, or blocking knobs
  (reduce output per partition is invariant to ``records_per_block``
  and ``split_ratio``, so those deliberately stay out of the hash).
* :class:`CacheRegistry` persists, under the service workdir, which
  fingerprints have surviving on-disk pieces, where, and how large —
  JSON state reloaded and re-verified against the disk on service
  restart.  Admission happens when a chain completes; adoption walks a
  new chain's fingerprint frontier and hands the largest
  resident-and-intact dependency-closed cached subgraph (the classic
  longest prefix on a linear chain) to
  :meth:`~repro.runtime.coordinator.ChainRun.adopt_prefix`.
* Eviction is LRU over a byte budget.  It never unlinks a piece a
  running chain adopted (adoption *pins* entries until the chain
  releases them) and stays consistent with the rest of the lifecycle:
  a node death invalidates every entry it touched (a dead piece is just
  RCMP damage to the adopting chain — recovery recomputes it), and
  hybrid reclamation simply never admits what it already deleted.

The cache needs no transport changes: adopted pieces are served across
chain namespaces by the existing shuffle path (``serve_request`` scopes
reads by the request's ``chain`` field), and replica copies made *of*
adopted pieces always land in the adopting chain's own namespace.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.localexec import records as _records_mod
from repro.localexec.engine import LocalJobConfig
from repro.runtime.recovery import JobGraph, adoptable_closure
from repro.runtime.storage import NodeStore

_LOG = logging.getLogger(__name__)

#: hex digest naming one job output's lineage position (see
#: :func:`chain_fingerprints`)
LineageFingerprint = str

_REGISTRY_NAME = "cache_registry.json"
_FORMAT_VERSION = 1


# ----------------------------------------------------------- fingerprints
def udf_identity() -> str:
    """Hash of the source of the record-level UDFs.

    The fingerprint must change when the computation changes, so the
    identity is the *source text* of the map/reduce/partition functions
    rather than a version constant someone would forget to bump."""
    h = hashlib.md5()
    for fn in (_records_mod.generate_records, _records_mod.map_udf,
               _records_mod.reduce_udf, _records_mod.partition_of):
        h.update(inspect.getsource(fn).encode())
    return h.hexdigest()


def chain_fingerprints(chain: LocalJobConfig,
                       n_nodes: int) -> list[LineageFingerprint]:
    """Per-job lineage fingerprints for a chain, jobs ``1..n_jobs``.

    ``fp[j]`` hashes the chain input identity, the UDF identity, and
    the fingerprints of the job's *actual* dependencies — the sorted
    set of parent fingerprints, so the dependency structure is part of
    every hash (job 3 of a diamond, reading job 1, can never collide
    with job 3 of a linear chain, reading job 2) while two DAG shapes
    that feed a job the same upstream outputs still share its
    fingerprint.  On a linear chain this degenerates to chaining
    ``fp[j-1]``, byte-identical to the historical scheme, so existing
    cache state stays valid.  ``records_per_block`` and ``split_ratio``
    are deliberately excluded: a partition's reduce output is invariant
    to block boundaries and piece splits, and hashing them would only
    manufacture misses."""
    identity = json.dumps({
        "seed": chain.seed,
        "records_per_node": chain.records_per_node,
        "value_size": chain.value_size,
        "n_nodes": n_nodes,
        "n_partitions": chain.n_partitions,
        "udf": udf_identity(),
    }, sort_keys=True).encode()
    graph = chain.graph()
    input_fp = hashlib.md5(b"chain-input:" + identity).hexdigest()
    fps: list[LineageFingerprint] = []
    for job in range(1, chain.n_jobs + 1):
        parents = graph.parents(job)
        if not parents:
            digest = input_fp
        elif len(parents) == 1:
            digest = fps[parents[0] - 1]
        else:
            # sorted: a job's output is the reduce over the *union* of
            # its parents' records, invariant to parent order
            digest = "+".join(sorted(fps[p - 1] for p in parents))
        fps.append(hashlib.md5(f"job:{job}:{digest}".encode())
                   .hexdigest())
    return fps


# ----------------------------------------------------------------- entries
@dataclass(frozen=True)
class CachedPiece:
    """One surviving on-disk reduce piece of a cached job output.

    ``chain`` is the namespace the file physically lives in — usually
    the producing chain, but a partially recomputed producer may leave
    an entry whose pieces span several namespaces."""

    partition: int
    split_index: int
    n_splits: int
    node: int
    n_records: int
    size: int
    chain: str

    def to_json(self) -> list:
        return [self.partition, self.split_index, self.n_splits,
                self.node, self.n_records, self.size, self.chain]

    @classmethod
    def from_json(cls, row: list) -> "CachedPiece":
        return cls(*row[:6], str(row[6]))


@dataclass
class CacheEntry:
    """One cached job output: a fingerprint's surviving pieces."""

    fingerprint: LineageFingerprint
    job: int                      # position in the producing chain
    n_partitions: int
    pieces: list[CachedPiece] = field(default_factory=list)
    bytes: int = 0
    created: float = 0.0
    last_used: float = 0.0

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "job": self.job,
            "n_partitions": self.n_partitions,
            "bytes": self.bytes,
            "created": self.created,
            "last_used": self.last_used,
            "pieces": [p.to_json() for p in self.pieces],
        }

    @classmethod
    def from_json(cls, row: dict) -> "CacheEntry":
        return cls(fingerprint=str(row["fingerprint"]),
                   job=int(row["job"]),
                   n_partitions=int(row["n_partitions"]),
                   pieces=[CachedPiece.from_json(p)
                           for p in row["pieces"]],
                   bytes=int(row["bytes"]),
                   created=float(row.get("created", 0.0)),
                   last_used=float(row.get("last_used", 0.0)))


# ---------------------------------------------------------------- registry
class CacheRegistry:
    """Persistent fingerprint -> surviving-pieces map with an LRU budget.

    Thread-safe: the service loop adopts while chain threads admit and
    release.  Every mutation persists the JSON state atomically, so a
    service restart (same workdir) reloads it and re-verifies each
    piece file against the disk before trusting it.

    Lifecycle rules, in order of authority:

    * **pins** — a running chain that adopted an entry pins it; a pinned
      entry is never evicted and its files are never unlinked.
    * **death** — a node death invalidates every entry with a piece on
      that node (the cache only tracks sole copies).  Unpinned entries
      unlink their surviving files immediately; pinned ones are *doomed*
      — dropped from lookup now, files reaped when the last adopter
      releases (the adopting chain's RCMP recovery is mid-flight over
      those very files).
    * **budget** — admission evicts least-recently-used unpinned entries
      until the byte total fits, unlinking their files: beyond the
      budget, the close-time namespace sweep means nothing else grows
      the workdir.
    * **reclamation** — hybrid reclamation deletes files *before*
      completion, so admission simply skips jobs whose registry coverage
      is gone; nothing to undo."""

    def __init__(self, root: str | Path, budget_bytes: int):
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.root = Path(root)
        self.budget_bytes = budget_bytes
        self.path = self.root / _REGISTRY_NAME
        self.entries: dict[LineageFingerprint, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        #: entries dropped by restart rescans because their files were
        #: gone or truncated (a subset of ``invalidated``)
        self.rescan_invalidated = 0
        self._pins: dict[LineageFingerprint, set[str]] = {}
        self._doomed: dict[LineageFingerprint, CacheEntry] = {}
        self._lock = threading.RLock()
        self._clock = time.monotonic

    # -- persistence ----------------------------------------------------
    def load(self) -> int:
        """Reload persisted state, re-verifying every piece file on
        disk (size included); entries that lost any file are dropped
        and their survivors unlinked.  Returns the entry count kept."""
        with self._lock:
            self.entries.clear()
            try:
                state = json.loads(self.path.read_text())
            except OSError:
                if self.path.exists():
                    _LOG.warning("cache registry %s unreadable; "
                                 "starting empty", self.path)
                return 0
            except ValueError:
                _LOG.warning("cache registry %s is corrupt; "
                             "starting empty", self.path)
                return 0
            counters = state.get("counters", {})
            self.hits = int(counters.get("hits", 0))
            self.misses = int(counters.get("misses", 0))
            self.evictions = int(counters.get("evictions", 0))
            self.invalidated = int(counters.get("invalidated", 0))
            self.rescan_invalidated = int(
                counters.get("rescan_invalidated", 0))
            dropped = 0
            for row in state.get("entries", []):
                try:
                    entry = CacheEntry.from_json(row)
                except (KeyError, TypeError, ValueError):
                    dropped += 1
                    continue
                if self._intact(entry):
                    self.entries[entry.fingerprint] = entry
                else:
                    self._unlink_entry(entry)
                    dropped += 1
            if dropped:
                # files vanishing between runs is survivable (the chain
                # just recomputes) but worth an operator's attention —
                # it usually means something else writes to the workdir
                self.invalidated += dropped
                self.rescan_invalidated += dropped
                _LOG.warning(
                    "cache rescan dropped %d of %d persisted entries "
                    "(files missing, truncated, or rows corrupt)",
                    dropped, len(state.get("entries", [])))
            self._save_locked()
            return len(self.entries)

    def _save_locked(self) -> None:
        state = {
            "version": _FORMAT_VERSION,
            "counters": {"hits": self.hits, "misses": self.misses,
                         "evictions": self.evictions,
                         "invalidated": self.invalidated,
                         "rescan_invalidated": self.rescan_invalidated},
            "entries": [e.to_json() for e in
                        sorted(self.entries.values(),
                               key=lambda e: e.fingerprint)],
        }
        NodeStore._write_atomic(self.path,
                                json.dumps(state, indent=1).encode())

    # -- disk helpers ---------------------------------------------------
    def _piece_path(self, entry: CacheEntry, piece: CachedPiece) -> Path:
        return NodeStore(self.root, piece.node,
                         chain=piece.chain).piece_path(
            entry.job, piece.partition, piece.split_index, piece.n_splits)

    def _intact(self, entry: CacheEntry) -> bool:
        for piece in entry.pieces:
            try:
                if self._piece_path(entry, piece).stat().st_size \
                        != piece.size:
                    return False
            except OSError:
                return False
        return True

    def _unlink_entry(self, entry: CacheEntry,
                      skip_node: Optional[int] = None) -> None:
        """Delete an entry's backing files (best-effort) and prune the
        directories they leave empty, up to (and including) the piece's
        chain namespace dir.  The prune boundary is derived from the
        store layout — a fixed parent count silently walked past the
        namespace root whenever the layout put the piece at a different
        depth (e.g. an un-namespaced piece), deleting node state that
        was never the cache's to manage."""
        for piece in entry.pieces:
            if piece.node == skip_node:
                continue
            store = NodeStore(self.root, piece.node, chain=piece.chain)
            path = store.piece_path(entry.job, piece.partition,
                                    piece.split_index, piece.n_splits)
            path.unlink(missing_ok=True)
            for parent in path.parents:
                if not parent.is_relative_to(store.dir):
                    break  # never prune above the namespace root
                try:
                    parent.rmdir()
                except OSError:
                    break

    # -- adoption -------------------------------------------------------
    def adopt(self, fingerprints: list[LineageFingerprint],
              chain_id: str,
              graph: Optional[JobGraph] = None) -> list[CacheEntry]:
        """The largest resident-and-intact *dependency-closed* cached
        subgraph of a chain's fingerprint frontier, pinned to
        ``chain_id``.

        ``graph`` is the chain's dependency DAG (linear when omitted).
        A job is adoptable only if every job it depends on is adoptable
        too (:func:`adoptable_closure`) — on a linear chain that is the
        classic longest contiguous prefix, on a DAG it may skip a lost
        sibling branch while keeping the rest.  Each candidate entry is
        stat-verified against the disk right here — an entry whose
        files were lost out-of-band is invalidated and drops out of the
        closure.  Counts one hit per adopted job and one miss per job
        the chain must execute."""
        if graph is None:
            graph = JobGraph.linear(len(fingerprints))
        with self._lock:
            resident: dict[int, CacheEntry] = {}
            for job, fp in enumerate(fingerprints, start=1):
                entry = self.entries.get(fp)
                if entry is None:
                    continue
                if not self._intact(entry):
                    self._unlink_entry(entry)
                    del self.entries[fp]
                    self.invalidated += 1
                    _LOG.warning(
                        "cache entry for job %d (fp %.12s) lost its "
                        "files out-of-band; invalidated at adoption",
                        job, fp)
                    continue
                resident[job] = entry
            adopted = [resident[job]
                       for job in adoptable_closure(resident, graph)]
            now = self._clock()
            for entry in adopted:
                entry.last_used = now
                self._pins.setdefault(entry.fingerprint,
                                      set()).add(chain_id)
            self.hits += len(adopted)
            self.misses += len(fingerprints) - len(adopted)
            if adopted:
                self._save_locked()
            return adopted

    def release(self, chain_id: str) -> None:
        """Drop ``chain_id``'s pins; reap doomed entries it was the
        last adopter of."""
        with self._lock:
            for fp in list(self._pins):
                pins = self._pins[fp]
                pins.discard(chain_id)
                if pins:
                    continue
                del self._pins[fp]
                doomed = self._doomed.pop(fp, None)
                if doomed is not None:
                    self._unlink_entry(doomed)

    # -- admission ------------------------------------------------------
    def admit(self, fingerprints: list[LineageFingerprint],
              chain_id: str, registry) -> int:
        """Cache a completed chain's job outputs from its
        :class:`~repro.runtime.storage.ClusterRegistry`.

        Jobs already cached are touched, not duplicated (the second
        producer's files are swept at chain close).  Jobs whose
        coverage is gone — hybrid-reclaimed behind an anchor — are
        skipped.  Each admitted piece records the namespace it
        physically lives in (``entry.chain`` of the registry row, which
        is a donor chain for adopted pieces the chain never rewrote).
        Returns the number of newly admitted jobs."""
        with self._lock:
            now = self._clock()
            admitted = 0
            for job, fp in enumerate(fingerprints, start=1):
                existing = self.entries.get(fp)
                if existing is not None:
                    existing.last_used = now
                    continue
                if fp in self._doomed:
                    continue
                partitions = registry.pieces.get(job, {})
                if not partitions:
                    continue
                n_partitions = len(partitions)
                if not registry.coverage_complete(job, n_partitions):
                    continue
                entry = CacheEntry(fp, job, n_partitions,
                                   created=now, last_used=now)
                intact = True
                for partition in sorted(partitions):
                    for row in partitions[partition]:
                        namespace = getattr(row, "chain", None) or chain_id
                        path = NodeStore(
                            self.root, row.node,
                            chain=namespace).piece_path(
                            job, row.partition, row.split_index,
                            row.n_splits)
                        try:
                            size = path.stat().st_size
                        except OSError:
                            intact = False
                            break
                        entry.pieces.append(CachedPiece(
                            row.partition, row.split_index, row.n_splits,
                            row.node, row.n_records, size, namespace))
                        entry.bytes += size
                    if not intact:
                        break
                if not intact or entry.bytes > self.budget_bytes:
                    continue
                self.entries[fp] = entry
                admitted += 1
            self._enforce_budget_locked()
            self._save_locked()
            return admitted

    # -- invalidation ---------------------------------------------------
    def on_death(self, node: int) -> int:
        """A node died: every entry with a piece there lost its only
        copy of that piece.  Unpinned entries go away now (surviving
        files unlinked); pinned ones are doomed — the adopting chain's
        recovery is reading the survivors, so reaping waits for its
        release.  Returns the number of entries invalidated."""
        with self._lock:
            dropped = 0
            for fp in [fp for fp, e in self.entries.items()
                       if any(p.node == node for p in e.pieces)]:
                entry = self.entries.pop(fp)
                dropped += 1
                if self._pins.get(fp):
                    self._doomed[fp] = entry
                else:
                    self._unlink_entry(entry, skip_node=node)
            self.invalidated += dropped
            if dropped:
                self._save_locked()
            return dropped

    # -- budget ---------------------------------------------------------
    def _enforce_budget_locked(self) -> None:
        while self.total_bytes > self.budget_bytes:
            victims = sorted(
                (e for e in self.entries.values()
                 if not self._pins.get(e.fingerprint)),
                key=lambda e: e.last_used)
            if not victims:
                return  # everything over budget is pinned; retry later
            victim = victims[0]
            del self.entries[victim.fingerprint]
            self._unlink_entry(victim)
            self.evictions += 1

    # -- queries --------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(e.bytes for e in self.entries.values())

    def kept_jobs(self, chain_id: str) -> set[int]:
        """Job ordinals whose cached files live in ``chain_id``'s
        namespace — what the close-time sweep must preserve (doomed
        entries included: their files are reaped at release, not by
        the sweep)."""
        with self._lock:
            keep: set[int] = set()
            for entry in list(self.entries.values()) \
                    + list(self._doomed.values()):
                for piece in entry.pieces:
                    if piece.chain == chain_id:
                        keep.add(entry.job)
            return keep

    def namespaces(self) -> set[str]:
        """Every chain namespace holding cached files (restart helper:
        the service must not reissue these chain ids)."""
        with self._lock:
            return {p.chain for e in self.entries.values()
                    for p in e.pieces}

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidated": self.invalidated,
                "rescan_invalidated": self.rescan_invalidated,
                "entries": len(self.entries),
                "bytes": self.total_bytes,
                "budget_bytes": self.budget_bytes,
                "hit_rate": round(
                    self.hits / max(1, self.hits + self.misses), 4),
            }


def scan_chain_sequence(workdir: str | Path) -> int:
    """Highest numeric ``cNNNN`` chain id found anywhere under the
    workdir (namespace dirs of past service incarnations, cached or
    stale).  A restarting service seeds its id sequence past this so a
    new chain can never collide with — and silently overwrite — files a
    cache entry still references."""
    top = 0
    root = Path(workdir)
    if not root.is_dir():
        return 0
    for path in root.glob("node*/chains/c*"):
        try:
            top = max(top, int(path.name[1:]))
        except ValueError:
            continue
    return top


__all__ = [
    "CachedPiece",
    "CacheEntry",
    "CacheRegistry",
    "LineageFingerprint",
    "chain_fingerprints",
    "scan_chain_sequence",
    "udf_identity",
]
