"""Allow ``python -m repro ...`` as an alias for the ``rcmp-repro`` CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
