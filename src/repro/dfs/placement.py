"""Replica placement policies.

The default mirrors HDFS's write path: the first replica lands on the writer
node, the second on a node in a different rack (when one exists), the third
on a different node of the second replica's rack; further replicas go to
random distinct nodes.  Dead nodes are never chosen.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.cluster.topology import Cluster


class PlacementPolicy(Protocol):
    """Chooses replica target nodes for a new block."""

    def choose(self, cluster: Cluster, writer: int, replication: int) -> list[int]:
        """Return ``replication`` distinct alive node ids, writer first if
        alive."""
        ...  # pragma: no cover


class RackAwarePlacement:
    """HDFS-style rack-aware placement (see module docstring)."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def choose(self, cluster: Cluster, writer: int,
               replication: int) -> list[int]:
        alive = cluster.alive_ids()
        if not alive:
            raise RuntimeError("no alive nodes to place replicas on")
        replication = min(replication, len(alive))
        chosen: list[int] = []
        if cluster.nodes[writer].alive:
            chosen.append(writer)
        else:
            chosen.append(int(alive[self._rng.integers(len(alive))]))
        first_rack = cluster.nodes[chosen[0]].rack

        def pick(candidates: Sequence[int]) -> int | None:
            pool = [c for c in candidates if c not in chosen]
            if not pool:
                return None
            return int(pool[self._rng.integers(len(pool))])

        if len(chosen) < replication:
            off_rack = [n for n in alive
                        if cluster.nodes[n].rack != first_rack]
            second = pick(off_rack)
            if second is None:
                second = pick(alive)
            if second is not None:
                chosen.append(second)
        if len(chosen) < replication:
            second_rack = cluster.nodes[chosen[-1]].rack
            same_rack = [n for n in alive
                         if cluster.nodes[n].rack == second_rack]
            third = pick(same_rack)
            if third is None:
                third = pick(alive)
            if third is not None:
                chosen.append(third)
        while len(chosen) < replication:
            extra = pick(alive)
            if extra is None:
                break
            chosen.append(extra)
        return chosen


class SpreadPlacement:
    """Round-robin placement over alive nodes.

    Used to distribute a chain's *input* file evenly (the paper distributes
    input data evenly across all compute nodes, §III-A "data locality is
    trivially obtained"), and by the §IV-B2 "spread reducer output"
    alternative to splitting.
    """

    def __init__(self, start: int = 0):
        self._next = start

    def choose(self, cluster: Cluster, writer: int,
               replication: int) -> list[int]:
        alive = cluster.alive_ids()
        replication = min(replication, len(alive))
        chosen = []
        primary_index = self._next % len(alive)
        self._next += 1
        for k in range(replication):
            chosen.append(alive[(primary_index + k) % len(alive)])
        return chosen
