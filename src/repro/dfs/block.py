"""Block-level metadata for the distributed file system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NewType

BlockId = NewType("BlockId", int)


@dataclass
class Block:
    """One DFS block: a fixed-size chunk of a file with replica locations.

    ``replicas`` is ordered: the first entry is the primary (usually the
    writer's local replica, per HDFS write-path semantics).
    """

    block_id: BlockId
    file_name: str
    index: int              # position within the file
    size: float             # bytes
    replicas: list[int] = field(default_factory=list)  # node ids

    @property
    def available(self) -> bool:
        return bool(self.replicas)

    @property
    def replication(self) -> int:
        return len(self.replicas)

    def drop_replica(self, node_id: int) -> bool:
        """Remove ``node_id`` from the replica set; True if it was present."""
        if node_id in self.replicas:
            self.replicas.remove(node_id)
            return True
        return False
