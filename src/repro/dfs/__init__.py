"""An HDFS-like block-replicated distributed file system on the simulator."""

from repro.dfs.block import Block, BlockId
from repro.dfs.filesystem import DataLossError, DistributedFileSystem, FileMeta
from repro.dfs.placement import PlacementPolicy, RackAwarePlacement

__all__ = [
    "Block",
    "BlockId",
    "DataLossError",
    "DistributedFileSystem",
    "FileMeta",
    "PlacementPolicy",
    "RackAwarePlacement",
]
