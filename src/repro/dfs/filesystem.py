"""The distributed file system facade.

Combines namenode-style metadata (files -> blocks -> replica locations) with
simulated I/O: a replicated write generates one local-disk flow plus one
network+disk flow per remote replica; a read generates a flow from a chosen
replica (local preferred).

Data loss: when a node dies, every replica it held disappears.  Blocks whose
replica set becomes empty are *lost*; :meth:`DistributedFileSystem.on_node_death`
returns the affected files so the RCMP middleware can plan recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cluster.topology import Cluster
from repro.dfs.block import Block, BlockId
from repro.dfs.placement import PlacementPolicy, RackAwarePlacement
from repro.simcore.engine import AllOf, Event


class DataLossError(RuntimeError):
    """Raised when an operation touches a block with zero live replicas."""


@dataclass
class FileMeta:
    """A DFS file: an ordered list of blocks plus free-form tags.

    Tags let the MapReduce layer attach semantics (``job_index``,
    ``partition``) without the DFS knowing about jobs.
    ``target_replication`` is the replication factor the file was written
    with; the namenode's re-replication restores blocks toward it after
    replica loss (HDFS behaviour).
    """

    name: str
    blocks: list[Block] = field(default_factory=list)
    tags: dict = field(default_factory=dict)
    target_replication: int = 1

    @property
    def size(self) -> float:
        return sum(b.size for b in self.blocks)

    @property
    def available(self) -> bool:
        return all(b.available for b in self.blocks)

    @property
    def lost_blocks(self) -> list[Block]:
        return [b for b in self.blocks if not b.available]


class DistributedFileSystem:
    """Block-replicated file system bound to a simulated cluster."""

    def __init__(self, cluster: Cluster, block_size: float,
                 placement: Optional[PlacementPolicy] = None):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.cluster = cluster
        self.block_size = float(block_size)
        self.placement = placement or RackAwarePlacement(
            cluster.seeds.stream("dfs-placement"))
        self.files: dict[str, FileMeta] = {}
        self._next_block = 0
        #: bytes stored per node (replica bytes), for storage accounting
        self.bytes_on_node: dict[int, float] = {
            n.node_id: 0.0 for n in cluster.nodes}
        #: replicas a dead node held, keyed by node: (file, block id, size).
        #: A transient failure restores them on rejoin (unless wiped); the
        #: block id guards against a file deleted and recreated under the
        #: same name while the node was down.
        self._offline: dict[int, list[tuple[str, BlockId, float]]] = {}

    # ------------------------------------------------------------- metadata
    def _new_block_id(self) -> BlockId:
        self._next_block += 1
        return BlockId(self._next_block)

    def exists(self, name: str) -> bool:
        return name in self.files

    def meta(self, name: str) -> FileMeta:
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def delete(self, name: str) -> None:
        meta = self.files.pop(name, None)
        if meta is None:
            raise FileNotFoundError(name)
        for block in meta.blocks:
            for node_id in block.replicas:
                self.bytes_on_node[node_id] -= block.size

    def create_placed(self, name: str, size: float,
                      locations: Iterable[int],
                      tags: Optional[dict] = None) -> FileMeta:
        """Register a file whose blocks already exist at given locations
        (single-replica), without simulating any I/O.

        Used to seed the chain's initial input data instantly — the paper's
        runs start with the triple-replicated input already in HDFS.
        Pass each block's location; block sizes are ``block_size`` except a
        possibly-short tail.
        """
        if self.exists(name):
            raise FileExistsError(name)
        meta = FileMeta(name=name, tags=dict(tags or {}),
                        target_replication=1)
        locations = list(locations)
        n_blocks = max(1, len(locations))
        remaining = size
        for i in range(n_blocks):
            bsize = min(self.block_size, remaining) if i < n_blocks - 1 \
                else remaining
            block = Block(self._new_block_id(), name, i, bsize,
                          replicas=[locations[i]])
            self.bytes_on_node[locations[i]] += bsize
            meta.blocks.append(block)
            remaining -= bsize
        self.files[name] = meta
        return meta

    def seed_replicated(self, name: str, size: float, replication: int,
                        tags: Optional[dict] = None) -> FileMeta:
        """Register a replicated file spread evenly over alive nodes, block
        by block, without simulating I/O (pre-existing input data).

        Primaries round-robin over the nodes (perfect locality for the
        first job); the extra replicas are placed *randomly* like HDFS's,
        so the blocks co-located on any one node have their other replicas
        scattered across the whole cluster — losing a node never
        concentrates the surviving copies on a couple of neighbours."""
        if self.exists(name):
            raise FileExistsError(name)
        alive = self.cluster.alive_ids()
        rng = self.cluster.seeds.stream("dfs-seed")
        meta = FileMeta(name=name, tags=dict(tags or {}),
                        target_replication=replication)
        n_blocks = max(1, int(round(size / self.block_size)))
        per_block = size / n_blocks
        for i in range(n_blocks):
            primary = alive[i % len(alive)]
            replicas = [primary]
            want = min(replication, len(alive))
            while len(replicas) < want:
                cand = int(alive[rng.integers(len(alive))])
                if cand not in replicas:
                    replicas.append(cand)
            block = Block(self._new_block_id(), name, i, per_block,
                          replicas=list(replicas))
            for node_id in replicas:
                self.bytes_on_node[node_id] += per_block
            meta.blocks.append(block)
        self.files[name] = meta
        return meta

    # ------------------------------------------------------------------ IO
    def write(self, name: str, size: float, writer: int, replication: int,
              tags: Optional[dict] = None, latency: float = 0.0,
              placement: Optional[PlacementPolicy] = None,
              flow_sink: Optional[list] = None) -> Event:
        """Write a file of ``size`` bytes from ``writer``'s memory.

        Returns an event firing when every replica of every block is
        durable.  Replica flows run concurrently (HDFS pipelines the
        transfer; modelling the pipeline stages as parallel flows matches
        its steady-state throughput).  The file appears in the namespace
        immediately; a crash of a target mid-write surfaces as a failed
        event, mirroring a failed HDFS close().
        """
        if self.exists(name):
            raise FileExistsError(name)
        if size < 0:
            raise ValueError("size must be >= 0")
        replication = max(1, replication)
        policy = placement or self.placement
        meta = FileMeta(name=name, tags=dict(tags or {}),
                        target_replication=replication)
        self.files[name] = meta
        flows = []
        n_blocks = max(1, int(round(size / self.block_size)) or 1)
        per_block = size / n_blocks
        net = self.cluster.network
        for i in range(n_blocks):
            targets = policy.choose(self.cluster, writer, replication)
            block = Block(self._new_block_id(), name, i, per_block,
                          replicas=list(targets))
            meta.blocks.append(block)
            for target in targets:
                self.bytes_on_node[target] += per_block
                path = self.cluster.write_path(writer, target)
                flows.append(net.transfer(per_block, path, latency=latency,
                                          label=f"dfs-w:{name}#{i}->{target}"))
        if flow_sink is not None:
            flow_sink.extend(flows)
        return AllOf(self.cluster.sim, [f.done for f in flows])

    def read(self, name: str, reader: int, block_index: Optional[int] = None,
             latency: float = 0.0) -> Event:
        """Read a whole file (or one block) into ``reader``'s memory.

        Chooses the local replica when one exists, otherwise the first live
        replica.  Returns an event firing when the last byte arrives.
        """
        meta = self.meta(name)
        blocks = meta.blocks if block_index is None \
            else [meta.blocks[block_index]]
        flows = []
        net = self.cluster.network
        for block in blocks:
            if not block.available:
                raise DataLossError(
                    f"block {block.index} of {name!r} has no live replicas")
            source = block.replicas[0]
            for replica in block.replicas:
                if replica == reader:
                    source = replica
                    break
            path = self.cluster.read_path(source, reader)
            flows.append(net.transfer(block.size, path, latency=latency,
                                      label=f"dfs-r:{name}#{block.index}"))
        return AllOf(self.cluster.sim, [f.done for f in flows])

    def replicate_file(self, name: str, extra_replicas: int,
                       reader: Optional[int] = None) -> Event:
        """Add replicas to an existing file (RCMP's hybrid strategy, §IV-C).

        Each block is copied from one of its current replicas to new nodes.
        """
        meta = self.meta(name)
        flows = []
        net = self.cluster.network
        for block in meta.blocks:
            if not block.available:
                raise DataLossError(f"cannot replicate lost block of {name!r}")
            source = block.replicas[0]
            targets = self.placement.choose(self.cluster, source,
                                            block.replication + extra_replicas)
            new_targets = [t for t in targets if t not in block.replicas]
            for target in new_targets[:extra_replicas]:
                block.replicas.append(target)
                self.bytes_on_node[target] += block.size
                path = self.cluster.shuffle_path(source, target)
                flows.append(net.transfer(
                    block.size, path,
                    label=f"dfs-repl:{name}#{block.index}->{target}"))
        del reader
        return AllOf(self.cluster.sim, [f.done for f in flows])

    # ------------------------------------------------------- re-replication
    def under_replicated(self) -> list[tuple[FileMeta, Block]]:
        """Blocks with at least one live replica but fewer than the file's
        target replication (candidates for HDFS-style restoration)."""
        alive = len(self.cluster.alive_ids())
        out = []
        for meta in self.files.values():
            want = min(meta.target_replication, alive)
            for block in meta.blocks:
                if 0 < block.replication < want:
                    out.append((meta, block))
        return out

    def restore_replication(self) -> Event:
        """Re-replicate every under-replicated block from a surviving
        replica to fresh nodes (HDFS's post-failure background traffic).

        Returns an event firing when all copies are durable; returns an
        immediately-triggered event when nothing needs restoring."""
        net = self.cluster.network
        flows = []
        for meta, block in self.under_replicated():
            want = min(meta.target_replication,
                       len(self.cluster.alive_ids()))
            source = block.replicas[0]
            targets = self.placement.choose(self.cluster, source, want)
            new_targets = [t for t in targets if t not in block.replicas]
            for target in new_targets[:want - block.replication]:
                block.replicas.append(target)
                self.bytes_on_node[target] += block.size
                flows.append(net.transfer(
                    block.size, self.cluster.shuffle_path(source, target),
                    label=f"re-repl:{meta.name}#{block.index}->{target}"))
        return AllOf(self.cluster.sim, [f.done for f in flows])

    # -------------------------------------------------------------- failures
    def on_node_death(self, node_id: int) -> list[FileMeta]:
        """Drop all replicas held by ``node_id``; return files that lost
        at least one *block* entirely (zero replicas remain)."""
        damaged: list[FileMeta] = []
        stash: list[tuple[str, BlockId, float]] = []
        for meta in self.files.values():
            lost_any = False
            for block in meta.blocks:
                if block.drop_replica(node_id):
                    self.bytes_on_node[node_id] -= block.size
                    stash.append((meta.name, block.block_id, block.size))
                    if not block.available:
                        lost_any = True
            if lost_any:
                damaged.append(meta)
        self._offline[node_id] = stash
        return damaged

    def on_node_rejoin(self, node_id: int, data_intact: bool) -> list[str]:
        """A dead node came back.  With ``data_intact`` its stashed replicas
        return to the namespace (skipping files deleted — or deleted and
        recreated — while it was down); otherwise the stash is discarded
        (the disk was wiped during the repair).

        Returns the names of files that are fully available again and had
        at least one replica restored from this node — the candidates for
        lineage damage healing."""
        stash = self._offline.pop(node_id, [])
        if not data_intact:
            return []
        touched: list[FileMeta] = []
        for name, block_id, size in stash:
            meta = self.files.get(name)
            if meta is None:
                continue
            block = next((b for b in meta.blocks
                          if b.block_id == block_id), None)
            if block is None or node_id in block.replicas:
                continue
            block.replicas.append(node_id)
            self.bytes_on_node[node_id] += size
            touched.append(meta)
        return [m.name for m in touched if m.available]

    def discard_offline(self, node_id: int) -> None:
        """Forget a dead node's stashed replicas (fail-stop confirmed, or
        a wiped rejoin was detected)."""
        self._offline.pop(node_id, None)

    # ------------------------------------------------------------- queries
    def files_with_tag(self, **tags) -> list[FileMeta]:
        out = []
        for meta in self.files.values():
            if all(meta.tags.get(k) == v for k, v in tags.items()):
                out.append(meta)
        return out

    def total_bytes(self) -> float:
        return sum(self.bytes_on_node.values())
