"""Synthetic cluster availability traces (paper Fig. 2).

The original Rice traces (STIC, SUG@R) were published on a now-defunct site;
we generate synthetic day-level traces calibrated to the statistics the paper
quotes (§III-A):

* STIC: 218 nodes, trace Sept 2009 - Sept 2012 (~1100 days), 17 % of days
  show new failures.
* SUG@R: 121 nodes, trace Jan 2009 - Sept 2012 (~1350 days), 12 % of days
  show new failures.
* Most failure days are hardware issues affecting one or two nodes; a few
  days show many nodes becoming unavailable at once (scheduler or file
  system outages) — the CDF's long tail reaches ~35-40 failures/day.

The generator draws, for each day, a Bernoulli "is a failure day" indicator
and then a mixture of a geometric count (hardware issues) and a rare
uniform-burst count (outages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceConfig:
    """Calibration knobs for one cluster's availability trace."""

    name: str
    n_nodes: int
    n_days: int
    failure_day_fraction: float      # P(day has >= 1 new failure)
    geometric_p: float = 0.6         # hardware-issue failure count ~ Geom(p)
    outage_day_fraction: float = 0.004  # P(day is a mass-outage day)
    outage_max: int = 40             # outages affect Uniform[5, outage_max]

    def __post_init__(self) -> None:
        if not 0 < self.failure_day_fraction < 1:
            raise ValueError("failure_day_fraction must be in (0,1)")
        if not 0 < self.geometric_p <= 1:
            raise ValueError("geometric_p must be in (0,1]")
        if self.outage_day_fraction < 0 or \
                self.outage_day_fraction > self.failure_day_fraction:
            raise ValueError("outage_day_fraction out of range")
        if self.n_days < 1 or self.n_nodes < 1:
            raise ValueError("n_days and n_nodes must be >= 1")


#: Calibrations for the two Rice clusters of paper Fig. 2.
STIC_TRACE = TraceConfig(name="STIC", n_nodes=218, n_days=1100,
                         failure_day_fraction=0.17)
SUGAR_TRACE = TraceConfig(name="SUG@R", n_nodes=121, n_days=1350,
                          failure_day_fraction=0.12)


@dataclass
class AvailabilityTrace:
    """Day-indexed counts of newly failed nodes."""

    config: TraceConfig
    new_failures_per_day: np.ndarray  # int array, one entry per day

    @property
    def failure_day_fraction(self) -> float:
        return float(np.mean(self.new_failures_per_day > 0))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F)``: P(new failures per day <= x), like Fig. 2.

        ``x`` spans 0..max observed; ``F`` is in percent (the paper's y-axis
        runs 80-100 %).
        """
        counts = self.new_failures_per_day
        x = np.arange(0, counts.max() + 1)
        f = np.array([np.mean(counts <= v) for v in x]) * 100.0
        return x, f

    def percentile_days(self, pct: float) -> int:
        """Smallest per-day failure count covering ``pct`` percent of days."""
        return int(np.percentile(self.new_failures_per_day, pct,
                                 method="inverted_cdf"))

    def mean_time_between_failure_days(self) -> float:
        """Average days between days with at least one new failure."""
        frac = self.failure_day_fraction
        return float("inf") if frac == 0 else 1.0 / frac


def generate_trace(config: TraceConfig,
                   rng: np.random.Generator) -> AvailabilityTrace:
    """Sample one synthetic availability trace.

    Vectorized: draws all per-day indicators and counts in one shot
    (see the hpc guide's advice to prefer array operations over loops).
    """
    n = config.n_days
    is_failure_day = rng.random(n) < config.failure_day_fraction
    # Among failure days, a small fraction are mass outages.
    outage_given_failure = config.outage_day_fraction / \
        config.failure_day_fraction
    is_outage = is_failure_day & (rng.random(n) < outage_given_failure)
    counts = np.zeros(n, dtype=np.int64)
    hardware_days = is_failure_day & ~is_outage
    counts[hardware_days] = rng.geometric(config.geometric_p,
                                          hardware_days.sum())
    counts[is_outage] = rng.integers(5, config.outage_max + 1,
                                     is_outage.sum())
    np.minimum(counts, config.n_nodes, out=counts)
    return AvailabilityTrace(config, counts)
