"""Instantiated cluster topology bound to a simulator.

A :class:`Node` owns a disk capacity, two NIC directions (in/out), mapper and
reducer slot pools, and a registry of the task processes currently running on
it (so a failure can interrupt them).  The :class:`Cluster` owns the fluid
network and computes the capacity path for remote transfers, including
oversubscribed inter-rack links.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.spec import ClusterSpec
from repro.simcore import Capacity, FluidNetwork, SeedSequenceRegistry, Simulator, SlotPool
from repro.simcore.engine import Process


class Node:
    """A collocated compute + storage node."""

    def __init__(self, sim: Simulator, node_id: int, rack: int,
                 spec: ClusterSpec):
        ns = spec.node
        self.sim = sim
        self.node_id = node_id
        self.rack = rack
        self.alive = True
        self.disk = Capacity(f"n{node_id}.disk", ns.disk_bandwidth,
                             ns.disk_concurrency_penalty,
                             ns.disk_penalty_floor)
        self.nic_in = Capacity(f"n{node_id}.nic_in", ns.nic_bandwidth)
        self.nic_out = Capacity(f"n{node_id}.nic_out", ns.nic_bandwidth)
        self.mapper_slots = SlotPool(sim, ns.mapper_slots,
                                     f"n{node_id}.mslots")
        self.reducer_slots = SlotPool(sim, ns.reducer_slots,
                                      f"n{node_id}.rslots")
        self._tasks: set[Process] = set()
        self._death_watchers: list = []
        self._disk_watchers: list = []

    # -- task registry (for failure injection) -------------------------
    def register_task(self, proc: Process) -> None:
        self._tasks.add(proc)
        proc.add_callback(lambda _ev: self._tasks.discard(proc))

    def on_death(self, callback) -> None:
        """Register ``callback(node)`` to run the instant the node dies."""
        self._death_watchers.append(callback)

    def remove_death_watcher(self, callback) -> None:
        """Unregister a previously added death callback (no-op if absent)."""
        try:
            self._death_watchers.remove(callback)
        except ValueError:
            pass

    def on_disk_loss(self, callback) -> None:
        """Register ``callback(node)`` to run when the data disk fails."""
        self._disk_watchers.append(callback)

    def remove_disk_watcher(self, callback) -> None:
        try:
            self._disk_watchers.remove(callback)
        except ValueError:
            pass

    def kill(self, network: FluidNetwork) -> None:
        """Fail the node: stop flows through it and interrupt its tasks."""
        if not self.alive:
            return
        self.alive = False
        for cap in (self.disk, self.nic_in, self.nic_out):
            network.fail_capacity(cap)
        for proc in list(self._tasks):
            proc.interrupt(self)
        self._tasks.clear()
        for cb in list(self._death_watchers):
            cb(self)

    def lose_disk(self, network: FluidNetwork) -> None:
        """Fail the data disk only: in-flight disk I/O aborts and the stored
        bytes are gone (the DFS and persisted-output layers drop their
        replicas), but the node keeps computing and the replacement disk is
        usable immediately.  Running tasks are *not* interrupted — their
        aborted flows surface as task failures that the jobtracker retries,
        which is exactly how Hadoop experiences a disk swap."""
        if not self.alive:
            return
        network.fail_capacity(self.disk)
        network.restore_capacity(self.disk)
        for cb in list(self._disk_watchers):
            cb(self)

    def revive(self, network: FluidNetwork) -> None:
        """Bring a killed node back online (transient-failure rejoin).

        Every process that ran on the node died with it, so the slot pools
        restart empty and the task registry is cleared.  Whether the data
        disk still holds its pre-crash bytes is decided by the storage
        layers (see ``on_node_rejoin``), not here."""
        if self.alive:
            return
        self.alive = True
        for cap in (self.disk, self.nic_in, self.nic_out):
            network.restore_capacity(cap)
        self.mapper_slots.reset()
        self.reducer_slots.reset()
        self._tasks.clear()

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.node_id} rack={self.rack} {state}>"


class Cluster:
    """A simulated cluster bound to one :class:`Simulator`."""

    def __init__(self, sim: Simulator, spec: ClusterSpec,
                 seeds: Optional[SeedSequenceRegistry] = None):
        spec.validate()
        self.sim = sim
        self.spec = spec
        self.seeds = seeds or SeedSequenceRegistry(0)
        self.network = FluidNetwork(sim, spec.rate_model)
        self.nodes = [Node(sim, i, i % spec.n_racks, spec)
                      for i in range(spec.n_nodes)]
        self._rack_uplinks: list[Optional[Capacity]] = []
        if spec.n_racks > 1 and spec.oversubscription > 1.0:
            for r in range(spec.n_racks):
                size = sum(1 for n in self.nodes if n.rack == r)
                bw = size * spec.node.nic_bandwidth / spec.oversubscription
                self._rack_uplinks.append(Capacity(f"rack{r}.uplink", bw))
        else:
            self._rack_uplinks = [None] * spec.n_racks
        # Function-level import: repro.faults imports this module.
        from repro.faults.detector import HeartbeatDetector
        self.detector = HeartbeatDetector.from_spec(spec)

    # -- views ----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def alive_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]

    def alive_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.alive]

    def rack_ids(self) -> list[int]:
        """Racks that currently contain at least one alive node."""
        return sorted({n.rack for n in self.nodes if n.alive})

    # -- transfer paths ---------------------------------------------------
    def network_path(self, src: int, dst: int) -> list[Capacity]:
        """NIC (and inter-rack) capacities crossed by a src->dst transfer."""
        if src == dst:
            return []
        a, b = self.nodes[src], self.nodes[dst]
        path = [a.nic_out, b.nic_in]
        if a.rack != b.rack:
            for uplink in (self._rack_uplinks[a.rack],
                           self._rack_uplinks[b.rack]):
                if uplink is not None:
                    path.append(uplink)
        return path

    def read_path(self, storage: int, reader: int) -> list[Capacity]:
        """Capacities for reading data stored on ``storage`` into RAM of
        ``reader`` (no destination disk write)."""
        path = [self.nodes[storage].disk]
        path.extend(self.network_path(storage, reader))
        return path

    def shuffle_path(self, src: int, dst: int) -> list[Capacity]:
        """Read map output from ``src`` disk, ship it, spill on ``dst``."""
        path = [self.nodes[src].disk]
        path.extend(self.network_path(src, dst))
        path.append(self.nodes[dst].disk)
        return path

    def write_path(self, writer: int, target: int) -> list[Capacity]:
        """Write data materialized in ``writer``'s RAM onto ``target`` disk."""
        path = list(self.network_path(writer, target))
        path.append(self.nodes[target].disk)
        return path

    # -- failures ---------------------------------------------------------
    def kill_node(self, node_id: int) -> Node:
        node = self.nodes[node_id]
        node.kill(self.network)
        return node

    def revive_node(self, node_id: int) -> Node:
        """Bring a killed node back online (transient-failure rejoin)."""
        node = self.nodes[node_id]
        node.revive(self.network)
        return node

    def lose_disk(self, node_id: int) -> Node:
        """Fail (and immediately replace, empty) a node's data disk."""
        node = self.nodes[node_id]
        node.lose_disk(self.network)
        return node
