"""Declarative hardware/configuration specs for simulated clusters.

All sizes are bytes, all bandwidths bytes/second, all times seconds.
The presets in :mod:`repro.cluster.presets` instantiate these specs for the
paper's two testbeds (STIC and DCO).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

MB = 1 << 20
GB = 1 << 30
TB = 1 << 40


@dataclass(frozen=True)
class NodeSpec:
    """Per-node hardware and Hadoop configuration.

    Attributes
    ----------
    disk_bandwidth:
        Sequential throughput of the node's (single) data disk.
    disk_concurrency_penalty / disk_penalty_floor:
        Seek-penalty model parameters: the aggregate disk bandwidth under
        ``n`` concurrent streams decays hyperbolically (rate ``alpha``)
        from 100 % toward ``floor`` of the sequential bandwidth (see
        :class:`repro.simcore.resources.Capacity`).
    nic_bandwidth:
        Full-duplex NIC speed (applied independently to each direction).
    cpu_map_bandwidth / cpu_reduce_bandwidth:
        Bytes/second a map (reduce) UDF can process; models the MD5 +
        byte-sum record computation of the paper's chain job.  Chosen well
        above disk bandwidth so jobs stay I/O-bound, as in the paper.
    mapper_slots / reducer_slots:
        Hadoop slot configuration (the paper uses 1-1 and 2-2).
    task_overhead:
        Fixed per-task start-up/tear-down cost (JVM launch etc.).  The paper
        enables JVM reuse on DCO, lowering this.
    """

    disk_bandwidth: float = 90.0 * MB
    disk_concurrency_penalty: float = 0.5
    disk_penalty_floor: float = 0.4
    nic_bandwidth: float = 1.25 * GB  # 10GbE
    cpu_map_bandwidth: float = 400.0 * MB
    cpu_reduce_bandwidth: float = 500.0 * MB
    mapper_slots: int = 1
    reducer_slots: int = 1
    task_overhead: float = 1.0
    #: concurrent copier threads per reducer (Hadoop's
    #: mapred.reduce.parallel.copies); with a per-transfer shuffle latency
    #: (SLOW SHUFFLE) a reduce task pays latency * n_transfers / copiers
    reduce_parallel_copies: int = 5

    def validate(self) -> None:
        if self.disk_bandwidth <= 0 or self.nic_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.mapper_slots < 1 or self.reducer_slots < 1:
            raise ValueError("slot counts must be >= 1")
        if self.task_overhead < 0:
            raise ValueError("task_overhead must be >= 0")
        if self.reduce_parallel_copies < 1:
            raise ValueError("reduce_parallel_copies must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster: homogeneous nodes spread over racks.

    Attributes
    ----------
    n_nodes:
        Number of (collocated compute + storage) nodes.
    n_racks:
        Racks; nodes are assigned round-robin.
    oversubscription:
        Core network oversubscription factor; a rack's uplink capacity is
        ``rack_size * nic_bandwidth / oversubscription``.  1.0 means full
        bisection bandwidth (both paper clusters use 10GbE fabrics).
    shuffle_transfer_latency:
        Fixed delay appended to every shuffle transfer; the paper's SLOW
        SHUFFLE emulation sets this to 10 s (§V-D).
    failure_detection_timeout:
        Delay between a node dying and the master declaring it dead (the
        paper configures 30 s; failures injected 15 s into a job are thus
        detected ~45 s after job start).
    rate_model:
        Fluid-network rate model (see :mod:`repro.simcore.resources`).
    """

    name: str
    n_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    n_racks: int = 1
    oversubscription: float = 1.0
    shuffle_transfer_latency: float = 0.0
    failure_detection_timeout: float = 30.0
    rate_model: str = "equal_share"
    #: heartbeat-based failure detector (see :mod:`repro.faults.detector`).
    #: Workers heartbeat every ``heartbeat_interval`` seconds; a node is
    #: declared lost once ``heartbeat_expiry`` seconds pass since its last
    #: heartbeat.  An expiry of 0 selects the paper's protocol: lineage
    #: metadata reflects a death instantly (omniscient middleware) and the
    #: master declares the node dead ``failure_detection_timeout`` later.
    heartbeat_interval: float = 3.0
    heartbeat_expiry: float = 0.0
    #: cap on per-source shuffle chunks (0 = one chunk per map wave, up to
    #: the flow budget).  Pinning this keeps shuffle/map overlap identical
    #: across cluster sizes, which node-count sweeps (Fig. 11) require.
    shuffle_chunk_limit: int = 0
    #: Hadoop-style speculative execution of straggler mappers.  Off by
    #: default: the paper argues (and our hot-spot experiments confirm)
    #: that most speculated tasks bring no benefit when the slowness is
    #: caused by the data's location rather than the task's node (§III-A).
    speculative_execution: bool = False
    #: a running mapper is a straggler once it exceeds this multiple of the
    #: median completed mapper duration
    speculation_slowdown: float = 1.5
    #: how often the JobTracker scans for stragglers (seconds)
    speculation_interval: float = 10.0
    #: never speculate before a task has run this long
    speculation_min_runtime: float = 15.0

    def validate(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if not 1 <= self.n_racks <= self.n_nodes:
            raise ValueError("n_racks must be in [1, n_nodes]")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        if self.shuffle_transfer_latency < 0:
            raise ValueError("shuffle_transfer_latency must be >= 0")
        if self.failure_detection_timeout < 0:
            raise ValueError("failure_detection_timeout must be >= 0")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_expiry != 0 and \
                self.heartbeat_expiry < self.heartbeat_interval:
            raise ValueError("heartbeat_expiry must be 0 (paper protocol) "
                             "or >= heartbeat_interval")
        if self.speculation_slowdown <= 1.0:
            raise ValueError("speculation_slowdown must exceed 1.0")
        if self.speculation_interval <= 0 or self.speculation_min_runtime < 0:
            raise ValueError("invalid speculation timing parameters")
        if self.shuffle_chunk_limit < 0:
            raise ValueError("shuffle_chunk_limit must be >= 0")
        self.node.validate()

    # Convenience builders -------------------------------------------------
    def with_slots(self, mapper_slots: int, reducer_slots: int) -> "ClusterSpec":
        """Return a copy with different slot counts (paper's SLOTS X-Y)."""
        return replace(self, node=replace(self.node,
                                          mapper_slots=mapper_slots,
                                          reducer_slots=reducer_slots))

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        return replace(self, n_nodes=n_nodes,
                       n_racks=min(self.n_racks, n_nodes))

    def with_slow_shuffle(self, latency: float = 10.0) -> "ClusterSpec":
        """Paper §V-D: emulate a bottlenecked network by delaying transfers."""
        return replace(self, shuffle_transfer_latency=latency)
