"""Cluster model: nodes, racks, disks, network fabric, failures, traces."""

from repro.cluster import presets
from repro.cluster.failures import FailureEvent, FailureInjector, FailurePlan
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.cluster.topology import Cluster, Node
from repro.cluster.traces import AvailabilityTrace, TraceConfig, generate_trace

__all__ = [
    "AvailabilityTrace",
    "Cluster",
    "ClusterSpec",
    "FailureEvent",
    "FailureInjector",
    "FailurePlan",
    "Node",
    "NodeSpec",
    "TraceConfig",
    "generate_trace",
    "presets",
]
