"""Cluster presets matching the paper's evaluation environments (§V-A).

* **STIC** (Rice University): 10 nodes used for the 40 GB experiments; 8-core
  2.76 GHz Xeons, 24 GB RAM, one 100 GB S-ATA HDD per node, 10 GbE.  Each
  node processes 4 GB (16 mappers of 256 MB).
* **DCO** (Zurich): 60 nodes used for the 1.2 TB experiments; 16-core Opteron
  6212, 128 GB RAM, a dedicated 2 TB S-ATA HDD, 10 GbE, 3 racks.  Each node
  processes 20 GB (~80 mappers).  JVM reuse is enabled (lower task overhead).
* **SLOW SHUFFLE** (§V-D): STIC with a 10 s delay appended to every shuffle
  transfer to emulate a bottlenecked network.

Absolute bandwidths are calibrated, not copied from spec sheets: the paper
itself stresses that applications obtain far less than raw disk throughput
(§III, [22], [21]).  What matters for the reproduction is that jobs are
disk-bound on both clusters, which these numbers guarantee.
"""

from __future__ import annotations

from repro.cluster.spec import GB, MB, ClusterSpec, NodeSpec

#: HDFS block size used throughout the paper's evaluation.
BLOCK_SIZE = 256 * MB

#: Per-node job input sizes (§V-A).
STIC_PER_NODE_INPUT = 4 * GB     # 16 mappers of 256 MB
DCO_PER_NODE_INPUT = 20 * GB     # ~80 mappers of 256 MB


def stic(slots: tuple[int, int] = (1, 1), n_nodes: int = 10) -> ClusterSpec:
    """The STIC testbed (paper SLOTS 1-1 / SLOTS 2-2, 10 nodes, 40 GB)."""
    node = NodeSpec(
        disk_bandwidth=90.0 * MB,
        disk_concurrency_penalty=0.5,
        nic_bandwidth=1.25 * GB,
        cpu_map_bandwidth=400.0 * MB,
        cpu_reduce_bandwidth=500.0 * MB,
        mapper_slots=slots[0],
        reducer_slots=slots[1],
        task_overhead=1.0,
    )
    return ClusterSpec(name=f"STIC-{slots[0]}-{slots[1]}", n_nodes=n_nodes,
                       node=node, n_racks=1)


def dco(slots: tuple[int, int] = (1, 1), n_nodes: int = 60) -> ClusterSpec:
    """The DCO testbed (60 nodes, 3 racks, 1.2 TB, JVM reuse enabled)."""
    node = NodeSpec(
        disk_bandwidth=120.0 * MB,   # dedicated 2 TB drive, newer than STIC
        disk_concurrency_penalty=0.5,
        nic_bandwidth=1.25 * GB,
        cpu_map_bandwidth=700.0 * MB,  # 16 cores; still disk-bound
        cpu_reduce_bandwidth=800.0 * MB,
        mapper_slots=slots[0],
        reducer_slots=slots[1],
        task_overhead=0.2,           # JVM reuse
    )
    return ClusterSpec(name=f"DCO-{slots[0]}-{slots[1]}", n_nodes=n_nodes,
                       node=node, n_racks=3, oversubscription=1.0,
                       shuffle_chunk_limit=5)


def stic_slow_shuffle(slots: tuple[int, int] = (1, 1),
                      n_nodes: int = 10) -> ClusterSpec:
    """STIC with the paper's 10 s per-shuffle-transfer delay (§V-D)."""
    return stic(slots, n_nodes).with_slow_shuffle(10.0)


def tiny(n_nodes: int = 4, slots: tuple[int, int] = (1, 1),
         disk_mb_s: float = 100.0) -> ClusterSpec:
    """A small, fast cluster for unit tests and CI-scale experiments."""
    node = NodeSpec(
        disk_bandwidth=disk_mb_s * MB,
        disk_concurrency_penalty=0.5,
        nic_bandwidth=1.25 * GB,
        cpu_map_bandwidth=400.0 * MB,
        cpu_reduce_bandwidth=500.0 * MB,
        mapper_slots=slots[0],
        reducer_slots=slots[1],
        task_overhead=0.5,
    )
    return ClusterSpec(name=f"tiny-{n_nodes}", n_nodes=n_nodes, node=node)
