"""Failure injection following the paper's protocol (§V-A).

The paper kills the TaskTracker and DataNode processes of a randomly chosen
node 15 s after the start of a designated job (for back-to-back double
failures, the second kill lands 15 s after the first).  Jobs are numbered by
*start order* — every started job, including recomputation runs, receives the
next integer ID — so "FAIL 7,14" means the second failure hits the 14th job
that starts, which for RCMP is the restarted original job 7.

The :class:`FailureInjector` listens to job-start notifications from the
middleware and arms timers accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.topology import Cluster, Node


@dataclass(frozen=True)
class FailureEvent:
    """One planned node kill.

    ``at_job`` is the 1-based start-order ID of the job during which the
    failure is injected; ``offset`` the delay after that job starts.  If
    ``node_id`` is None the injector picks a random *alive* node, never the
    one running the master (node 0 by convention, mirroring the paper's
    master being a separate machine — node 0 is still a worker here, so any
    alive node may be chosen).
    """

    at_job: int
    offset: float = 15.0
    node_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_job < 1:
            raise ValueError("job IDs are 1-based")
        if self.offset < 0:
            raise ValueError("offset must be >= 0")


@dataclass
class FailurePlan:
    """An ordered collection of :class:`FailureEvent`."""

    events: list[FailureEvent] = field(default_factory=list)

    @classmethod
    def single(cls, at_job: int, offset: float = 15.0,
               node_id: Optional[int] = None) -> "FailurePlan":
        return cls([FailureEvent(at_job, offset, node_id)])

    @classmethod
    def double(cls, first_job: int, second_job: int,
               offset: float = 15.0) -> "FailurePlan":
        """Paper Fig. 9 `FAIL X,Y`.  If X == Y the second kill comes 15 s
        after the first within the same job."""
        second_offset = offset * 2 if first_job == second_job else offset
        return cls([FailureEvent(first_job, offset),
                    FailureEvent(second_job, second_offset)])

    @classmethod
    def parse(cls, spec: str) -> "FailurePlan":
        """Parse "2", "7", "FAIL 2,4", "fail 7, 14" etc. (the paper's FAIL
        notation; the prefix is optional and case-insensitive, whitespace
        around ordinals is ignored)."""
        body = spec.strip()
        if body.upper().startswith("FAIL"):
            body = body[4:]
        parts = []
        for token in body.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                ordinal = int(token)
            except ValueError:
                raise ValueError(
                    f"cannot parse failure spec {spec!r}: {token!r} is not "
                    f"a job ordinal") from None
            if ordinal < 1:
                raise ValueError(
                    f"cannot parse failure spec {spec!r}: job ordinals are "
                    f"1-based, got {ordinal}")
            parts.append(ordinal)
        if len(parts) == 1:
            return cls.single(parts[0])
        if len(parts) == 2:
            return cls.double(parts[0], parts[1])
        raise ValueError(f"cannot parse failure spec {spec!r}: expected one "
                         f"or two job ordinals, got {len(parts)}")

    @property
    def n_failures(self) -> int:
        return len(self.events)

    def clamp_to(self, max_job: int) -> "FailurePlan":
        """Clamp job IDs for strategies that never exceed ``max_job`` started
        jobs (Hadoop always runs exactly the chain length; the paper injects
        its Hadoop failures at jobs 2 or 7)."""
        clamped: list[FailureEvent] = []
        for ev in self.events:
            at = min(ev.at_job, max_job)
            off = ev.offset
            # keep ordering when two events collapse onto the same job
            if clamped and clamped[-1].at_job == at \
                    and off <= clamped[-1].offset:
                off = clamped[-1].offset + 15.0
            clamped.append(FailureEvent(at, off, ev.node_id))
        return FailurePlan(clamped)


class FailureInjector:
    """Arms node-kill timers when the middleware reports job starts."""

    def __init__(self, cluster: Cluster, plan: Optional[FailurePlan] = None,
                 on_kill: Optional[Callable[[Node], None]] = None):
        self.cluster = cluster
        self.plan = plan or FailurePlan()
        self.on_kill = on_kill
        self.killed: list[tuple[float, int]] = []  # (time, node_id)
        self._rng = cluster.seeds.stream("failure-injector")
        # failures within the same started job stay together, in plan order
        self._pending: dict[int, list[FailureEvent]] = {}
        for ev in self.plan.events:
            self._pending.setdefault(ev.at_job, []).append(ev)

    def notify_job_start(self, job_ordinal: int) -> None:
        """Called by the middleware whenever a job (any run) starts."""
        for ev in self._pending.pop(job_ordinal, []):
            self._arm(ev)

    def _arm(self, ev: FailureEvent) -> None:
        sim = self.cluster.sim
        timer = sim.timeout(ev.offset)
        timer.add_callback(lambda _t, ev=ev: self._fire(ev))

    def _fire(self, ev: FailureEvent) -> None:
        node_id = ev.node_id
        if node_id is None:
            candidates = self.cluster.alive_ids()
            if not candidates:
                return
            node_id = int(candidates[self._rng.integers(len(candidates))])
        node = self.cluster.nodes[node_id]
        if not node.alive:  # pick a different victim than an already-dead one
            candidates = self.cluster.alive_ids()
            if not candidates:
                return
            node_id = int(candidates[self._rng.integers(len(candidates))])
            node = self.cluster.nodes[node_id]
        self.killed.append((self.cluster.sim.now, node_id))
        self.cluster.kill_node(node_id)
        if self.on_kill is not None:
            self.on_kill(node)

    @property
    def outstanding(self) -> int:
        """Failures that have not yet been armed."""
        return sum(len(v) for v in self._pending.values())
