"""Deterministic random-stream management.

Every stochastic component (placement, scheduling tie-breaks, trace
generation, workload key randomization) draws from its own named child
stream of a single root seed, so adding a consumer never perturbs the
draws seen by existing consumers.
"""

from __future__ import annotations

import numpy as np


class SeedSequenceRegistry:
    """Hands out independent :class:`numpy.random.Generator` streams by name.

    The same ``(root_seed, name)`` pair always yields an identically-seeded
    generator, making simulation runs reproducible while keeping component
    streams statistically independent.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            # Hash the name into spawn keys deterministically.
            key = [ord(c) for c in name]
            seq = np.random.SeedSequence(entropy=self.root_seed,
                                         spawn_key=tuple(key))
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (resets its stream)."""
        self._cache.pop(name, None)
        return self.stream(name)
