"""Generator-based discrete-event simulation engine.

Processes are Python generators that ``yield`` :class:`Event` objects; the
engine resumes the generator when the yielded event triggers.  The design
follows the classic SimPy model but is intentionally small: the rest of the
package needs only timeouts, generic events, process composition
(:class:`AllOf` / :class:`AnyOf`) and interrupts (for node-failure injection).

Determinism: the event queue is ordered by ``(time, priority, sequence)``
where ``sequence`` is a global insertion counter, so simultaneous events fire
in FIFO order and repeated runs with the same seed are bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import get_ambient_tracer
from repro.obs.tracer import Tracer

_UNSET = object()

#: Priority for events scheduled by ``succeed``/``fail`` (fire before
#: ordinary timeouts at the same timestamp so that state updates propagate
#: ahead of time-driven work).
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class ProcessCrashed(SimulationError):
    """A process raised an exception that nobody was waiting on."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries an arbitrary payload describing why the
    process was interrupted (for example the failed node).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    schedules it to fire at the current simulation time.  Callbacks attached
    with :meth:`add_callback` run when the event fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "_defunct", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        self._scheduled = False
        #: Lazily-cancelled queue entry (an AnyOf/AllOf loser timeout nobody
        #: waits on anymore): drained without firing or advancing time.
        self._defunct = False
        #: When True, a failure of this event does not crash the simulation
        #: even if nobody handles it.
        self.defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event carries a value: ``succeed``/``fail`` was
        called, or — for a :class:`Timeout` — the delay elapsed and the
        event fired.  A pending timeout is *not* triggered."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """Payload of the event (the exception instance on failure)."""
        if self._value is _UNSET:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._value is not _UNSET or self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0, PRIORITY_URGENT)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed, carrying ``exc`` as its value."""
        if self._value is not _UNSET or self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, 0.0, PRIORITY_URGENT)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when this event fires.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)
        if not self._ok and not self.defused:
            self.sim._report_unhandled(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` simulated seconds after creation.

    The value/ok assignment is deferred to fire time: a pending timeout is
    *not* ``triggered`` (the :class:`Event` contract), so condition guards
    (``SlotPool.cancel``, ``_Condition._collect``) see it as outstanding
    until the delay actually elapses."""

    __slots__ = ("delay", "_pending_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._pending_value = value
        sim._schedule(self, delay, PRIORITY_NORMAL)

    def _fire(self) -> None:
        if self._value is _UNSET:
            self._ok = True
            self._value = self._pending_value
        super()._fire()


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator may ``yield`` any :class:`Event`; it is resumed with the
    event's value, or the event's exception is thrown into it if the event
    failed.  The process event succeeds with the generator's return value.
    """

    __slots__ = ("_gen", "_waiting_on", "_resume_token", "name")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self._resume_token = 0
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current time (urgent priority keeps startup order
        # deterministic with respect to creation order).
        init = Event(sim)
        init.succeed()
        init.add_callback(self._make_resume(init))

    @property
    def is_alive(self) -> bool:
        return self._value is _UNSET

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            return
        self._resume_token += 1  # invalidate the pending resume
        self._waiting_on = None
        exc = Interrupt(cause)
        wake = Event(self.sim)
        wake.fail(exc)
        wake.defused = True
        wake.add_callback(self._make_resume(wake))

    def _make_resume(self, event: Event) -> Callable[[Event], None]:
        token = self._resume_token

        def resume(ev: Event) -> None:
            if token != self._resume_token or not self.is_alive:
                return  # stale wakeup (process was interrupted meanwhile)
            self._step(ev)

        return resume

    def _step(self, ev: Event) -> None:
        self._waiting_on = None
        try:
            if ev._ok:
                target = self._gen.send(ev._value)
            else:
                target = self._gen.throw(ev._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event from another simulator"))
            return
        self._waiting_on = target
        self._resume_token += 1
        # Failures of the awaited event are delivered into the generator,
        # which counts as handling them.
        target.defused = True
        target.add_callback(self._make_resume(target))


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.defused = True
            ev.add_callback(self._child_fired)

    def _collect(self) -> list[Any]:
        return [ev._value for ev in self.events if ev.triggered]

    def _discard_stale_losers(self) -> None:
        """Lazily cancel pending loser :class:`Timeout` children once the
        condition has fired.  Only timeouts whose sole callback is this
        condition's are touched — nobody else can observe them — so their
        queue entries no longer keep ``sim.run()`` alive past the logical
        end of the workload."""
        for ev in self.events:
            if (type(ev) is Timeout and not ev.triggered
                    and ev.callbacks == [self._child_fired]):
                ev._defunct = True
                ev.callbacks = []

    def _child_fired(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; fails fast on child failure."""

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            self._discard_stale_losers()
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires (success or failure)."""

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._ok:
            self.succeed(ev._value)
        else:
            self.fail(ev._value)
        self._discard_stale_losers()


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()

        def hello():
            yield sim.timeout(3.0)
            return "done"

        proc = sim.process(hello())
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 trace_label: str = "") -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._crashes: list[Event] = []
        #: Observability sink (no-op by default; see :mod:`repro.obs`).
        #: Instrumented layers reach it as ``sim.tracer`` and must guard
        #: non-trivial argument construction on ``tracer.enabled``.
        self.tracer: Tracer = tracer if tracer is not None \
            else get_ambient_tracer()
        self.tracer.bind(lambda: self.now, trace_label)

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq,
                                     event))

    def _report_unhandled(self, event: Event) -> None:
        self._crashes.append(event)

    # -- execution ------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle.

        Cancelled (defunct) entries at the head are drained lazily so they
        neither extend the apparent horizon nor advance time."""
        queue = self._queue
        while queue and queue[0][3]._defunct and not queue[0][3].callbacks:
            heapq.heappop(queue)
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if event._defunct and not event.callbacks:
            return  # lazily-cancelled entry: drop without advancing time
        if when < self.now - 1e-9:
            raise SimulationError("time went backwards")
        self.now = max(self.now, when)
        event._fire()
        if self._crashes:
            crashed = self._crashes[0]
            exc = crashed._value
            raise ProcessCrashed(
                f"unhandled failure in simulation: {exc!r}") from exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or ``until`` is reached."""
        while self._queue:
            if until is not None and self.peek() > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = max(self.now, until)
