"""Discrete-event simulation core.

A small, dependency-free DES engine in the style of SimPy, plus fluid
bandwidth-shared resources (disks, NICs, core links) and counted slot pools.
The engine is deterministic: events scheduled at the same timestamp fire in
FIFO insertion order.
"""

from repro.simcore.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessCrashed,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simcore.resources import (
    Capacity,
    Flow,
    FluidNetwork,
    SlotPool,
)
from repro.simcore.rng import SeedSequenceRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Capacity",
    "Event",
    "Flow",
    "FluidNetwork",
    "Interrupt",
    "Process",
    "ProcessCrashed",
    "SeedSequenceRegistry",
    "SimulationError",
    "Simulator",
    "SlotPool",
    "Timeout",
]
