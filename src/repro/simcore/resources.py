"""Shared resources: counted slot pools and fluid bandwidth-shared capacities.

The fluid model treats every transfer (disk read/write, network transfer,
replication stream) as a :class:`Flow` of a given size traversing one or more
:class:`Capacity` objects.  Two rate models are provided:

``equal_share`` (default)
    A flow's rate is ``min over its links of eff_capacity(link) / n_flows``.
    This is exact max-min fairness when the load is symmetric (which initial
    MapReduce runs are) and a conservative approximation otherwise.  Rate
    updates are *local*: finishing or starting a flow only touches flows that
    share one of its links, which keeps large shuffles (thousands of flows)
    tractable.

``max_min``
    Exact progressive-filling max-min fairness, recomputed globally on every
    change.  Used by tests and small experiments to cross-check the default.

Disks model the seek penalty of concurrent access: the *aggregate* effective
bandwidth of a capacity with ``n`` concurrent flows is
``base / (1 + alpha * (n - 1))``.  This term is what makes the paper's
recomputation hot-spots (S*N concurrent mapper reads converging on a single
node, §IV-B2) expensive, exactly as observed on real disks.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Iterable, Optional

from repro.simcore.engine import Event, SimulationError, Simulator

_EPS = 1e-9


class SlotPool:
    """A counted FIFO resource (mapper slots / reducer slots on a node)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "slots"):
        if capacity < 0:
            raise ValueError("slot capacity must be >= 0")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        """Return an event that fires when a slot has been acquired."""
        ev = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one previously acquired slot."""
        if self.in_use <= 0:
            raise SimulationError(f"release on empty pool {self.name!r}")
        # Hand the slot directly to the next live waiter if any.
        while self._waiters:
            ev = self._waiters.popleft()
            if not ev.triggered:
                ev.succeed(self)
                return
        self.in_use -= 1

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending request (the event must not have fired)."""
        if ev.triggered:
            raise SimulationError("cannot cancel a granted slot request")
        ev.defused = True
        ev.fail(SimulationError("slot request cancelled"))

    def reset(self) -> None:
        """Forget every held slot and pending request.  Used when a killed
        node rejoins: the processes that held or awaited its slots died
        with the node, so the pool restarts empty."""
        self.in_use = 0
        for ev in self._waiters:
            if not ev.triggered:
                ev.defused = True
                ev.fail(SimulationError(f"slot pool {self.name!r} reset"))
        self._waiters.clear()


class Capacity:
    """A bandwidth-limited resource (a disk, a NIC direction, a core link).

    Parameters
    ----------
    bandwidth:
        Base capacity in bytes/second.
    concurrency_penalty:
        The ``alpha`` of the seek-penalty model below; use 0 for network
        links (which do not seek) and a positive value for spinning disks.
    penalty_floor:
        Asymptotic fraction of base bandwidth retained under unbounded
        concurrency.  The aggregate effective bandwidth with ``n`` flows is::

            eff(n) = bandwidth * (floor + (1 - floor) / (1 + alpha*(n-1)))

        i.e. it degrades hyperbolically from 100 % toward ``floor``.  This
        saturating form matches measured SATA behaviour better than an
        unbounded ``1/(1+alpha*n)`` decay and is what makes the paper's
        recomputation hot-spots (many concurrent readers on one disk,
        §IV-B2) expensive without making them absurd.
    """

    __slots__ = ("name", "bandwidth", "concurrency_penalty", "penalty_floor",
                 "flows", "_down", "armed_share", "_share_cache")

    def __init__(self, name: str, bandwidth: float,
                 concurrency_penalty: float = 0.0,
                 penalty_floor: float = 0.4):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if concurrency_penalty < 0:
            raise ValueError("concurrency_penalty must be >= 0")
        if not 0 < penalty_floor <= 1:
            raise ValueError("penalty_floor must be in (0, 1]")
        self.name = name
        self.bandwidth = float(bandwidth)
        self.concurrency_penalty = float(concurrency_penalty)
        self.penalty_floor = float(penalty_floor)
        self.flows: set["Flow"] = set()
        self._down = False
        #: per-flow fair share the last time this link's flows were
        #: re-armed (FluidNetwork's link-level change gating)
        self.armed_share = 0.0
        self._share_cache = -1.0

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def fair_share(self) -> float:
        """Current per-flow share of this link's effective bandwidth
        (cached; the cache is invalidated whenever membership changes)."""
        share = self._share_cache
        if share < 0.0:
            n = len(self.flows)
            share = self.effective_bandwidth(n) / n if n else \
                self.effective_bandwidth(1)
            self._share_cache = share
        return share

    def invalidate_share(self) -> None:
        self._share_cache = -1.0

    @property
    def is_down(self) -> bool:
        return self._down

    def effective_bandwidth(self, n: Optional[int] = None) -> float:
        """Aggregate bandwidth available when ``n`` flows share the link."""
        if self._down:
            return 0.0
        n = self.n_flows if n is None else n
        if n <= 1 or self.concurrency_penalty == 0.0:
            return self.bandwidth
        floor = self.penalty_floor
        decay = (1.0 - floor) / (1.0 + self.concurrency_penalty * (n - 1))
        return self.bandwidth * (floor + decay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Capacity {self.name} {self.bandwidth:.3g}B/s n={self.n_flows}>"


class Flow:
    """A transfer of ``size`` bytes across a set of capacities."""

    __slots__ = ("size", "links", "remaining", "rate", "last_update",
                 "done", "latency", "generation", "finished", "label",
                 "start_time", "seq")

    def __init__(self, sim_event: Event, size: float,
                 links: tuple[Capacity, ...], latency: float, label: str,
                 seq: int = 0):
        self.seq = seq
        self.size = float(size)
        self.links = links
        self.remaining = float(size)
        self.rate = 0.0
        self.last_update = 0.0
        self.start_time = 0.0
        self.done = sim_event
        self.latency = float(latency)
        self.generation = 0
        self.finished = False
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Flow {self.label} {self.remaining:.3g}/{self.size:.3g}B "
                f"@{self.rate:.3g}B/s>")


class FluidNetwork:
    """Event-driven fluid simulation of a set of flows over capacities."""

    def __init__(self, sim: Simulator, rate_model: str = "equal_share",
                 rate_tolerance: float = 0.02):
        """``rate_tolerance`` bounds the event churn of large symmetric
        shuffles: a flow is only re-armed when its fair-share rate moved by
        more than this relative amount since it was last armed.  Timing
        error is bounded by the tolerance (drift accumulates in the freshly
        computed rate, so once the cumulative change exceeds the threshold
        the flow is re-armed); 0 disables the optimization."""
        if rate_model not in ("equal_share", "max_min"):
            raise ValueError(f"unknown rate model {rate_model!r}")
        if rate_tolerance < 0:
            raise ValueError("rate_tolerance must be >= 0")
        self.sim = sim
        self.rate_model = rate_model
        self.rate_tolerance = rate_tolerance
        self.active: set[Flow] = set()
        self._label_counter = itertools.count()

    # -- public API ------------------------------------------------------
    def transfer(self, size: float, links: Iterable[Capacity],
                 latency: float = 0.0, label: str = "") -> Flow:
        """Start a flow; ``flow.done`` fires when it completes.

        ``latency`` is a fixed delay added after the last byte arrives (the
        paper's SLOW SHUFFLE emulation adds 10s per shuffle transfer).
        A zero-size flow with no links completes after ``latency`` alone.
        """
        if size < 0:
            raise ValueError("flow size must be >= 0")
        links = tuple(links)
        seq = next(self._label_counter)
        label = label or f"flow-{seq}"
        flow = Flow(self.sim.event(), size, links, latency, label, seq)
        flow.last_update = self.sim.now
        flow.start_time = self.sim.now
        for link in links:
            if link.is_down:
                flow.finished = True
                flow.done.fail(SimulationError(
                    f"flow {label} through down capacity {link.name}"))
                return flow
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.flow_started(flow)
        if size <= _EPS or not links:
            flow.finished = True
            flow.remaining = 0.0
            self._complete(flow)
            return flow
        self.active.add(flow)
        for link in links:
            link.flows.add(flow)
            link.invalidate_share()
        if self.rate_model == "equal_share":
            self._rebalance(self._affected(links) | {flow})
        else:
            self._rebalance(self.active)
        return flow

    def abort(self, flow: Flow, cause: Optional[BaseException] = None) -> None:
        """Cancel an in-progress flow; its ``done`` event fails."""
        if flow.finished:
            return
        self._detach(flow)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.flow_finished(flow, completed=False)
        flow.done.defused = True
        flow.done.fail(cause or SimulationError(f"flow {flow.label} aborted"))

    def fail_capacity(self, cap: Capacity) -> list[Flow]:
        """Mark a capacity as failed and abort every flow crossing it."""
        cap._down = True
        # cap.flows hashes by object identity; sort so abort order (and
        # hence the emitted trace-event stream) is reproducible.
        victims = sorted(cap.flows, key=lambda f: f.seq)
        for flow in victims:
            self.abort(flow, SimulationError(
                f"capacity {cap.name} failed under flow {flow.label}"))
        return victims

    def restore_capacity(self, cap: Capacity) -> None:
        """Bring a failed capacity back online (transient-failure rejoin,
        disk replacement).  Flows that crossed it were already aborted by
        :meth:`fail_capacity`; new flows may use it immediately."""
        cap._down = False
        cap.armed_share = 0.0
        cap.invalidate_share()

    # -- internals -------------------------------------------------------
    def _affected(self, links: Iterable[Capacity]) -> set[Flow]:
        """Flows needing a rate check: those on links whose per-flow fair
        share moved by more than the tolerance since their flows were last
        re-armed.  Skipping stable links keeps huge symmetric shuffles
        (thousands of flows) near O(1) per completion; the timing error is
        bounded because drift accumulates against the armed share."""
        tolerance = self.rate_tolerance
        out: set[Flow] = set()
        for link in links:
            share = link.fair_share()
            armed = link.armed_share
            if armed > 0 and abs(share - armed) <= tolerance * armed:
                continue
            link.armed_share = share
            out |= link.flows
        return out

    def _detach(self, flow: Flow) -> None:
        self._settle(flow)
        flow.finished = True
        flow.generation += 1
        self.active.discard(flow)
        for link in flow.links:
            link.flows.discard(flow)
            link.invalidate_share()
        if self.rate_model == "equal_share":
            self._rebalance(self._affected(flow.links))
        else:
            self._rebalance(self.active)

    def _settle(self, flow: Flow) -> None:
        """Advance ``remaining`` to the current time at the current rate."""
        dt = self.sim.now - flow.last_update
        if dt > 0:
            before = flow.remaining
            flow.remaining = max(0.0, before - flow.rate * dt)
            tracer = self.sim.tracer
            if tracer.enabled and before > flow.remaining:
                tracer.flow_settled(flow, before - flow.remaining)
        flow.last_update = self.sim.now

    def _compute_rate(self, flow: Flow) -> float:
        rate = float("inf")
        for link in flow.links:
            share = link._share_cache
            if share < 0.0:
                share = link.fair_share()
            if share < rate:
                rate = share
        return rate

    def _rates_max_min(self) -> dict[Flow, float]:
        """Progressive-filling max-min fair allocation over active flows."""
        rates: dict[Flow, float] = {}
        unfrozen = set(self.active)
        ordered = sorted(self.active, key=lambda f: f.seq)
        caps: list[Capacity] = []
        seen: set[int] = set()
        for f in ordered:
            for link in f.links:
                if id(link) not in seen:
                    seen.add(id(link))
                    caps.append(link)
        remaining_cap = {link: link.effective_bandwidth() for link in caps}
        link_unfrozen = {link: sum(1 for f in link.flows if f in unfrozen)
                         for link in caps}
        while unfrozen:
            bottleneck = None
            best = float("inf")
            for link in caps:
                n = link_unfrozen[link]
                if n <= 0:
                    continue
                share = remaining_cap[link] / n
                if share < best - _EPS:
                    best = share
                    bottleneck = link
            if bottleneck is None:  # pragma: no cover - defensive
                for f in unfrozen:
                    rates[f] = float("inf")
                break
            frozen_now = sorted((f for f in bottleneck.flows
                                 if f in unfrozen), key=lambda f: f.seq)
            for f in frozen_now:
                rates[f] = best
                unfrozen.discard(f)
                for link in f.links:
                    remaining_cap[link] -= best
                    link_unfrozen[link] -= 1
        return rates

    def _rebalance(self, flows: Iterable[Flow]) -> None:
        if self.rate_model == "max_min":
            rates = self._rates_max_min()
            flows = rates
        else:
            rates = None
        tolerance = self.rate_tolerance
        # Deterministic order: flow sets hash by object identity, whose
        # iteration order varies between runs; settle/arm in creation order
        # so float accumulation and tie-breaking are reproducible.
        for flow in sorted(flows, key=lambda f: f.seq):
            if flow.finished:
                continue
            new_rate = rates[flow] if rates is not None \
                else self._compute_rate(flow)
            old = flow.rate
            if old > 0 and abs(new_rate - old) <= tolerance * old:
                continue  # negligible change; keep the armed wakeup
            self._settle(flow)
            flow.rate = new_rate
            flow.generation += 1
            self._arm(flow)

    def _arm(self, flow: Flow) -> None:
        """Schedule a wakeup at the flow's projected completion time."""
        if flow.rate <= _EPS:
            return  # stalled; will be rearmed when a rate change occurs
        eta = flow.remaining / flow.rate
        gen = flow.generation
        wake = self.sim.timeout(eta)
        wake.add_callback(lambda _ev, f=flow, g=gen: self._on_wake(f, g))

    def _on_wake(self, flow: Flow, generation: int) -> None:
        if flow.finished or flow.generation != generation:
            return  # stale wakeup: the rate changed since this was armed
        self._settle(flow)
        # Scale-aware completion tolerance: flows are sized in bytes (often
        # hundreds of MB), so an absolute epsilon would spin re-arming
        # sub-nanosecond timeouts that float addition truncates to zero dt.
        tolerance = max(_EPS, flow.size * 1e-9)
        if flow.remaining > tolerance and flow.rate > _EPS:
            eta = flow.remaining / flow.rate
            if self.sim.now + eta > self.sim.now:  # representable advance
                self._arm(flow)
                return
        tracer = self.sim.tracer
        if tracer.enabled and flow.remaining > 0:
            # The completion tolerance forgives a sub-ppb residue; charge it
            # to the links so traced bytes conserve exactly to flow sizes.
            tracer.flow_settled(flow, flow.remaining)
        flow.remaining = 0.0
        self._detach(flow)
        self._complete(flow)

    def _complete(self, flow: Flow) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.flow_finished(flow, completed=True)
        if flow.latency > 0:
            wake = self.sim.timeout(flow.latency)
            wake.add_callback(lambda _ev: flow.done.succeed(flow))
        else:
            flow.done.succeed(flow)
