"""Low-overhead structured tracer with Chrome trace-event export.

Event model
-----------
Events carry a *category* naming the subsystem layer that emitted them:

========== =============================================================
category   emitted for
========== =============================================================
``chain``  one span per chain execution (middleware)
``job``    one span per job run (JobTracker)
``task``   one span per task attempt (map / reduce / speculative)
``phase``  scheduler placement, shuffle readiness, replication points
``cascade`` failure detection, cascade planning, recomputation recovery
``flow``   one span per fluid-network flow (disk/NIC transfers)
========== =============================================================

Serialized schema (``TRACE_SCHEMA_VERSION``)
--------------------------------------------
Chrome trace-event JSON object format: the top-level object has
``traceEvents`` (the standard ``ph`` = ``X``/``i``/``C``/``M`` records with
``ts``/``dur`` in microseconds of *simulated* time), plus two extension
keys external tools may consume and ``chrome://tracing`` ignores:
``schema`` (this module's schema descriptor) and ``utilization`` (the
per-capacity accounting snapshot, see :mod:`repro.obs.utilization`).
JSONL export writes one event object per line, preceded by a header line
``{"schema": ...}`` and followed by a trailer ``{"utilization": ...}``.

Simulated seconds are converted to microseconds once at export; internal
timestamps stay float seconds so recording costs one multiply less.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional, TextIO, Union

from repro.obs.utilization import UtilizationMonitor

TRACE_SCHEMA_VERSION = 1

#: seconds of simulated time -> Chrome trace microseconds
_US = 1_000_000.0


class Span:
    """Handle for an open span; close it with :meth:`end`."""

    __slots__ = ("tracer", "cat", "name", "start", "tid", "args", "_open")

    def __init__(self, tracer: "RecordingTracer", cat: str, name: str,
                 start: float, tid: int, args: Optional[dict]):
        self.tracer = tracer
        self.cat = cat
        self.name = name
        self.start = start
        self.tid = tid
        self.args = args
        self._open = True

    def end(self, **extra: Any) -> None:
        """Close the span at the current simulated time."""
        if not self._open:  # idempotent: instrumented finally blocks may race
            return
        self._open = False
        if extra:
            args = dict(self.args) if self.args else {}
            args.update(extra)
        else:
            args = self.args
        self.tracer._emit_complete(self.cat, self.name, self.start,
                                   self.tid, args)


class _NullSpan:
    """Shared no-op span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def end(self, **extra: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Tracing interface; the base class is the no-op implementation.

    Hot paths guard argument construction on :attr:`enabled`::

        tracer = sim.tracer
        if tracer.enabled:
            tracer.instant("cascade", "failure", node=node_id)
    """

    enabled = False

    # -- lifecycle -----------------------------------------------------
    def bind(self, clock: Callable[[], float], label: str = "") -> None:
        """Attach to a simulation run: ``clock`` returns simulated seconds.

        Each bind opens a new trace *process* (Chrome ``pid``), so several
        chain executions recorded into one tracer stay separable."""

    # -- event emission ------------------------------------------------
    def span(self, cat: str, name: str, tid: int = 0,
             **args: Any) -> Union[Span, _NullSpan]:
        """Open a span at the current time; close it via the handle."""
        return _NULL_SPAN

    def complete(self, cat: str, name: str, start: float, end: float,
                 tid: int = 0, **args: Any) -> None:
        """Record a span whose start/end times are already known."""

    def instant(self, cat: str, name: str, tid: int = 0,
                **args: Any) -> None:
        """Record a point event."""

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        """Record a counter sample (numeric series over time)."""

    # -- fluid-network hooks --------------------------------------------
    def flow_started(self, flow: Any) -> None:
        pass

    def flow_settled(self, flow: Any, moved_bytes: float) -> None:
        pass

    def flow_finished(self, flow: Any, completed: bool) -> None:
        pass

    # -- export ----------------------------------------------------------
    def export(self, path: str) -> None:
        raise NotImplementedError("no-op tracer records nothing to export")


class NullTracer(Tracer):
    """Explicit alias of the no-op base, for readable call sites."""


NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Records events in memory; export once the run(s) finish."""

    enabled = True

    def __init__(self) -> None:
        self._clock: Callable[[], float] = lambda: 0.0
        self.pid = 0
        self.events: list[dict] = []
        self.utilization = UtilizationMonitor(lambda: self._clock())
        #: (cat, name) -> running count, for cheap per-category counters
        self._bind_count = 0

    # -- lifecycle -----------------------------------------------------
    def bind(self, clock: Callable[[], float], label: str = "") -> None:
        self._bind_count += 1
        self.pid = self._bind_count
        self._clock = clock
        self.events.append({
            "ph": "M", "name": "process_name", "pid": self.pid, "tid": 0,
            "args": {"name": label or f"run-{self.pid}"},
        })

    @property
    def now(self) -> float:
        return self._clock()

    # -- event emission ------------------------------------------------
    def span(self, cat: str, name: str, tid: int = 0, **args: Any) -> Span:
        return Span(self, cat, name, self._clock(), tid, args or None)

    def _emit_complete(self, cat: str, name: str, start: float, tid: int,
                       args: Optional[dict]) -> None:
        event = {"ph": "X", "cat": cat, "name": name, "ts": start,
                 "dur": self._clock() - start, "pid": self.pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def complete(self, cat: str, name: str, start: float, end: float,
                 tid: int = 0, **args: Any) -> None:
        event = {"ph": "X", "cat": cat, "name": name, "ts": start,
                 "dur": end - start, "pid": self.pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, cat: str, name: str, tid: int = 0,
                **args: Any) -> None:
        event = {"ph": "i", "cat": cat, "name": name, "ts": self._clock(),
                 "pid": self.pid, "tid": tid, "s": "p"}
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, values: dict, tid: int = 0) -> None:
        self.events.append({"ph": "C", "name": name, "ts": self._clock(),
                            "pid": self.pid, "tid": tid, "args": values})

    # -- fluid-network hooks --------------------------------------------
    def flow_started(self, flow: Any) -> None:
        self.utilization.flow_started(flow)

    def flow_settled(self, flow: Any, moved_bytes: float) -> None:
        self.utilization.flow_settled(flow, moved_bytes)

    def flow_finished(self, flow: Any, completed: bool) -> None:
        self.utilization.flow_finished(flow, completed)
        self.complete("flow", flow.label, flow.start_time, self._clock(),
                      size=flow.size, moved=flow.size - flow.remaining,
                      completed=completed,
                      links=[link.name for link in flow.links])

    # -- export ----------------------------------------------------------
    def schema(self) -> dict:
        return {
            "format": "chrome-trace-event+rcmp-repro",
            "version": TRACE_SCHEMA_VERSION,
            "time_unit": "us (simulated)",
            "categories": ["chain", "job", "task", "phase", "cascade",
                           "flow"],
        }

    def chrome_events(self) -> list[dict]:
        """Events with timestamps converted to Chrome's microseconds."""
        out = []
        for ev in self.events:
            ev = dict(ev)
            if "ts" in ev:
                ev["ts"] = ev["ts"] * _US
            if "dur" in ev:
                ev["dur"] = ev["dur"] * _US
            out.append(ev)
        return out

    def to_chrome_dict(self) -> dict:
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "schema": self.schema(),
            "utilization": self.utilization.snapshot(),
        }

    def export(self, path: str) -> None:
        """Write the trace: ``*.jsonl`` -> JSON Lines, else Chrome JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            if path.endswith(".jsonl"):
                self._write_jsonl(fh)
            else:
                json.dump(self.to_chrome_dict(), fh)
                fh.write("\n")

    def _write_jsonl(self, fh: TextIO) -> None:
        fh.write(json.dumps({"schema": self.schema()}) + "\n")
        for ev in self.chrome_events():
            fh.write(json.dumps(ev) + "\n")
        fh.write(json.dumps({"utilization": self.utilization.snapshot()})
                 + "\n")
