"""Observability: structured tracing and resource-utilization accounting.

The package is deliberately dependency-free (pure stdlib, no imports from
the rest of ``repro``) so the simulation core can depend on it without
cycles.  Two tracer implementations share one interface:

``NullTracer``
    The default.  Every method is a no-op and ``enabled`` is ``False``,
    so instrumented hot paths pay a single attribute check.
``RecordingTracer``
    Records typed span/counter/instant events (job, task, phase, cascade,
    flow) and per-capacity utilization (bytes moved, busy time, concurrency
    histogram).  Exports Chrome trace-event JSON (loadable in
    ``chrome://tracing`` / Perfetto) and JSONL.

A module-level *ambient* tracer lets entry points that cannot thread a
tracer argument through every call (the figure regeneration modules)
install one for the duration of a run::

    with repro.obs.tracing(tracer):
        fig8.run("ci")
    tracer.export("/tmp/fig8-trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer, Tracer
from repro.obs.utilization import UtilizationMonitor

_ambient: Tracer = NULL_TRACER


def get_ambient_tracer() -> Tracer:
    """The tracer newly created :class:`Simulator` objects bind to when no
    explicit tracer is passed."""
    return _ambient


def set_ambient_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the ambient default; returns the previous one."""
    global _ambient
    previous = _ambient
    _ambient = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer):
    """Context manager installing ``tracer`` as the ambient default."""
    previous = set_ambient_tracer(tracer)
    try:
        yield tracer
    finally:
        set_ambient_tracer(previous)


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Tracer",
    "UtilizationMonitor",
    "get_ambient_tracer",
    "set_ambient_tracer",
    "tracing",
]
