"""Per-capacity utilization accounting driven by fluid-network hooks.

For every :class:`~repro.simcore.resources.Capacity` a flow crosses, the
monitor integrates:

* **bytes** — data actually moved through the link (settled rate x dt, so
  an aborted flow contributes only what it transferred before the abort);
* **busy time** — simulated time with at least one flow on the link;
* **concurrency histogram** — time spent at each concurrent-flow level,
  from which mean/peak concurrency follow.

The monitor never imports simulation types; it duck-types ``flow.links``
(objects with a ``name`` attribute) and ``flow.size``, so it is usable
from tests with plain stand-ins.

The per-link **peak concurrency** is the observable behind the paper's
Fig. 12 argument: under NO-SPLIT recomputation all S*N recomputed-mapper
reads converge on the one disk holding the recomputed reducer output, so
that disk's peak dwarfs every other link's.
"""

from __future__ import annotations

from typing import Any, Callable


class LinkUsage:
    """Accumulated utilization of one capacity (identified by name)."""

    __slots__ = ("name", "bytes", "busy_time", "concurrency_time",
                 "peak_concurrency", "current", "_last_change",
                 "flows_started", "flows_completed", "flows_aborted")

    def __init__(self, name: str, now: float):
        self.name = name
        self.bytes = 0.0
        self.busy_time = 0.0
        #: concurrency level -> accumulated seconds at that level (level 0
        #: is only accumulated between the link's first use and ``close``)
        self.concurrency_time: dict[int, float] = {}
        self.peak_concurrency = 0
        self.current = 0
        self._last_change = now
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_aborted = 0

    def _advance(self, now: float) -> None:
        dt = now - self._last_change
        if dt > 0:
            level = self.current
            self.concurrency_time[level] = \
                self.concurrency_time.get(level, 0.0) + dt
            if level > 0:
                self.busy_time += dt
        self._last_change = now

    def enter(self, now: float) -> None:
        self._advance(now)
        self.current += 1
        self.flows_started += 1
        if self.current > self.peak_concurrency:
            self.peak_concurrency = self.current

    def leave(self, now: float, completed: bool) -> None:
        self._advance(now)
        self.current -= 1
        if completed:
            self.flows_completed += 1
        else:
            self.flows_aborted += 1

    def mean_concurrency(self) -> float:
        """Time-averaged concurrency over the link's busy time."""
        if self.busy_time <= 0:
            return 0.0
        weighted = sum(level * t for level, t in
                       self.concurrency_time.items() if level > 0)
        return weighted / self.busy_time

    def throughput(self) -> float:
        """Bytes per second of busy time (0 if never busy)."""
        return self.bytes / self.busy_time if self.busy_time > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "bytes": self.bytes,
            "busy_time": self.busy_time,
            "peak_concurrency": self.peak_concurrency,
            "mean_concurrency": self.mean_concurrency(),
            "throughput": self.throughput(),
            "concurrency_time": {str(k): v for k, v in
                                 sorted(self.concurrency_time.items())},
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_aborted": self.flows_aborted,
        }


class UtilizationMonitor:
    """Aggregates :class:`LinkUsage` across every link flows touch."""

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self.links: dict[str, LinkUsage] = {}

    def _usage(self, link: Any, now: float) -> LinkUsage:
        usage = self.links.get(link.name)
        if usage is None:
            usage = self.links[link.name] = LinkUsage(link.name, now)
        return usage

    # -- hooks (called by the tracer) -----------------------------------
    def flow_started(self, flow: Any) -> None:
        now = self.clock()
        for link in flow.links:
            self._usage(link, now).enter(now)

    def flow_settled(self, flow: Any, moved_bytes: float) -> None:
        if moved_bytes <= 0:
            return
        for link in flow.links:
            self.links[link.name].bytes += moved_bytes

    def flow_finished(self, flow: Any, completed: bool) -> None:
        now = self.clock()
        for link in flow.links:
            self._usage(link, now).leave(now, completed)

    # -- queries ----------------------------------------------------------
    def close(self) -> None:
        """Flush histogram time up to the current instant."""
        now = self.clock()
        for usage in self.links.values():
            usage._advance(now)

    def bytes_by_link(self) -> dict[str, float]:
        return {name: usage.bytes for name, usage in self.links.items()}

    def peak_concurrency_by_link(self) -> dict[str, int]:
        return {name: usage.peak_concurrency
                for name, usage in self.links.items()}

    def top_concurrency_link(self) -> tuple[str, int]:
        """(link name, peak concurrency) of the most-contended link."""
        if not self.links:
            return ("", 0)
        name = max(self.links,
                   key=lambda n: (self.links[n].peak_concurrency, n))
        return (name, self.links[name].peak_concurrency)

    def snapshot(self) -> dict:
        self.close()
        return {name: usage.as_dict()
                for name, usage in sorted(self.links.items())}
