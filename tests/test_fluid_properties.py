"""Property-based tests for the fluid bandwidth-sharing model.

These pin the invariants the evaluation's shapes rest on: byte
conservation, capacity limits, work-conservation bounds, monotonicity of
completion under added load, and determinism.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Capacity, FluidNetwork, Simulator


def run_flows(flow_specs, rate_model="equal_share", n_links=3,
              bandwidth=100.0, alpha=0.0, tolerance=0.02):
    """flow_specs: list of (size, start_time, link_indexes)."""
    sim = Simulator()
    net = FluidNetwork(sim, rate_model, rate_tolerance=tolerance)
    links = [Capacity(f"l{i}", bandwidth, concurrency_penalty=alpha)
             for i in range(n_links)]
    ends = {}

    def proc(idx, size, start, link_ids):
        yield sim.timeout(start)
        flow = net.transfer(size, [links[i] for i in link_ids])
        yield flow.done
        ends[idx] = sim.now

    for idx, (size, start, link_ids) in enumerate(flow_specs):
        sim.process(proc(idx, size, start, link_ids))
    sim.run()
    return ends


flow_spec = st.tuples(
    st.floats(min_value=1.0, max_value=5000.0),       # size
    st.floats(min_value=0.0, max_value=50.0),         # start
    st.lists(st.integers(min_value=0, max_value=2),   # links
             min_size=1, max_size=3, unique=True),
)


@settings(max_examples=40, deadline=None)
@given(specs=st.lists(flow_spec, min_size=1, max_size=8))
def test_property_all_flows_complete(specs):
    ends = run_flows(specs)
    assert len(ends) == len(specs)
    for idx, (size, start, _links) in enumerate(specs):
        # can't finish faster than line rate over one link
        assert ends[idx] >= start + size / 100.0 - 1e-6


@settings(max_examples=40, deadline=None)
@given(specs=st.lists(flow_spec, min_size=1, max_size=8))
def test_property_aggregate_respects_capacity(specs):
    """Total bytes moved through any link can't exceed capacity * time."""
    ends = run_flows(specs)
    makespan = max(ends.values())
    for link_id in range(3):
        total = sum(size for (size, _s, links) in specs
                    if link_id in links)
        # equal-share never exceeds the link's base bandwidth
        assert total <= 100.0 * makespan + 1e-6


@settings(max_examples=30, deadline=None)
@given(specs=st.lists(flow_spec, min_size=1, max_size=6),
       extra=flow_spec)
def test_property_added_load_never_speeds_others_up(specs, extra):
    """Work-conservation direction: adding a flow cannot make any existing
    flow finish earlier (within the rate-update tolerance)."""
    base = run_flows(specs, tolerance=0.0)
    loaded = run_flows(specs + [extra], tolerance=0.0)
    for idx in range(len(specs)):
        assert loaded[idx] >= base[idx] - 1e-6


@settings(max_examples=30, deadline=None)
@given(specs=st.lists(flow_spec, min_size=1, max_size=8))
def test_property_deterministic(specs):
    assert run_flows(specs) == run_flows(specs)


@settings(max_examples=30, deadline=None)
@given(specs=st.lists(flow_spec, min_size=1, max_size=6))
def test_property_max_min_never_slower_than_equal_share(specs):
    """Max-min redistributes headroom, so every flow finishes no later
    than under the equal-share approximation."""
    eq = run_flows(specs, "equal_share", tolerance=0.0)
    mm = run_flows(specs, "max_min", tolerance=0.0)
    assert max(mm.values()) <= max(eq.values()) + 1e-6


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(flow_spec, min_size=1, max_size=6),
       tol=st.floats(min_value=0.0, max_value=0.05))
def test_property_tolerance_error_bounded(specs, tol):
    """The rate-update tolerance changes completion times by a bounded
    relative amount."""
    exact = run_flows(specs, tolerance=0.0)
    approx = run_flows(specs, tolerance=tol)
    for idx, (size, start, _links) in enumerate(specs):
        duration_exact = exact[idx] - start
        duration_approx = approx[idx] - start
        if duration_exact <= 1e-9:
            continue
        rel = abs(duration_approx - duration_exact) / duration_exact
        # generous bound: tolerance compounds across at most a handful of
        # rate changes with <= 6 flows
        assert rel <= 10 * tol + 1e-6


@settings(max_examples=25, deadline=None)
@given(alpha=st.floats(min_value=0.0, max_value=2.0),
       n=st.integers(min_value=1, max_value=64))
def test_property_penalty_model_sane(alpha, n):
    disk = Capacity("d", 100.0, concurrency_penalty=alpha,
                    penalty_floor=0.4)
    eff = disk.effective_bandwidth(n)
    assert 40.0 - 1e-9 <= eff <= 100.0 + 1e-9
    assert not math.isnan(eff)
    # monotone non-increasing
    assert disk.effective_bandwidth(n + 1) <= eff + 1e-9


@settings(max_examples=20, deadline=None)
@given(sizes=st.lists(st.floats(min_value=10.0, max_value=1000.0),
                      min_size=2, max_size=6))
def test_property_symmetric_flows_finish_together(sizes):
    """Identical flows starting together on one link finish together."""
    size = sizes[0]
    specs = [(size, 0.0, [0]) for _ in sizes]
    ends = run_flows(specs)
    values = list(ends.values())
    assert max(values) - min(values) <= 1e-6 * max(values) + 1e-9
    assert max(values) == pytest.approx(size * len(sizes) / 100.0, rel=1e-6)