"""Tests for the replicate-vs-recompute economics (paper §III)."""

import pytest

from repro.analysis.economics import (
    StrategyCosts,
    break_even_failure_probability,
    expected_slowdown_table,
    provisioning_overhead,
    runs_between_failures,
)


def costs(name="x", clean=100.0, failed=200.0):
    return StrategyCosts(name, clean, failed)


def test_expected_runtime_interpolates():
    c = costs(clean=100.0, failed=300.0)
    assert c.expected_runtime(0.0) == 100.0
    assert c.expected_runtime(1.0) == 300.0
    assert c.expected_runtime(0.25) == pytest.approx(150.0)
    with pytest.raises(ValueError):
        c.expected_runtime(1.5)


def test_break_even_typical_case():
    # recompute: cheap clean, big failure penalty; replicate: the reverse
    rcmp = costs("rcmp", clean=100.0, failed=250.0)
    repl = costs("repl", clean=170.0, failed=190.0)
    p = break_even_failure_probability(rcmp, repl)
    # E_rcmp(p) = 100 + 150p ; E_repl(p) = 170 + 20p ; p* = 70/130
    assert p == pytest.approx(70.0 / 130.0)
    assert rcmp.expected_runtime(p) == pytest.approx(repl.expected_runtime(p))
    assert rcmp.expected_runtime(p / 2) < repl.expected_runtime(p / 2)
    assert rcmp.expected_runtime(min(1.0, p * 1.2)) > \
        repl.expected_runtime(min(1.0, p * 1.2))


def test_break_even_recompute_dominates():
    """RCMP faster clean AND under failure: replication never pays."""
    rcmp = costs("rcmp", clean=100.0, failed=150.0)
    repl = costs("repl", clean=170.0, failed=180.0)
    assert break_even_failure_probability(rcmp, repl) == float("inf")


def test_break_even_replication_dominates():
    repl = costs("repl", clean=90.0, failed=95.0)
    rcmp = costs("rcmp", clean=100.0, failed=300.0)
    assert break_even_failure_probability(rcmp, repl) == 0.0


def test_provisioning_overhead():
    assert provisioning_overhead(165.0, 100.0) == pytest.approx(0.65)
    assert provisioning_overhead(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        provisioning_overhead(100.0, 0.0)


def test_runs_between_failures():
    # 17% failure days, 10 runs/day -> ~59 runs per failure day
    assert runs_between_failures(0.17, 10.0) == pytest.approx(58.82, rel=1e-3)
    with pytest.raises(ValueError):
        runs_between_failures(0.0, 10.0)


def test_expected_slowdown_table_normalized():
    rcmp = costs("rcmp", clean=100.0, failed=250.0)
    repl = costs("repl", clean=170.0, failed=190.0)
    table = expected_slowdown_table([rcmp, repl], [0.0, 0.05, 1.0])
    assert table["rcmp"][0] == 1.0          # failure-free: rcmp is the best
    assert table["repl"][0] == pytest.approx(1.7)
    assert table["rcmp"][1] == 1.0          # rare failures: still best
    assert table["repl"][2] == 1.0          # certain failure: repl wins
    assert table["rcmp"][2] > 1.0


def test_paper_narrative_with_measured_numbers():
    """End-to-end: measured simulator runtimes + Fig. 2 failure rates imply
    recomputation is the right default at moderate scale."""
    from repro.cluster import presets
    from repro.core import strategies
    from repro.core.middleware import run_chain
    from repro.workloads.chain import build_chain
    MB = 1 << 20
    chain = build_chain(n_jobs=3, per_node_input=256 * MB,
                        block_size=64 * MB)

    def measure(strategy):
        clean = run_chain(presets.tiny(4), strategy, chain=chain)
        failed = run_chain(presets.tiny(4), strategy, chain=chain,
                           failures="3")
        return StrategyCosts(strategy.name, clean.total_runtime,
                             failed.total_runtime)

    rcmp = measure(strategies.RCMP)
    repl3 = measure(strategies.REPL3)
    p_star = break_even_failure_probability(rcmp, repl3)
    # Fig. 2: at most ~17% of *days* see failures; per-run probability is
    # far lower, and the break-even point must sit well above it
    assert p_star > 0.17
