"""Tests for reducer splitting (paper §IV-B1)."""

import pytest

from repro.core.splitting import LostPiece, plan_reduce_recomputation


def test_whole_partition_split_k_ways():
    plan = plan_reduce_recomputation([LostPiece(3)], split_ratio=4,
                                     alive_nodes=[0, 1, 2, 4])
    assert len(plan.tasks) == 4
    assert plan.split_partitions == {3}
    fractions = [t.fraction for t in plan.tasks]
    assert sum(fractions) == pytest.approx(1.0)
    assert all(t.partition == 3 for t in plan.tasks)
    assert [t.split_index for t in plan.tasks] == [0, 1, 2, 3]
    # splits land on distinct nodes (maximize compute-node parallelism)
    nodes = [plan.assignment[t.task_id] for t in plan.tasks]
    assert sorted(nodes) == [0, 1, 2, 4]


def test_no_split_single_task_on_one_node():
    plan = plan_reduce_recomputation([LostPiece(0)], split_ratio=1,
                                     alive_nodes=[5, 6, 7])
    assert len(plan.tasks) == 1
    assert plan.tasks[0].fraction == 1.0
    assert plan.split_partitions == set()
    assert plan.assignment[plan.tasks[0].task_id] == 5


def test_split_ratio_capped_by_alive_nodes():
    plan = plan_reduce_recomputation([LostPiece(0)], split_ratio=10,
                                     alive_nodes=[0, 1, 2])
    assert len(plan.tasks) == 3


def test_fractional_piece_not_resplit():
    """A lost split piece is recomputed as one task with its key range."""
    lost = [LostPiece(2, fraction=0.25, split_index=1, n_splits=4)]
    plan = plan_reduce_recomputation(lost, split_ratio=8,
                                     alive_nodes=[0, 1, 2])
    assert len(plan.tasks) == 1
    task = plan.tasks[0]
    assert task.fraction == pytest.approx(0.25)
    assert task.split_index == 1 and task.n_splits == 4
    assert plan.split_partitions == set()


def test_multiple_lost_partitions_all_planned():
    lost = [LostPiece(1), LostPiece(0)]
    plan = plan_reduce_recomputation(lost, split_ratio=2,
                                     alive_nodes=[0, 1, 2, 3])
    assert len(plan.tasks) == 4
    assert plan.split_partitions == {0, 1}
    # tasks ordered by partition then split
    assert [t.partition for t in plan.tasks] == [0, 0, 1, 1]
    # round robin keeps spreading across all nodes
    nodes = [plan.assignment[t.task_id] for t in plan.tasks]
    assert sorted(nodes) == [0, 1, 2, 3]


def test_task_ids_start_from_offset_and_are_unique():
    lost = [LostPiece(0), LostPiece(1)]
    plan = plan_reduce_recomputation(lost, split_ratio=3,
                                     alive_nodes=[0, 1, 2],
                                     start_task_id=100)
    ids = [t.task_id for t in plan.tasks]
    assert ids == list(range(100, 106))


def test_exclude_nodes_honored():
    plan = plan_reduce_recomputation([LostPiece(0)], split_ratio=2,
                                     alive_nodes=[0, 1, 2],
                                     exclude_nodes={0})
    nodes = {plan.assignment[t.task_id] for t in plan.tasks}
    assert 0 not in nodes


def test_validation():
    with pytest.raises(ValueError):
        plan_reduce_recomputation([LostPiece(0)], split_ratio=0,
                                  alive_nodes=[0])
    with pytest.raises(ValueError):
        plan_reduce_recomputation([LostPiece(0)], split_ratio=1,
                                  alive_nodes=[])
    with pytest.raises(ValueError):
        LostPiece(0, fraction=0.0)
