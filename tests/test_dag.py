"""Tests for DAG-shaped multi-job computations (paper §I, §IV-A)."""

import pytest

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads import dag
from repro.workloads.chain import ChainJobSpec, ChainSpec

MB = 1 << 20


def small(builder, **kw):
    return builder(per_node_input=256 * MB, block_size=64 * MB, **kw)


# -------------------------------------------------------------- structure
def test_linear_chain_dependencies_unchanged():
    from repro.workloads.chain import build_chain
    chain = build_chain(n_jobs=3)
    assert chain.dependencies(1) == ()
    assert chain.dependencies(2) == (1,)
    assert chain.dependencies(3) == (2,)
    assert chain.consumers(1) == (2,)


def test_diamond_structure():
    d = small(dag.diamond)
    assert d.n_jobs == 4
    assert d.dependencies(1) == ()
    assert d.dependencies(2) == (1,)
    assert d.dependencies(3) == (1,)
    assert d.dependencies(4) == (2, 3)
    assert d.consumers(1) == (2, 3)


def test_fan_shapes():
    fi = small(dag.fan_in, k=3)
    assert fi.dependencies(4) == (1, 2, 3)
    fo = small(dag.fan_out, k=3)
    assert fo.consumers(1) == (2, 3, 4)
    with pytest.raises(ValueError):
        dag.fan_in(k=1)
    with pytest.raises(ValueError):
        dag.fan_out(k=1)


def test_binary_tree_structure():
    t = small(dag.binary_tree, depth=2)
    # 4 leaves + 2 joins + root = 7 jobs
    assert t.n_jobs == 7
    assert t.dependencies(5) == (1, 2)
    assert t.dependencies(6) == (3, 4)
    assert t.dependencies(7) == (5, 6)


def test_forward_dependency_rejected():
    with pytest.raises(ValueError):
        ChainSpec(n_jobs=2, jobs=(
            ChainJobSpec(depends_on=(2,)), ChainJobSpec(depends_on=())))


# -------------------------------------------------------------- execution
@pytest.mark.parametrize("builder,kw", [
    (dag.diamond, {}),
    (dag.fan_in, {"k": 2}),
    (dag.fan_out, {"k": 2}),
    (dag.binary_tree, {"depth": 1}),
])
def test_dag_runs_failure_free(builder, kw):
    chain = small(builder, **kw)
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain)
    assert result.completed
    assert result.jobs_started == chain.n_jobs


def test_diamond_recovers_from_failure():
    chain = small(dag.diamond)
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain,
                       failures="4")  # fails during the join
    assert result.completed
    # the cascade regenerates the damaged ancestors of job 4 (jobs 1-3
    # each lost a partition on the dead node)
    recomputed = {j.logical_index for j in
                  result.metrics.jobs_of_kind("recompute")}
    assert recomputed == {1, 2, 3}


def test_fan_out_failure_in_one_branch_spares_siblings():
    """A failure while consumer job 3 runs damages completed outputs, but
    the cascade for job 3 only needs its own ancestry (job 1 + earlier
    consumers' outputs are irrelevant to it)."""
    chain = small(dag.fan_out, k=3)
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain,
                       failures="3")  # during the second consumer
    assert result.completed
    recomputed = [j.logical_index for j in
                  result.metrics.jobs_of_kind("recompute")]
    # job 2 (a finished sibling consumer) is NOT in job 3's ancestry; it is
    # only regenerated later if the final job ordering needs it — with
    # fan-out it never is, so only job 1's partition cascades now
    assert 1 in recomputed
    assert 2 not in recomputed


def test_dag_double_failure():
    chain = small(dag.binary_tree, depth=2)
    result = run_chain(presets.tiny(5), strategies.RCMP, chain=chain,
                       failures="6,8")
    assert result.completed


def test_repl_baseline_on_dag():
    chain = small(dag.diamond)
    result = run_chain(presets.tiny(4), strategies.REPL2, chain=chain,
                       failures="4")
    assert result.completed
    assert result.jobs_started == 4  # replication absorbs it within-job


def test_cascade_minimality_on_diamond():
    """needed_cascade stops at intact outputs: with job 2's output
    replicated (hybrid point), a failure during job 4 must not recompute
    job 2, but job 3 (single-replicated) still cascades."""
    from repro.cluster.topology import Cluster
    from repro.core.lineage import ChainState
    from repro.core.persistence import PersistedStore
    from repro.dfs import DistributedFileSystem
    from repro.simcore import SeedSequenceRegistry, Simulator

    chain = small(dag.diamond)
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(4), SeedSequenceRegistry(0))
    dfs = DistributedFileSystem(cluster, chain.block_size)
    state = ChainState(chain, cluster, dfs, PersistedStore(),
                       strategies.RCMP)
    # fabricate completed jobs 1..3 with single-piece layouts
    from repro.core.lineage import Piece, _JobState
    for j in (1, 2, 3):
        js = _JobState()
        for p in range(2):
            name = f"j{j}p{p}"
            dfs.create_placed(name, 64 * MB, locations=[p])
            js.layout[p] = [Piece(name, 1.0, 0, 1)]
        state.jobs[j] = js
    # damage jobs 1 and 3 (not 2)
    from repro.core.splitting import LostPiece
    state.jobs[1].damaged[0] = [LostPiece(0)]
    state.jobs[3].damaged[0] = [LostPiece(0)]
    cascade = state.needed_cascade(4)
    # job 4 depends on (2, 3): 2 intact -> branch stops; 3 damaged -> its
    # dep 1 is damaged too -> cascade = [1, 3]
    assert cascade == [1, 3]
