"""Tests for the chain workload spec and failure scenarios."""

import pytest

from repro.cluster import presets
from repro.workloads.chain import ChainJobSpec, ChainSpec, build_chain
from repro.workloads.scenarios import SCENARIOS, custom, scenario

GB = 1 << 30
MB = 1 << 20


def test_default_chain_matches_paper():
    chain = build_chain()
    assert chain.n_jobs == 7
    assert chain.per_node_input == 4 * GB
    assert chain.block_size == 256 * MB
    assert chain.input_replication == 3
    job = chain.job(1)
    assert job.map_output_ratio == 1.0      # the 1/1/1 sort-like ratio
    assert job.reduce_output_ratio == 1.0


def test_chain_validation():
    with pytest.raises(ValueError):
        ChainSpec(n_jobs=0)
    with pytest.raises(ValueError):
        ChainSpec(n_jobs=2, jobs=(ChainJobSpec(),))  # mismatched length
    with pytest.raises(ValueError):
        ChainJobSpec(map_output_ratio=0.0)
    with pytest.raises(IndexError):
        build_chain(n_jobs=3).job(4)


def test_reducer_count_defaults_to_slots():
    chain = build_chain()
    stic11 = presets.stic((1, 1))
    stic22 = presets.stic((2, 2))
    assert chain.job(1).n_reducers(stic11) == 10   # WR = 1
    assert chain.job(1).n_reducers(stic22) == 20


def test_explicit_reducers_per_node():
    chain = build_chain(reducers_per_node=4.0)
    assert chain.job(1).n_reducers(presets.stic((1, 1))) == 40  # WR = 4


def test_heavier_output_ratio_chain():
    """x:y:z with z > x, like Pig Cogroup (paper §V-A)."""
    chain = build_chain(ratios=(1.0, 2.0))
    assert chain.job(3).reduce_output_ratio == 2.0


def test_total_input_scales_with_nodes():
    chain = build_chain(per_node_input=4 * GB)
    assert chain.total_input(10) == 40 * GB


# ---------------------------------------------------------------- scenarios
def test_fig7_scenarios_present():
    assert set("abcdef") <= set(SCENARIOS)
    assert SCENARIOS["a"].n_failures == 0
    assert SCENARIOS["b"].plan().events[0].at_job == 2
    assert SCENARIOS["c"].plan().events[0].at_job == 7


def test_fig9_double_scenarios():
    e = scenario("e")
    assert [ev.at_job for ev in e.plan().events] == [7, 14]
    nested = scenario("f")
    assert [ev.at_job for ev in nested.plan().events] == [4, 7]
    same_job = scenario("fail7,7")
    offsets = [ev.offset for ev in same_job.plan().events]
    assert offsets == [15.0, 30.0]  # second kill 15 s after the first


def test_scenario_lookup_errors():
    with pytest.raises(KeyError):
        scenario("zzz")


def test_custom_scenario():
    s = custom("3,9")
    assert s.n_failures == 2
    assert [ev.at_job for ev in s.plan().events] == [3, 9]
