"""Tests for the job/task model."""

import pytest

from repro.mapreduce.types import (
    JobPlan,
    MapInput,
    MapTaskSpec,
    PartitionRef,
    ReduceTaskSpec,
    ReusedMapOutput,
)

MB = 1 << 20


def mt(task_id, size=64 * MB, locations=(0,), origin=None):
    return MapTaskSpec(task_id, MapInput(size, tuple(locations), origin),
                       output_size=size)


def test_map_input_validation():
    with pytest.raises(ValueError):
        MapInput(-1.0, (0,))
    with pytest.raises(ValueError):
        MapInput(10.0, ())


def test_reduce_task_validation():
    with pytest.raises(ValueError):
        ReduceTaskSpec(0, 0, fraction=0.0)
    with pytest.raises(ValueError):
        ReduceTaskSpec(0, 0, fraction=1.5)
    with pytest.raises(ValueError):
        ReduceTaskSpec(0, 0, split_index=2, n_splits=2)
    ReduceTaskSpec(0, 0, fraction=0.5, split_index=1, n_splits=2)


def test_job_plan_rejects_duplicate_and_conflicting_ids():
    with pytest.raises(ValueError):
        JobPlan(1, "j", "initial", [mt(0), mt(0)], [ReduceTaskSpec(0, 0)], 2)
    with pytest.raises(ValueError):
        JobPlan(1, "j", "initial", [mt(0)], [ReduceTaskSpec(0, 0)], 2,
                reused_map_outputs=[ReusedMapOutput(0, 1, 64 * MB)])


def test_job_plan_kind_and_mode_validation():
    with pytest.raises(ValueError):
        JobPlan(1, "j", "bogus", [mt(0)], [], 1)
    with pytest.raises(ValueError):
        JobPlan(1, "j", "initial", [mt(0)], [], 1, recovery_mode="weird")
    with pytest.raises(ValueError):
        JobPlan(1, "j", "initial", [mt(0)], [], 0)


def test_total_map_output_includes_reused():
    plan = JobPlan(1, "j", "recompute", [mt(0, 10.0)],
                   [ReduceTaskSpec(0, 0)], 2,
                   reused_map_outputs=[ReusedMapOutput(1, 1, 30.0)])
    assert plan.total_map_output == pytest.approx(40.0)


def test_reduce_input_size_uses_fraction_and_partitions():
    plan = JobPlan(1, "j", "recompute", [mt(0, 100.0)],
                   [ReduceTaskSpec(0, 0, fraction=0.25, split_index=0,
                                   n_splits=4)], 5)
    task = plan.reduce_tasks[0]
    # 100 output bytes over 5 partitions -> 20/partition; 1/4 split -> 5
    assert plan.reduce_input_size(task) == pytest.approx(5.0)
    assert plan.reduce_output_size(task) == pytest.approx(5.0)


def test_reduce_output_ratio_scales_output():
    plan = JobPlan(1, "j", "initial", [mt(0, 100.0)],
                   [ReduceTaskSpec(0, 0)], 1, reduce_output_ratio=2.0)
    task = plan.reduce_tasks[0]
    assert plan.reduce_output_size(task) == pytest.approx(200.0)


def test_slice_size_uniform():
    spec = mt(0, size=100.0)
    assert spec.slice_size(4) == pytest.approx(25.0)
    assert spec.slice_size(4, fraction=0.5) == pytest.approx(12.5)
    reused = ReusedMapOutput(9, 2, 100.0)
    assert reused.slice_size(4) == pytest.approx(25.0)


def test_partition_ref_is_hashable_tuple():
    ref = PartitionRef(3, 7)
    assert ref.job_index == 3 and ref.partition == 7
    assert ref == (3, 7)
    assert len({ref, PartitionRef(3, 7)}) == 1
