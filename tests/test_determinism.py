"""Determinism: identical seeds produce byte-identical runs.

Two executions of the same chain with the same seed must agree on every
observable — the metrics summary, and (when traced) the full serialized
event stream and utilization snapshot.  This is what makes recorded
traces trustworthy for regression comparison and the simulator usable
for bisecting behavioural changes.
"""

import json

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.obs import RecordingTracer


def _traced_run():
    tracer = RecordingTracer()
    result = run_chain(presets.tiny(4), strategies.RCMP, failures="2",
                       seed=0, tracer=tracer)
    return result, tracer


def test_repeated_runs_are_byte_identical():
    result_a, tracer_a = _traced_run()
    result_b, tracer_b = _traced_run()

    summary_a = json.dumps(result_a.metrics.summary(), sort_keys=True)
    summary_b = json.dumps(result_b.metrics.summary(), sort_keys=True)
    assert summary_a == summary_b

    stream_a = "\n".join(json.dumps(e, sort_keys=True)
                         for e in tracer_a.events)
    stream_b = "\n".join(json.dumps(e, sort_keys=True)
                         for e in tracer_b.events)
    assert stream_a == stream_b

    assert json.dumps(tracer_a.utilization.snapshot(), sort_keys=True) == \
        json.dumps(tracer_b.utilization.snapshot(), sort_keys=True)


def test_exports_are_byte_identical(tmp_path):
    _, tracer_a = _traced_run()
    _, tracer_b = _traced_run()
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    tracer_a.export(str(path_a))
    tracer_b.export(str(path_b))
    assert path_a.read_bytes() == path_b.read_bytes()


def test_seed_changes_the_run():
    result_a = run_chain(presets.tiny(4), strategies.RCMP, failures="2",
                         seed=0)
    result_b = run_chain(presets.tiny(4), strategies.RCMP, failures="2",
                         seed=7)
    assert result_a.completed and result_b.completed
    # at minimum the failure injection point differs with the seed
    assert (result_a.metrics.summary() != result_b.metrics.summary()
            or result_a.killed_nodes != result_b.killed_nodes)
