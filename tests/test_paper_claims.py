"""Integration tests pinning the paper's headline claims at CI scale.

Each test corresponds to a sentence from the paper's abstract/intro; these
run on tiny clusters in seconds so CI guards the claims, while the
benchmark suite re-verifies them at paper scale.
"""

import pytest

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


@pytest.fixture(scope="module")
def chain():
    return build_chain(n_jobs=4, per_node_input=512 * MB,
                       block_size=64 * MB)


@pytest.fixture(scope="module")
def runs(chain):
    """All strategy runs this module needs, computed once."""
    out = {}
    for strategy in (strategies.RCMP, strategies.RCMP_NOSPLIT,
                     strategies.REPL2, strategies.REPL3,
                     strategies.OPTIMISTIC):
        for failures in (None, "2", "4"):
            out[(strategy.name, failures)] = run_chain(
                presets.tiny(6), strategy, chain=chain, failures=failures)
    return out


def test_claim_replication_tax_on_every_run(runs):
    """'data replication is 30%-100% worse during failure-free periods'"""
    rcmp = runs[("RCMP", None)].total_runtime
    repl2 = runs[("HADOOP REPL-2", None)].total_runtime
    repl3 = runs[("HADOOP REPL-3", None)].total_runtime
    assert 1.2 <= repl2 / rcmp
    assert repl2 / rcmp < repl3 / rcmp <= 2.2


def test_claim_rcmp_comparable_or_better_under_failure(runs):
    """'by efficiently performing recomputations, RCMP is comparable or
    better even under ... data loss events'"""
    for failures in ("2", "4"):
        rcmp = runs[("RCMP", failures)].total_runtime
        repl3 = runs[("HADOOP REPL-3", failures)].total_runtime
        assert rcmp <= repl3 * 1.15, failures


def test_claim_minimum_recomputation(runs):
    """'recomputes only the minimum number of tasks necessary': a
    recomputation run re-executes ~1/N of the mappers."""
    result = runs[("RCMP", "4")]
    n_nodes = 6
    for job in result.metrics.jobs_of_kind("recompute"):
        executed = len(job.task_durations("map"))
        # the full job has 8 blocks/node * 6 nodes = 48 mappers; only the
        # dead node's ~1/6 are re-executed (plus Fig. 5 invalidations)
        assert executed <= 48 / n_nodes * 2, job.name


def test_claim_splitting_improves_recomputation(runs):
    """'RCMP handles both by switching to a finer-grained task scheduling
    granularity for recomputations'"""
    split = runs[("RCMP", "4")]
    nosplit = runs[("RCMP NO-SPLIT", "4")]
    s_rec = split.metrics.job_durations("recompute").mean()
    n_rec = nosplit.metrics.job_durations("recompute").mean()
    assert s_rec < n_rec


def test_claim_recomputation_cascades_to_regenerate(runs):
    """'cascading job recomputations may be required for recovery' — and
    RCMP performs exactly the prior-job cascade."""
    result = runs[("RCMP", "4")]
    recomputed = [j.logical_index for j in
                  result.metrics.jobs_of_kind("recompute")]
    assert recomputed == [1, 2, 3]


def test_claim_optimistic_restarts_everything(runs):
    """The no-resilience strawman pays the full restart."""
    result = runs[("OPTIMISTIC", "4")]
    assert result.completed
    logical = [j.logical_index for j in result.metrics.jobs]
    assert logical == [1, 2, 3, 4, 1, 2, 3, 4]


def test_claim_any_number_of_failures():
    """'RCMP can recover from any number of failures' (vs F+1 replicas)."""
    chain = build_chain(n_jobs=3, per_node_input=256 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(8), strategies.RCMP, chain=chain,
                       failures=[(2, 15.0), (4, 15.0), (6, 15.0)])
    assert result.completed
    assert len(result.metrics.failures) == 3
    assert len(set(result.killed_nodes)) == 3
