"""End-to-end tests of the chain middleware under every strategy."""

import dataclasses

import pytest

from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def small_chain(n_jobs=3):
    return build_chain(n_jobs=n_jobs, per_node_input=256 * MB,
                       block_size=64 * MB)


def run(strategy, failures=None, n_jobs=3, n_nodes=4, seed=0, **kw):
    return run_chain(presets.tiny(n_nodes), strategy,
                     chain=small_chain(n_jobs), failures=failures,
                     seed=seed, **kw)


# ------------------------------------------------------------ failure-free
def test_all_strategies_complete_without_failure():
    for strat in (strategies.RCMP, strategies.RCMP_NOSPLIT,
                  strategies.REPL2, strategies.REPL3,
                  strategies.OPTIMISTIC, strategies.HYBRID):
        result = run(strat, n_jobs=2)
        assert result.completed, strat.name
        assert result.jobs_started == 2


def test_replication_ordering_failure_free():
    """The paper's headline: REPL-2 and REPL-3 pay on every run (§V-B)."""
    t_rcmp = run(strategies.RCMP).total_runtime
    t_r2 = run(strategies.REPL2).total_runtime
    t_r3 = run(strategies.REPL3).total_runtime
    t_opt = run(strategies.OPTIMISTIC).total_runtime
    assert t_rcmp < t_r2 < t_r3
    assert t_opt == pytest.approx(t_rcmp, rel=0.02)  # both unreplicated


def test_deterministic_given_seed():
    a = run(strategies.RCMP, failures="2", seed=42)
    b = run(strategies.RCMP, failures="2", seed=42)
    assert a.total_runtime == b.total_runtime
    assert a.killed_nodes == b.killed_nodes


# -------------------------------------------------------------- RCMP single
def test_rcmp_recovers_single_failure_with_recomputation():
    result = run(strategies.RCMP, failures="2")
    assert result.completed
    # failure at job 2 -> recompute job 1, rerun job 2, then job 3:
    # ordinals 1,2(aborted),3(recomp),4(rerun),5 = 5 started jobs
    assert result.jobs_started == 5
    kinds = [j.kind for j in result.metrics.jobs]
    assert kinds == ["initial", "initial", "recompute", "rerun", "initial"]
    outcomes = [j.outcome for j in result.metrics.jobs]
    assert outcomes == ["done", "aborted", "done", "done", "done"]


def test_rcmp_late_failure_recomputes_all_prior_jobs():
    result = run(strategies.RCMP, failures="3")
    assert result.completed
    recomps = result.metrics.jobs_of_kind("recompute")
    assert len(recomps) == 2  # jobs 1 and 2
    assert [j.logical_index for j in recomps] == [1, 2]


def test_rcmp_recomputation_cheaper_than_initial_run():
    """Persisted-output reuse: a recomputation run moves ~1/N of the data."""
    result = run(strategies.RCMP, failures="3", n_nodes=4)
    initial = result.metrics.job_durations("initial").mean()
    recomp = result.metrics.job_durations("recompute").mean()
    assert recomp < initial


def test_rcmp_split_beats_nosplit_under_late_failure():
    t_split = run(strategies.RCMP, failures="3", n_nodes=6,
                  n_jobs=4).total_runtime
    t_nosplit = run(strategies.RCMP_NOSPLIT, failures="3", n_nodes=6,
                    n_jobs=4).total_runtime
    assert t_split < t_nosplit


# ------------------------------------------------------------- double/nested
@pytest.mark.parametrize("spec", ["2,2", "2,4", "3,5", "3,6"])
def test_rcmp_survives_double_failures(spec):
    result = run(strategies.RCMP, failures=spec, n_nodes=5)
    assert result.completed
    assert len(result.metrics.failures) == 2
    assert len(set(result.killed_nodes)) == 2


def test_repl3_survives_double_failure():
    result = run(strategies.REPL3, failures="2,3", n_nodes=5)
    assert result.completed
    assert result.jobs_started == 3  # replication absorbs both in-job


def test_repl2_can_fail_under_double_failure():
    """REPL-2 cannot protect against all double failures (paper §V-B)."""
    failed = 0
    for seed in range(6):
        result = run(strategies.REPL2, failures="2,2", n_nodes=4, seed=seed)
        if not result.completed:
            failed += 1
            assert result.failure_reason
    assert failed > 0


# ---------------------------------------------------------------- OPTIMISTIC
def test_optimistic_restarts_from_scratch():
    result = run(strategies.OPTIMISTIC, failures="2")
    assert result.completed
    # 2 jobs before the failure + full 3-job restart
    assert result.jobs_started == 5
    kinds = [j.kind for j in result.metrics.jobs]
    assert kinds.count("recompute") == 0
    logical = [j.logical_index for j in result.metrics.jobs]
    assert logical == [1, 2, 1, 2, 3]


def test_optimistic_much_worse_when_failure_is_late():
    t_early = run(strategies.OPTIMISTIC, failures="2",
                  n_jobs=4).total_runtime
    t_late = run(strategies.OPTIMISTIC, failures="4", n_jobs=4).total_runtime
    assert t_late > t_early


# ------------------------------------------------------------------- hybrid
def test_hybrid_bounds_cascade_at_replication_point():
    hybrid = strategies.rcmp(hybrid_interval=2)
    plain = run(strategies.RCMP, failures="4", n_jobs=4, n_nodes=5)
    bounded = run(hybrid, failures="4", n_jobs=4, n_nodes=5)
    assert plain.completed and bounded.completed
    # plain recomputes jobs 1-3; hybrid only job 3 (job 2 is replicated)
    assert len(bounded.metrics.jobs_of_kind("recompute")) < \
        len(plain.metrics.jobs_of_kind("recompute"))


def test_hybrid_reclaim_frees_persisted_storage():
    base = strategies.rcmp(hybrid_interval=2)
    reclaiming = dataclasses.replace(base, hybrid_reclaim=True)
    r_keep = run(base, n_jobs=4, n_nodes=5)
    r_free = run(reclaiming, n_jobs=4, n_nodes=5)
    assert r_free.persisted_bytes < r_keep.persisted_bytes


# ------------------------------------------------------------ bookkeeping
def test_job_ordinals_match_paper_numbering():
    """Fig. 7 case c: failure at job 7 of 7 -> 14 jobs total."""
    result = run(strategies.RCMP, failures="7", n_jobs=7, n_nodes=4)
    assert result.completed
    assert result.jobs_started == 14
    assert [j.ordinal for j in result.metrics.jobs] == list(range(1, 15))


def test_failure_during_job1_reruns_it_without_cascade():
    """Job 1's input is triple-replicated; no completed job data exists,
    so RCMP just restarts job 1."""
    result = run(strategies.RCMP, failures="1")
    assert result.completed
    assert len(result.metrics.jobs_of_kind("recompute")) == 0
    kinds = [j.kind for j in result.metrics.jobs]
    assert kinds[0] == "initial" and kinds[1] == "rerun"


def test_spread_output_strategy_completes():
    result = run(strategies.RCMP_SPREAD, failures="3", n_nodes=5)
    assert result.completed
