"""Tests for the pipelined shuffle data plane.

Fast tests cover the pieces in isolation: server-side split filtering
(property-checked against the client-side filter), persistent
``PeerPool`` connections (reuse, reconnect after a peer restart, dead
peers resolving to :class:`FetchError`), the worker's parallel fetch
merge, the once-per-epoch ports broadcast, and the `_run_tasks`
stale-message regressions.  The ``slow`` tests re-prove checksum
neutrality end to end: multi-slot workers and parallel fetches must
reproduce the in-process reference byte-for-byte under kills, and
server-side filtering must actually shrink the recompute shuffle.
"""

import multiprocessing
import socket
import time
from dataclasses import replace

import pytest

from repro.localexec import LocalJobConfig
from repro.localexec.records import generate_records, split_of
from repro.runtime import transport
from repro.runtime.coordinator import Coordinator, RuntimeConfig, _Link
from repro.runtime.storage import (
    NodeStore,
    decode_records,
    encode_records,
    filter_split,
)
from repro.runtime.transport import (
    FetchError,
    PeerPool,
    ShuffleServer,
    serve_request,
)
from repro.runtime.worker import _Worker

from tests.test_runtime_process import (
    CHAIN,
    KillAt,
    KillPlan,
    reference_checksum,
    run_process_chain,
)


# ------------------------------------------------------- split filtering
def test_filter_split_matches_client_side_filter():
    """Property check: the raw-frame server-side filter returns exactly
    the bytes a client-side decode/filter/encode round trip would."""
    for seed in range(4):
        records = generate_records(200, seed=seed, value_size=5 + seed)
        data = encode_records(records)
        for n_splits in (1, 2, 3, 5, 8):
            reassembled = []
            for split in range(n_splits):
                expected = encode_records(
                    [r for r in records
                     if split_of(r.key, n_splits) == split])
                got = filter_split(data, split, n_splits)
                assert got == expected
                reassembled.extend(decode_records(got))
            assert sorted(reassembled) == sorted(records)


def test_filter_split_rejects_truncated_data():
    data = encode_records(generate_records(8, seed=0))
    with pytest.raises(ValueError):
        filter_split(data[:-1], 0, 2)


def test_serve_request_filters_maps_server_side(tmp_path):
    """A ``maps`` request with split/n_splits ships the filtered slice
    concatenation; without them it ships everything."""
    store = NodeStore(tmp_path, 0)
    r1 = generate_records(40, seed=1)
    r2 = generate_records(40, seed=2)
    store.write_map_output(1, 0, 0, {0: r1})
    store.write_map_output(1, 1, 0, {0: r2})
    base = {"kind": "maps", "job": 1, "tasks": [0, 1], "partition": 0}
    full = serve_request(store, base)
    assert full == encode_records(r1) + encode_records(r2)
    for split in range(2):
        filtered = serve_request(store, {**base, "split": split,
                                         "n_splits": 2})
        assert filtered == (filter_split(encode_records(r1), split, 2)
                            + filter_split(encode_records(r2), split, 2))


# ------------------------------------------------- persistent connections
def _piece_store(tmp_path, node=0):
    store = NodeStore(tmp_path, node)
    records = generate_records(24, seed=7)
    store.write_piece(1, 0, 0, 1, records)
    return store, encode_records(records)


def test_peer_pool_reuses_one_connection(tmp_path):
    store, payload = _piece_store(tmp_path)
    server = ShuffleServer(store, timeout=5.0)
    pool = PeerPool(timeout=2.0)
    try:
        for _ in range(5):
            assert pool.fetch_piece(server.port, 1, 0, 0, 1) == payload
        time.sleep(0.05)  # let any surplus connections register
        assert server.connections_accepted == 1
    finally:
        pool.close()
        server.close()


def test_peer_pool_reconnects_after_peer_restart(tmp_path):
    """A worker that outlives its peer's restart keeps fetching: the
    pooled connection dies with the old server and is transparently
    rebuilt against the new one on the same port."""
    store, payload = _piece_store(tmp_path)
    server = ShuffleServer(store, timeout=5.0)
    port = server.port
    pool = PeerPool(timeout=2.0)
    try:
        assert pool.fetch_piece(port, 1, 0, 0, 1) == payload
        server.close()
        server = ShuffleServer(store, timeout=5.0, port=port)
        assert pool.fetch_piece(port, 1, 0, 0, 1) == payload
        assert server.connections_accepted == 1
    finally:
        pool.close()
        server.close()


def test_fetch_from_dead_peer_raises_fetch_error():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # nobody listens here any more
    pool = PeerPool(timeout=0.3, retries=2, backoff=0.01)
    try:
        with pytest.raises(FetchError):
            pool.fetch_piece(port, 1, 0, 0, 1)
    finally:
        pool.close()


def test_non_persistent_pool_opens_connection_per_request(tmp_path):
    store, payload = _piece_store(tmp_path)
    server = ShuffleServer(store, timeout=5.0)
    pool = PeerPool(timeout=2.0, persistent=False)
    try:
        for _ in range(3):
            assert pool.fetch_piece(server.port, 1, 0, 0, 1) == payload
        deadline = time.monotonic() + 2.0
        while (server.connections_accepted < 3
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert server.connections_accepted == 3
    finally:
        pool.close()
        server.close()


# ----------------------------------------------------- parallel fetching
class _EventSink:
    def __init__(self):
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)


def _make_worker(tmp_path, node=99, **options):
    store = NodeStore(tmp_path, node)
    opts = {"fetch_timeout": 0.3, **options}
    return _Worker(node, store, _EventSink(), seed=0, records_per_node=8,
                   value_size=8, options=opts)


def test_fetch_merge_lands_all_sources(tmp_path):
    """Concurrent fetches from several source nodes merge to the same
    bytes a serial loop would collect."""
    servers, expected = [], {}
    for node in (0, 1, 2):
        store = NodeStore(tmp_path, node)
        records = generate_records(30, seed=node)
        store.write_map_output(1, node, node, {0: records})
        servers.append(ShuffleServer(store, timeout=5.0))
        expected[node] = encode_records(records)
    ports = {n: s.port for n, s in zip((0, 1, 2), servers)}
    worker = _make_worker(tmp_path, fetch_parallelism=3)
    landed = {}
    try:
        requests = [(n, {"kind": "maps", "job": 1, "tasks": [n],
                         "partition": 0}) for n in (0, 1, 2)]
        total = worker._fetch_merge(requests, ports, landed.__setitem__)
        assert landed == expected
        assert total == sum(len(v) for v in expected.values())
    finally:
        worker.close()
        for server in servers:
            server.close()


def test_fetch_merge_dead_source_raises_without_hanging(tmp_path):
    """One dead source among live ones: the live responses land, the
    dead one surfaces as FetchError once every fetcher settles — the
    task fails cleanly instead of deadlocking mid-parallel-fetch."""
    live_store = NodeStore(tmp_path, 0)
    live_store.write_map_output(1, 0, 0, {0: generate_records(10, seed=0)})
    live = ShuffleServer(live_store, timeout=5.0)
    dead = socket.socket()
    dead.bind(("127.0.0.1", 0))
    dead_port = dead.getsockname()[1]
    dead.close()
    ports = {0: live.port, 1: dead_port}
    worker = _make_worker(tmp_path, fetch_parallelism=2)
    landed = {}
    try:
        requests = [(n, {"kind": "maps", "job": 1, "tasks": [0],
                         "partition": 0}) for n in (0, 1)]
        t0 = time.monotonic()
        with pytest.raises(FetchError):
            worker._fetch_merge(requests, ports, landed.__setitem__)
        assert time.monotonic() - t0 < 5.0
        assert 0 in landed and 1 not in landed
    finally:
        worker.close()
        live.close()


# ------------------------------------------- coordinator dispatch plumbing
class _FakeProc:
    def is_alive(self):
        return True


def _fake_linked_coordinator(tmp_path, config=None):
    """A coordinator wired to an in-test pipe pair instead of a forked
    worker, so dispatch-loop behaviour is testable deterministically."""
    config = config or RuntimeConfig(n_nodes=1, chain=CHAIN)
    coord = Coordinator(config, tmp_path / "cluster")
    cmd_recv, cmd_send = multiprocessing.Pipe(duplex=False)
    evt_recv, evt_send = multiprocessing.Pipe(duplex=False)
    coord._links[0] = _Link(0, _FakeProc(), cmd_send, evt_recv, pid=4242,
                            port=1, last_seen=time.monotonic())
    coord.alive = {0}
    return coord, cmd_recv, evt_send


def test_stale_message_from_unknown_link_is_skipped(tmp_path):
    """Regression: a stale-epoch dropped/job-dropped/reclaimed message
    naming a node whose link is gone must be discarded by the epoch
    guard, not KeyError on the link lookup."""
    coord, cmd_recv, evt_send = _fake_linked_coordinator(tmp_path)
    coord.epoch = 3
    for stale in (("dropped", 9, 2, None, 1, 0),
                  ("job-dropped", 9, 2, None, 1, 128),
                  ("reclaimed", 9, 2, None, 1, 128)):
        evt_send.send(stale)
    evt_send.send(("dropped", 0, 3, None, 1, 0))  # the real completion
    coord._run_tasks({("drop", 1, 0): (0, {"op": "drop", "job": 1,
                                           "task": 0})}, phase="test")
    # the command pipe saw the ports broadcast followed by the drop
    ops = [cmd_recv.recv()["op"] for _ in range(2)]
    assert ops == ["ports", "drop"]


def test_ports_broadcast_once_per_epoch(tmp_path):
    coord, cmd_recv, evt_send = _fake_linked_coordinator(tmp_path)
    for task in (0, 1):
        evt_send.send(("dropped", 0, 0, None, 1, task))
        coord._run_tasks({("drop", 1, task): (0, {"op": "drop", "job": 1,
                                                  "task": task})},
                         phase="test")
    cmds = [cmd_recv.recv() for _ in range(3)]
    assert [c["op"] for c in cmds] == ["ports", "drop", "drop"]
    assert cmds[0]["ports"] == {0: 1}
    # a death bumps the epoch: the next dispatch re-broadcasts
    coord.epoch += 1
    evt_send.send(("dropped", 0, 1, None, 1, 2))
    coord._run_tasks({("drop", 1, 2): (0, {"op": "drop", "job": 1,
                                           "task": 2})}, phase="test")
    assert [cmd_recv.recv()["op"] for _ in range(2)] == ["ports", "drop"]


def test_config_validates_data_plane_knobs():
    with pytest.raises(ValueError):
        RuntimeConfig(task_slots=0)
    with pytest.raises(ValueError):
        RuntimeConfig(task_slots="many")
    with pytest.raises(ValueError):
        RuntimeConfig(fetch_parallelism=0)
    with pytest.raises(ValueError):
        RuntimeConfig(fetch_timeout=0.0)
    with pytest.raises(ValueError):  # a fetch may not eat the io budget
        RuntimeConfig(fetch_timeout=30.0, io_timeout=30.0)
    assert RuntimeConfig(task_slots="auto").resolved_task_slots >= 1
    assert RuntimeConfig(task_slots=3).resolved_task_slots == 3
    opts = RuntimeConfig(io_timeout=12.0, fetch_timeout=2.0) \
        .worker_options()
    assert opts["server_timeout"] == 12.0
    assert opts["fetch_timeout"] == 2.0


# --------------------------------------------------- end-to-end neutrality
@pytest.mark.slow
def test_kill_mid_parallel_fetch_recovers(tmp_path):
    """SIGKILL one source while multi-slot reducers are parallel-fetching
    its map outputs: the fetch failures surface as task-failed, the death
    is declared, and recovery reproduces the reference checksum — never a
    hang."""
    hooks = KillAt("reduce-dispatch", job=2, victims=[0])
    report = run_process_chain(tmp_path, hooks=hooks, task_slots=2,
                               fetch_parallelism=4)
    assert report.checksum == reference_checksum(CHAIN)
    assert [n for _, n in report.deaths] == [0]


@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["rcmp", "hybrid"])
@pytest.mark.parametrize("scenario", ["none", "single", "double"])
def test_multi_slot_matrix_parity(tmp_path, strategy, scenario):
    """The checksum matrix with 4 task slots per worker: concurrency in
    the data plane must not change a single byte of any strategy's
    recovered output."""
    triggers = {"none": [],
                "single": [("job-commit", 2, 1)],
                "double": [("job-commit", 1, 1),
                           ("job-commit", 2, 2)]}[scenario]
    hooks = KillPlan(*triggers) if triggers else None
    report = run_process_chain(tmp_path, hooks=hooks, strategy=strategy,
                               task_slots=4, fetch_parallelism=4)
    assert report.checksum == reference_checksum(CHAIN)
    assert sorted(n for _, n in report.deaths) == \
        sorted(v for _, _, v in triggers)


@pytest.mark.slow
def test_server_split_filter_shrinks_recompute_shuffle(tmp_path):
    """With a 2-way split recomputation, server-side filtering must ship
    roughly half the recompute-reduce bytes the unfiltered client-side
    path pulls — at identical output checksums."""
    chain = replace(CHAIN, records_per_node=96)
    totals = {}
    for filtered in (True, False):
        hooks = KillAt("job-commit", job=2, victims=[1])
        report = run_process_chain(tmp_path / str(filtered), chain=chain,
                                   hooks=hooks,
                                   server_split_filter=filtered)
        assert report.checksum == reference_checksum(chain)
        totals[filtered] = sum(
            n for phase, n in report.shuffle_bytes.items()
            if phase.startswith("recompute-reduce"))
    assert totals[False] > 0
    assert totals[True] <= totals[False] * 0.5 * 1.35


@pytest.mark.slow
def test_transport_timeouts_follow_io_timeout(tmp_path):
    """Satellite regression: the shuffle server/fetch timeouts come from
    RuntimeConfig, not hardcoded constants — a clean run under tight but
    valid budgets still reproduces the reference."""
    report = run_process_chain(tmp_path, io_timeout=20.0,
                               fetch_timeout=2.0)
    assert report.checksum == reference_checksum(CHAIN)


def test_worker_ignores_stale_epoch_commands(tmp_path):
    """A queued command from a cancelled epoch is skipped outright once
    a newer epoch has been seen — no store mutation, no event."""
    worker = _make_worker(tmp_path, node=0)
    try:
        worker.dispatch({"op": "ports", "epoch": 5, "ports": {}})
        worker.dispatch({"op": "drop-job", "job": 1, "epoch": 4})
        assert worker.evt.sent == []
        worker.dispatch({"op": "drop-job", "job": 1, "epoch": 5})
        assert [m[0] for m in worker.evt.sent] == ["job-dropped"]
    finally:
        worker.close()


def test_transport_module_fetch_is_one_shot(tmp_path):
    store, payload = _piece_store(tmp_path)
    server = ShuffleServer(store, timeout=5.0)
    try:
        assert transport.fetch_piece(server.port, 1, 0, 0, 1) == payload
    finally:
        server.close()
