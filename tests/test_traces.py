"""Tests for synthetic availability-trace generation (Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.traces import (
    STIC_TRACE,
    SUGAR_TRACE,
    TraceConfig,
    generate_trace,
)


def test_paper_calibrations():
    assert STIC_TRACE.n_nodes == 218
    assert SUGAR_TRACE.n_nodes == 121
    assert STIC_TRACE.failure_day_fraction == pytest.approx(0.17)
    assert SUGAR_TRACE.failure_day_fraction == pytest.approx(0.12)


def test_config_validation():
    with pytest.raises(ValueError):
        TraceConfig("x", 10, 100, failure_day_fraction=0.0)
    with pytest.raises(ValueError):
        TraceConfig("x", 10, 100, failure_day_fraction=0.5, geometric_p=0.0)
    with pytest.raises(ValueError):
        TraceConfig("x", 10, 100, failure_day_fraction=0.1,
                    outage_day_fraction=0.2)
    with pytest.raises(ValueError):
        TraceConfig("x", 0, 100, failure_day_fraction=0.1)


def test_trace_matches_calibration_within_noise():
    rng = np.random.default_rng(7)
    trace = generate_trace(STIC_TRACE, rng)
    assert trace.failure_day_fraction == pytest.approx(0.17, abs=0.03)
    assert len(trace.new_failures_per_day) == STIC_TRACE.n_days


def test_trace_determinism_with_seed():
    a = generate_trace(STIC_TRACE, np.random.default_rng(1))
    b = generate_trace(STIC_TRACE, np.random.default_rng(1))
    assert np.array_equal(a.new_failures_per_day, b.new_failures_per_day)


def test_counts_never_exceed_cluster_size():
    config = TraceConfig("small", n_nodes=8, n_days=2000,
                         failure_day_fraction=0.3, outage_day_fraction=0.05,
                         outage_max=100)
    trace = generate_trace(config, np.random.default_rng(3))
    assert trace.new_failures_per_day.max() <= 8


def test_cdf_shape():
    trace = generate_trace(STIC_TRACE, np.random.default_rng(5))
    x, f = trace.cdf()
    assert x[0] == 0
    assert f[-1] == pytest.approx(100.0)
    assert all(a <= b for a, b in zip(f, f[1:]))
    assert f[0] == pytest.approx((1 - trace.failure_day_fraction) * 100)


def test_percentile_days():
    trace = generate_trace(STIC_TRACE, np.random.default_rng(5))
    assert trace.percentile_days(50) == 0  # most days see no failures


@settings(max_examples=20, deadline=None)
@given(frac=st.floats(min_value=0.05, max_value=0.5),
       seed=st.integers(min_value=0, max_value=1000))
def test_property_failure_fraction_tracks_config(frac, seed):
    config = TraceConfig("p", n_nodes=100, n_days=4000,
                         failure_day_fraction=frac,
                         outage_day_fraction=min(0.004, frac / 2))
    trace = generate_trace(config, np.random.default_rng(seed))
    assert trace.failure_day_fraction == pytest.approx(frac, abs=0.05)
