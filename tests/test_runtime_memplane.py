"""Tests for the in-memory tiered data plane (`MemoryTier`, zero-copy
serving, same-worker handoff, shared-memory segments).

The unit tests pin the tier's cache discipline (write-through, LRU
spill, prefix invalidation) and the byte-identity of every serve path
with and without the tier; the property test drives a tiny budget
through randomized writes so entries spill constantly and proves
spill→reload→serve equals never-spilled.  The slow e2e tests kill a
node whose hot pieces lived in RAM and check ordinary RCMP recompute
restores the exact reference checksum — a SIGKILL may only lose what
the planner already knows how to recompute.
"""

import random

import pytest

from repro.localexec import LocalJobConfig
from repro.localexec.records import Record, generate_records
from repro.runtime import shm
from repro.runtime.coordinator import RunReport, RuntimeConfig
from repro.runtime.storage import (
    MemoryTier,
    NodeStore,
    decode_records,
    encode_records,
    filter_split,
    filter_split_spans,
)
from repro.runtime.transport import (
    PeerPool,
    ShuffleServer,
    serve_request,
    serve_request_spans,
)

from tests.test_runtime_process import (  # noqa: F401 - shared harness
    CHAIN,
    KillAt,
    reference_checksum,
    run_process_chain,
)


# ------------------------------------------------------------- MemoryTier
def test_memory_tier_write_through_and_hit(tmp_path):
    store = NodeStore(tmp_path, 0, memory=MemoryTier(1 << 20))
    records = [Record(7, b"x" * 10), Record(9, b"y" * 4)]
    store.write_piece(2, 1, 0, 1, records)
    path = store.piece_path(2, 1, 0, 1)
    assert path.read_bytes() == encode_records(records)  # disk tier first
    # the read is served from RAM: deleting the file behind the tier's
    # back proves no disk access happens on a hit
    path.unlink()
    assert decode_records(store.read_piece(2, 1, 0, 1)) == records
    assert store.memory.hits >= 1


def test_memory_tier_lru_spill_and_reload(tmp_path):
    tier = MemoryTier(100)
    store = NodeStore(tmp_path, 0, memory=tier)
    a = [Record(1, b"a" * 30)]  # 42 encoded bytes each (12B header)
    b = [Record(2, b"b" * 30)]
    c = [Record(3, b"c" * 30)]
    store.write_piece(1, 0, 0, 1, a)
    store.write_piece(1, 1, 0, 1, b)
    store.write_piece(1, 2, 0, 1, c)  # over budget: LRU (a) spills
    assert tier.spills >= 1
    assert tier.bytes <= tier.budget
    # the spilled piece reloads from its durable file, byte-identical
    assert decode_records(store.read_piece(1, 0, 0, 1)) == a


def test_memory_tier_oversized_object_not_admitted():
    tier = MemoryTier(10)
    tier.put("k", b"z" * 64)
    assert tier.get("k") is None
    assert tier.bytes == 0


def test_memory_tier_invalidate_prefix():
    tier = MemoryTier(1 << 20)
    tier.put("/root/map/job1/a", b"1")
    tier.put("/root/map/job1/b", b"22")
    tier.put("/root/map/job2/a", b"333")
    assert tier.invalidate_prefix("/root/map/job1") == 2
    assert tier.get("/root/map/job1/a") is None
    assert tier.get("/root/map/job2/a") == b"333"
    assert tier.bytes == 3


def test_drops_and_sweeps_evict_memory_entries(tmp_path):
    tier = MemoryTier(1 << 20)
    store = NodeStore(tmp_path, 0, memory=tier)
    store.write_map_output(1, 0, None, {0: [Record(5, b"v")]})
    store.write_piece(1, 0, 0, 1, [Record(5, b"w")])
    store.drop_map_output(1, 0)
    assert tier.get(str(store.map_slice_path(1, 0, 0))) is None
    store.drop_job(1)
    assert tier.get(str(store.piece_path(1, 0, 0, 1))) is None
    assert tier.bytes == 0


def test_memory_tier_shared_across_chain_namespaces(tmp_path):
    tier = MemoryTier(1 << 20)
    base = NodeStore(tmp_path, 0, memory=tier)
    chained = base.for_chain("c1")
    assert chained.memory is tier
    chained.write_piece(1, 0, 0, 1, [Record(1, b"v")])
    base.write_piece(1, 0, 0, 1, [Record(1, b"other")])
    # path-keyed entries never collide across namespaces
    assert decode_records(chained.read_piece(1, 0, 0, 1)) == \
        [Record(1, b"v")]
    assert decode_records(base.read_piece(1, 0, 0, 1)) == \
        [Record(1, b"other")]


def test_spill_reload_serve_property(tmp_path):
    """Property: under a tiny budget forcing constant spill, every read
    path returns bytes identical to a never-spilled (unbounded) store
    and to a tier-less store."""
    rng = random.Random(42)
    tiny = NodeStore(tmp_path / "tiny", 0, memory=MemoryTier(256))
    big = NodeStore(tmp_path / "big", 0, memory=MemoryTier(1 << 24))
    bare = NodeStore(tmp_path / "bare", 0)
    writes = []
    for i in range(40):
        records = [Record(rng.getrandbits(48), bytes([rng.getrandbits(8)])
                          * rng.randrange(0, 40))
                   for _ in range(rng.randrange(1, 8))]
        if rng.random() < 0.5:
            job, task, part = rng.randrange(1, 3), i, rng.randrange(2)
            for s in (tiny, big, bare):
                s.write_map_output(job, task, None, {part: records})
            writes.append(("map", job, task, part))
        else:
            job, part = rng.randrange(1, 3), rng.randrange(2)
            for s in (tiny, big, bare):
                s.write_piece(job, part, 0, 1, records)
            writes.append(("piece", job, part))
    assert tiny.memory.spills > 0, "budget not tiny enough to spill"
    for access in rng.sample(writes, len(writes)):
        if access[0] == "map":
            _, job, task, part = access
            got = [s.read_map_slice(job, task, part)
                   for s in (tiny, big, bare)]
            request = {"kind": "maps", "job": job, "tasks": [task],
                       "partition": part, "split": 0, "n_splits": 2}
        else:
            _, job, part = access
            got = [s.read_piece(job, part, 0, 1) for s in (tiny, big, bare)]
            request = {"kind": "piece", "job": job, "partition": part,
                       "split": 0, "n_splits": 1}
        assert got[0] == got[1] == got[2]
        served = [serve_request(s, request) for s in (tiny, big, bare)]
        assert served[0] == served[1] == served[2]


# ------------------------------------------------- zero-copy codec/serving
def test_encode_records_matches_reference_join():
    rng = random.Random(7)
    records = [Record(rng.getrandbits(60),
                      bytes(rng.getrandbits(8) for _ in
                            range(rng.randrange(0, 50))))
               for _ in range(200)]
    reference = b"".join(
        int.to_bytes(r.key, 8, "big") + int.to_bytes(len(r.value), 4, "big")
        + r.value for r in records)
    assert encode_records(records) == reference
    assert encode_records([]) == b""
    assert encode_records(iter(records)) == reference  # any iterable


def test_filter_split_spans_join_equals_filter_split():
    records = [Record(k, bytes([k % 251]) * (k % 17)) for k in range(300)]
    data = encode_records(records)
    for n_splits in (1, 2, 3):
        whole = b""
        for split in range(n_splits):
            spans = filter_split_spans(data, split, n_splits)
            joined = b"".join(spans)
            assert joined == filter_split(data, split, n_splits)
            whole += joined
        assert sorted(decode_records(whole)) == sorted(records)


def test_filter_split_accepts_memoryview():
    records = [Record(k, b"v" * k) for k in range(20)]
    data = encode_records(records)
    assert filter_split(memoryview(data), 1, 2) == filter_split(data, 1, 2)


def test_serve_request_spans_join_equals_serve_request(tmp_path):
    store = NodeStore(tmp_path, 0, memory=MemoryTier(1 << 20))
    for task in range(3):
        store.write_map_output(
            1, task, None, {0: [Record(task * 10 + i, b"m" * i)
                                for i in range(6)]})
    for request in (
            {"kind": "maps", "job": 1, "tasks": [0, 1, 2], "partition": 0},
            {"kind": "maps", "job": 1, "tasks": [0, 1, 2], "partition": 0,
             "split": 1, "n_splits": 2},
            {"kind": "maps", "job": 1, "tasks": [5], "partition": 0}):
        spans = serve_request_spans(store, request)
        assert b"".join(spans) == serve_request(store, request)


def test_shuffle_server_sendmsg_path_roundtrip(tmp_path):
    """The scatter-gather serve path must put byte-identical payloads on
    the wire, including many-span split responses."""
    store = NodeStore(tmp_path, 0, memory=MemoryTier(1 << 20))
    for task in range(4):
        store.write_map_output(
            2, task, None,
            {1: [Record(task * 100 + i, b"x" * (i % 23))
                 for i in range(50)]})
    server = ShuffleServer(store, timeout=5.0)
    pool = PeerPool(timeout=5.0)
    try:
        for request in (
                {"kind": "maps", "job": 2, "tasks": [0, 1, 2, 3],
                 "partition": 1},
                {"kind": "maps", "job": 2, "tasks": [0, 1, 2, 3],
                 "partition": 1, "split": 0, "n_splits": 3}):
            assert pool.fetch(server.port, request) == \
                serve_request(store, request)
    finally:
        pool.close()
        server.close()


def test_peer_pool_local_short_circuit_skips_socket(tmp_path):
    """A fetch addressed to the pool's own port resolves from the local
    store: the port below has no listener, so any socket attempt would
    raise FetchError."""
    store = NodeStore(tmp_path, 0, memory=MemoryTier(1 << 20))
    store.write_piece(1, 0, 0, 1, [Record(3, b"local")])
    pool = PeerPool(timeout=0.2, retries=1, local_port=1,
                    local_store=store)
    try:
        data = pool.fetch_piece(1, 1, 0, 0, 1)
        assert decode_records(data) == [Record(3, b"local")]
        assert pool.local_bytes == len(data)
    finally:
        pool.close()


def test_write_atomic_leaves_no_tmp_litter(tmp_path):
    store = NodeStore(tmp_path, 0)
    store.write_piece(1, 0, 0, 1, [Record(1, b"v")])
    leftovers = [p for p in (tmp_path / "node000").rglob("*.tmp")]
    assert leftovers == []


# ----------------------------------------------------------- accounting
def test_run_report_splits_tcp_and_local_totals():
    report = RunReport(checksum="x",
                       shuffle_bytes={"reduce-1": 100, "reduce-2": 50},
                       shuffle_bytes_local={"reduce-1": 30})
    assert report.total_shuffle_bytes_tcp == 150
    assert report.total_shuffle_bytes_local == 30
    assert report.total_shuffle_bytes == 180
    assert report.shuffle_bytes_tcp is report.shuffle_bytes
    payload = report.to_dict()
    assert payload["shuffle_bytes_local"] == {"reduce-1": 30}
    assert "local 30B" in report.render()


def test_config_validates_memory_budget():
    with pytest.raises(ValueError):
        RuntimeConfig(memory_budget=-1)
    with pytest.raises(ValueError):
        RuntimeConfig(memory_budget=1.5)
    assert RuntimeConfig(memory_budget=0).worker_options()[
        "memory_budget"] == 0
    opts = RuntimeConfig(memory_budget=1 << 20,
                         shared_memory=True).worker_options()
    assert opts["memory_budget"] == 1 << 20
    assert opts["shared_memory"] is True


# -------------------------------------------------------- shared memory
pytestmark_shm = pytest.mark.skipif(
    not (shm.HAVE_SHM and shm.SHM_DIR.is_dir()),
    reason="POSIX shared memory unavailable")


@pytestmark_shm
def test_shm_publish_attach_unpublish_roundtrip():
    pub = shm.SegmentPublisher("t1", 0, budget=1 << 16)
    identity = ("piece", None, 1, 0, 0, 1)
    data = b"shared-bytes" * 100
    assert pub.publish(identity, data)
    name = shm.segment_name("t1", 0, identity)
    try:
        assert shm.attach(name) == data
        pub.unpublish(identity)
        assert shm.attach(name) is None
    finally:
        pub.close()
        shm.sweep_prefix(shm.run_prefix("t1"))


@pytestmark_shm
def test_shm_budget_caps_publication():
    pub = shm.SegmentPublisher("t2", 0, budget=100)
    try:
        assert pub.publish(("piece", None, 1, 0, 0, 1), b"a" * 80)
        assert not pub.publish(("piece", None, 1, 1, 0, 1), b"b" * 80)
        assert pub.skipped == 1
    finally:
        pub.close()
        shm.sweep_prefix(shm.run_prefix("t2"))


@pytestmark_shm
def test_shm_sweep_prefix_scopes_to_node():
    pub0 = shm.SegmentPublisher("t3", 0, budget=1 << 16)
    pub1 = shm.SegmentPublisher("t3", 1, budget=1 << 16)
    identity = ("map", None, 1, 0, 0)
    try:
        pub0.publish(identity, b"node0")
        pub1.publish(identity, b"node1")
        assert shm.sweep_prefix(shm.node_prefix("t3", 0)) == 1
        assert shm.attach(shm.segment_name("t3", 0, identity)) is None
        assert shm.attach(shm.segment_name("t3", 1, identity)) == b"node1"
    finally:
        pub0.close()
        pub1.close()
        shm.sweep_prefix(shm.run_prefix("t3"))


# ------------------------------------------------------------ slow e2e
@pytest.mark.slow
def test_kill_node_with_hot_memory_pieces_recovers_exact(tmp_path):
    """Kill a node whose committed pieces were memory-hot (unbounded
    tier): its RAM dies with it, recompute from the surviving disk tier
    must restore the exact reference checksum."""
    hook = KillAt("job-start", 3, victims=[1])
    report = run_process_chain(tmp_path, hooks=hook,
                               memory_budget=1 << 24)
    assert report.checksum == reference_checksum(CHAIN)
    assert len(report.deaths) == 1


@pytest.mark.slow
def test_tiny_budget_constant_spill_kill_recovers_exact(tmp_path):
    """A 4 KiB budget spills essentially every write; recovery under
    constant spilling must stay byte-identical too."""
    hook = KillAt("job-start", 2, victims=[2])
    report = run_process_chain(tmp_path, hooks=hook, memory_budget=4096)
    assert report.checksum == reference_checksum(CHAIN)


@pytest.mark.slow
def test_memory_tier_off_matches_reference(tmp_path):
    report = run_process_chain(tmp_path, memory_budget=0)
    assert report.checksum == reference_checksum(CHAIN)
    assert report.total_shuffle_bytes_local > 0  # local reads counted


@pytest.mark.slow
def test_colocated_slots_shift_bytes_off_tcp(tmp_path):
    """The same logical chain on fewer nodes x more slots must move
    shuffle bytes from sockets to the local plane: strictly lower TCP,
    strictly higher local."""
    chain = LocalJobConfig(n_jobs=2, n_partitions=4, records_per_node=48,
                           records_per_block=16, seed=3)
    spread = run_process_chain(tmp_path / "spread", chain=chain,
                               n_nodes=4, task_slots=1)
    packed_chain = LocalJobConfig(n_jobs=2, n_partitions=4,
                                  records_per_node=96,
                                  records_per_block=16, seed=3)
    packed = run_process_chain(tmp_path / "packed", chain=packed_chain,
                               n_nodes=2, task_slots=2)
    assert packed.total_shuffle_bytes_tcp < spread.total_shuffle_bytes_tcp
    assert packed.total_shuffle_bytes_local > \
        spread.total_shuffle_bytes_local


@pytest.mark.slow
@pytestmark_shm
def test_shared_memory_run_recovers_and_goes_local(tmp_path):
    """With segment handoff on, a repl2 chain's replication copies
    attach instead of fetching; a kill still recovers byte-identically
    and no segment outlives the run."""
    hook = KillAt("job-start", 3, victims=[1])
    report = run_process_chain(tmp_path, hooks=hook, strategy="repl2",
                               shared_memory=True)
    assert report.checksum == reference_checksum(CHAIN)
    assert report.total_shuffle_bytes_local > 0
    assert list(shm.SHM_DIR.glob("rcmp*")) == []


@pytest.mark.slow
@pytestmark_shm
def test_shared_memory_cuts_tcp_bytes(tmp_path):
    baseline = run_process_chain(tmp_path / "tcp", strategy="repl2")
    shmrun = run_process_chain(tmp_path / "shm", strategy="repl2",
                               shared_memory=True)
    assert shmrun.checksum == baseline.checksum == reference_checksum(CHAIN)
    assert shmrun.total_shuffle_bytes_tcp < \
        baseline.total_shuffle_bytes_tcp


@pytest.mark.slow
def test_generate_records_inputs_do_not_hit_the_shuffle(tmp_path):
    """Job-1 inputs are regenerated, never shuffled: a 1-job chain's
    local counter only sees reduce-phase slices."""
    chain = LocalJobConfig(n_jobs=1, n_partitions=2, records_per_node=32,
                           records_per_block=16, seed=1)
    records = generate_records(4, seed=1000, value_size=32)
    assert len(records) == 4  # harness sanity
    report = run_process_chain(tmp_path, chain=chain, n_nodes=2)
    assert report.checksum == reference_checksum(chain, n_nodes=2)
    for phase in report.shuffle_bytes_local:
        assert "reduce" in phase or "replica" in phase
