"""Record-level correctness of recomputation (the paper's semantics).

The key property: after any failure pattern recovered via RCMP-style
recomputation — with or without reducer splitting — the chain's final
output is byte-for-byte identical to the failure-free run.  Includes a
direct construction of the paper's Fig. 5 hazard showing that the guard
(invalidating map outputs whose input partition was split) is *necessary*.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.localexec import (
    LocalCluster,
    LocalJobConfig,
    generate_records,
    map_udf,
    recover_and_finish,
    reduce_udf,
)
from repro.localexec.records import Record, byte_sum, partition_of, split_of
from repro.localexec.recovery import recompute_job


def reference_output(config, n_nodes=4):
    cluster = LocalCluster(n_nodes, config)
    cluster.run_chain()
    return cluster.final_output()


# ----------------------------------------------------------------- records
def test_generate_records_deterministic():
    a = generate_records(10, seed=3)
    b = generate_records(10, seed=3)
    c = generate_records(10, seed=4)
    assert a == b
    assert a != c


def test_map_udf_deterministic_and_key_randomizing():
    rec = Record(42, b"0123456789abcdef")
    out1 = map_udf(rec, job_index=2)
    out2 = map_udf(rec, job_index=2)
    assert out1 == out2
    assert map_udf(rec, job_index=3).key != out1.key  # per-job randomization
    # value embeds the byte-sum check
    checksum = int.from_bytes(out1.value[8:10], "big")
    assert checksum == byte_sum(rec.value) & 0xFFFF


def test_reduce_udf_order_independent():
    values = [b"aaa", b"bbb", b"ccc"]
    assert reduce_udf(7, values) == reduce_udf(7, list(reversed(values)))


def test_partitioner_and_split_hash_cover_everything():
    keys = [r.key for r in generate_records(200, seed=1)]
    partitions = {partition_of(k, 4) for k in keys}
    splits = {split_of(k, 3) for k in keys}
    assert partitions == {0, 1, 2, 3}
    assert splits == {0, 1, 2}


# ------------------------------------------------------------- happy path
def test_chain_runs_and_produces_all_partitions():
    config = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=32)
    cluster = LocalCluster(4, config)
    cluster.run_chain()
    output = cluster.final_output()
    assert sorted(output) == [0, 1, 2, 3]
    assert sum(len(v) for v in output.values()) > 0
    for job in range(1, 4):
        assert cluster.partition_coverage_ok(job)


def test_failure_free_runs_identical():
    config = LocalJobConfig(n_jobs=3, seed=5)
    assert reference_output(config) == reference_output(config)


# ------------------------------------------------ recomputation correctness
@pytest.mark.parametrize("split_ratio", [1, 2, 3])
@pytest.mark.parametrize("fail_after_job", [1, 2])
def test_recovery_reproduces_exact_output(split_ratio, fail_after_job):
    config = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                            split_ratio=split_ratio, seed=9)
    expected = reference_output(config)

    cluster = LocalCluster(4, config)
    for job in range(1, fail_after_job + 1):
        cluster.run_job(job)
    cluster.kill(1)
    recover_and_finish(cluster)
    assert cluster.final_output() == expected
    for job in range(1, config.n_jobs + 1):
        assert cluster.partition_coverage_ok(job)


def test_double_failure_recovery_exact():
    config = LocalJobConfig(n_jobs=4, n_partitions=4, records_per_node=32,
                            split_ratio=2, seed=2)
    expected = reference_output(config, n_nodes=5)
    cluster = LocalCluster(5, config)
    cluster.run_job(1)
    cluster.run_job(2)
    cluster.kill(0)
    recover_and_finish(cluster)
    # run_chain finished; now lose another node including recomputed data
    cluster2 = LocalCluster(5, config)
    cluster2.run_job(1)
    cluster2.run_job(2)
    cluster2.kill(0)
    # nested: second failure before recovery of the first
    cluster2.kill(2)
    recover_and_finish(cluster2)
    assert cluster.final_output() == expected
    assert cluster2.final_output() == expected


def test_recomputed_split_pieces_spread_over_nodes():
    config = LocalJobConfig(n_jobs=2, n_partitions=2, records_per_node=32,
                            split_ratio=3, seed=1)
    cluster = LocalCluster(4, config)
    cluster.run_job(1)
    victim = cluster.pieces[1][0][0].node
    cluster.kill(victim)
    recompute_job(cluster, 1)
    pieces = cluster.pieces[1][0]
    assert len(pieces) == 3
    assert len({p.node for p in pieces}) == 3
    assert cluster.partition_coverage_ok(1)


# ------------------------------------------------------------- Fig. 5 rule
def fig5_setup():
    """Partition 0 of job 1 stored on node 0; one of its job-2 consumer
    mappers runs non-locally on node 3 so its output survives node 0's
    death — exactly the paper's Fig. 5 configuration."""
    config = LocalJobConfig(n_jobs=2, n_partitions=2, records_per_node=48,
                            records_per_block=8, split_ratio=2, seed=13)

    moved = {}

    def assignment(job, task_id, storage_node):
        if job == 2 and storage_node == 0 and not moved.get("done"):
            moved["done"] = True
            return 3
        return storage_node

    cluster = LocalCluster(4, config, map_assignment=assignment)
    return cluster


def test_fig5_guard_gives_correct_output():
    expected = reference_output(
        LocalJobConfig(n_jobs=2, n_partitions=2, records_per_node=48,
                       records_per_block=8, split_ratio=2, seed=13))
    cluster = fig5_setup()
    cluster.run_job(1)
    cluster.run_job(2)
    # sanity: some job-2 map output derived from node 0's data is non-local
    survivors = [m for m in cluster.map_outputs.values()
                 if m.job == 2 and m.node == 3]
    assert survivors
    cluster.kill(0)
    recover_and_finish(cluster, fig5_guard=True)
    assert cluster.final_output() == expected


def test_fig5_hazard_without_guard_corrupts_output():
    """Reusing a surviving map output whose input partition was split
    regenerates some keys twice and loses others (paper Fig. 5)."""
    expected = reference_output(
        LocalJobConfig(n_jobs=2, n_partitions=2, records_per_node=48,
                       records_per_block=8, split_ratio=2, seed=13))
    cluster = fig5_setup()
    cluster.run_job(1)
    cluster.run_job(2)
    # the hazard requires a surviving consumer whose siblings re-run
    assert any(m.job == 2 and m.node == 3
               for m in cluster.map_outputs.values())
    cluster.kill(0)
    recover_and_finish(cluster, fig5_guard=False)
    assert cluster.final_output() != expected


# -------------------------------------------------------------- properties
@settings(max_examples=20, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=6),
    n_partitions=st.integers(min_value=1, max_value=6),
    split_ratio=st.integers(min_value=1, max_value=4),
    victim_seed=st.integers(min_value=0, max_value=10_000),
    fail_after=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_recovery_always_exact(n_nodes, n_partitions, split_ratio,
                                        victim_seed, fail_after, seed):
    """For arbitrary cluster/partition/split shapes and any victim node,
    recovery reproduces the failure-free output exactly."""
    config = LocalJobConfig(n_jobs=3, n_partitions=n_partitions,
                            records_per_node=24, records_per_block=8,
                            split_ratio=split_ratio, seed=seed)
    expected = reference_output(config, n_nodes=n_nodes)
    cluster = LocalCluster(n_nodes, config)
    fail_after = min(fail_after, config.n_jobs)
    for job in range(1, fail_after + 1):
        cluster.run_job(job)
    victim = victim_seed % n_nodes
    cluster.kill(victim)
    recover_and_finish(cluster)
    assert cluster.final_output() == expected


@settings(max_examples=15, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=2**31), min_size=1,
                  max_size=50),
    n_splits=st.integers(min_value=1, max_value=8),
)
def test_property_splits_partition_keys_exactly_once(keys, n_splits):
    """Splitting is a partition of the key set: every key to exactly one
    split (the correctness basis of §IV-B1)."""
    for key in keys:
        owners = [s for s in range(n_splits)
                  if split_of(key, n_splits) == s]
        assert len(owners) == 1
