"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Interrupt,
    ProcessCrashed,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(5.0)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [5.0]
    assert sim.now == 5.0


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        v = yield sim.timeout(1.0, value="payload")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent(results):
        value = yield sim.process(child())
        results.append(value)

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [42]


def test_fifo_order_same_timestamp():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_resumes_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter():
        v = yield ev
        seen.append((sim.now, v))

    def firer():
        yield sim.timeout(3.0)
        ev.succeed("hello")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert seen == [(3.0, "hello")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_crashes_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("oops")

    sim.process(bad())
    with pytest.raises(ProcessCrashed):
        sim.run()


def test_allof_waits_for_all():
    sim = Simulator()
    times = []

    def parent():
        yield AllOf(sim, [sim.timeout(1.0), sim.timeout(5.0),
                          sim.timeout(3.0)])
        times.append(sim.now)

    sim.process(parent())
    sim.run()
    assert times == [5.0]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    times = []

    def parent():
        yield AllOf(sim, [])
        times.append(sim.now)

    sim.process(parent())
    sim.run()
    assert times == [0.0]


def test_anyof_fires_on_first():
    sim = Simulator()
    times = []

    def parent():
        yield AnyOf(sim, [sim.timeout(4.0), sim.timeout(2.0)])
        times.append(sim.now)

    sim.process(parent())
    sim.run()
    assert times == [2.0]


def test_allof_fails_fast_on_child_failure():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def parent():
        try:
            yield AllOf(sim, [sim.timeout(100.0), ev])
        except RuntimeError:
            caught.append(sim.now)

    def firer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("child died"))

    sim.process(parent())
    sim.process(firer())
    sim.run()
    assert caught == [1.0]


def test_interrupt_wakes_process_with_cause():
    sim = Simulator()
    record = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            record.append((sim.now, intr.cause))

    def killer(proc):
        yield sim.timeout(7.0)
        proc.interrupt("node-3 failed")

    proc = sim.process(victim())
    sim.process(killer(proc))
    sim.run()
    assert record == [(7.0, "node-3 failed")]


def test_interrupt_invalidates_stale_wakeup():
    sim = Simulator()
    record = []

    def victim():
        try:
            yield sim.timeout(10.0)
        except Interrupt:
            yield sim.timeout(100.0)  # new wait; old timeout must not wake us
            record.append(sim.now)

    def killer(proc):
        yield sim.timeout(5.0)
        proc.interrupt()

    proc = sim.process(victim())
    sim.process(killer(proc))
    sim.run()
    assert record == [105.0]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt()  # must not raise


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(50.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run()
    assert sim.now == 50.0


def test_deterministic_event_order_many_processes():
    def build():
        sim = Simulator()
        order = []

        def proc(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)

        for i in range(50):
            sim.process(proc(i, (i * 7) % 13))
        sim.run()
        return order

    assert build() == build()


def test_timeout_not_triggered_until_it_fires():
    """Contract: `triggered` means the event carries a value.  A pending
    timeout must not look triggered the moment it is created."""
    sim = Simulator()
    timeout = sim.timeout(5.0, value="late")
    assert not timeout.triggered
    with pytest.raises(SimulationError):
        timeout.value
    with pytest.raises(SimulationError):
        timeout.ok
    sim.run()
    assert timeout.triggered
    assert timeout.ok
    assert timeout.value == "late"


def test_pending_timeout_cannot_be_retriggered():
    sim = Simulator()
    timeout = sim.timeout(5.0)
    with pytest.raises(SimulationError):
        timeout.succeed()


def test_anyof_collect_excludes_pending_losers():
    sim = Simulator()
    winner = sim.timeout(1.0, value="fast")
    loser = sim.timeout(50.0, value="slow")
    cond = AnyOf(sim, [winner, loser])
    sim.run()
    assert cond.value == "fast"
    assert cond._collect() == ["fast"]  # the loser never fired
    assert not loser.triggered


def test_anyof_losers_do_not_extend_the_run():
    """Queue-drain contract: after an AnyOf fires, the losing timeouts'
    heap entries must not keep `sim.run()` (no `until`) alive past the
    logical end of the workload."""
    sim = Simulator()
    times = []

    def parent():
        yield AnyOf(sim, [sim.timeout(2.0), sim.timeout(1000.0)])
        times.append(sim.now)

    sim.process(parent())
    sim.run()
    assert times == [2.0]
    assert sim.now == 2.0          # did not run on to t=1000
    assert sim.peek() == float("inf")  # queue logically empty


def test_allof_failfast_drains_loser_timeouts():
    sim = Simulator()
    ev = sim.event()

    def parent():
        try:
            yield AllOf(sim, [sim.timeout(1000.0), ev])
        except RuntimeError:
            pass

    def firer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("child died"))

    sim.process(parent())
    sim.process(firer())
    sim.run()
    assert sim.now == 1.0


def test_anyof_loser_with_external_watcher_still_fires():
    """A loser timeout someone *else* also waits on must not be cancelled:
    only timeouts whose sole observer was the condition are dropped."""
    sim = Simulator()
    loser = sim.timeout(10.0, value="slow")
    woken = []

    def watcher():
        value = yield loser
        woken.append((sim.now, value))

    def parent():
        yield AnyOf(sim, [sim.timeout(2.0), loser])

    sim.process(watcher())
    sim.process(parent())
    sim.run()
    assert woken == [(10.0, "slow")]


def test_callback_added_to_cancelled_loser_still_runs():
    sim = Simulator()
    loser = sim.timeout(10.0)
    fired = []

    def parent():
        yield AnyOf(sim, [sim.timeout(2.0), loser])
        # attach after the AnyOf fired (loser already lazily cancelled)
        loser.add_callback(lambda ev: fired.append(sim.now))

    sim.process(parent())
    sim.run()
    assert fired == [10.0]
