"""Stragglers as first-class faults: slow events, suspicion, speculation.

Unit coverage for the ``slow`` fault grammar, the :class:`LiveFaultPlan`
throttle deadlines, the :class:`ProgressRateTracker` suspicion policy,
the pre-replication placement helper and the analyze-time speculation
table; plus end-to-end process-runtime scenarios under the ``slow``
marker (CI's ``runtime-smoke`` job): a 10x straggler under tight
heartbeats is never declared dead, backups win races through the
first-commit-wins overlay, losers' partial output is swept, and
pre-replication leaves no sole-copy piece on a suspected node.
"""

import json
import time
import warnings

import pytest

from repro.analysis.utilization import report_from_file, speculation_report
from repro.cluster import presets
from repro.cluster.topology import Cluster
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.faults import FaultInjector, FaultModel
from repro.faults.detector import ProgressRateTracker
from repro.localexec import LocalJobConfig
from repro.obs import RecordingTracer
from repro.runtime.coordinator import Coordinator, RunReport, RuntimeConfig
from repro.runtime.faults import LiveFaultPlan
from repro.runtime.recovery import pre_replication_targets
from repro.runtime.service import DONE, ChainService
from repro.runtime.transport import Throttle
from repro.simcore import SeedSequenceRegistry, Simulator
from repro.workloads.chain import build_chain
from tests.test_runtime_process import (
    instants,
    on_disk_orphans,
    reference_checksum,
    run_process_chain,
)

SMALL = LocalJobConfig(n_jobs=2, n_partitions=4, records_per_node=32,
                       records_per_block=16, split_ratio=2, seed=0)


# ------------------------------------------------------------ parse grammar
def test_parse_slow_shorthand():
    model = FaultModel.parse("slow@2:10")
    (ev,) = model.events
    assert ev.kind == "slow"
    assert ev.node_id == 2
    assert ev.factor == 10.0
    assert ev.at_job is None  # throttles from chain start


def test_parse_slow_general_forms():
    model = FaultModel.parse("slow@job3+5:node=1,factor=4; slow@t30:factor=2")
    onset, unpinned = model.events
    assert (onset.at_job, onset.offset, onset.node_id, onset.factor) == \
        (3, 5.0, 1, 4.0)
    assert unpinned.at_time == 30.0
    assert unpinned.node_id is None  # victim drawn by the seeded RNG
    assert unpinned.factor == 2.0


@pytest.mark.parametrize("spec", [
    "slow@2",                 # missing factor
    "slow@2:1",               # 1x slow is not slow
    "slow@2:0.5",             # speed-ups are not faults
    "slow@2:10,down=5",       # slow keeps the node up
    "slow@2:10,wipe",         # ... with its data
    "slow@t10:rack=0,factor=2",  # slow pins a node, not a rack
    "kill@t10:factor=2",      # factor is slow-only
])
def test_parse_rejects_malformed_slow(spec):
    with pytest.raises(ValueError):
        FaultModel.parse(spec)


def test_conflicting_slow_factors_on_one_node_are_an_error():
    with pytest.raises(ValueError, match="conflicting slow factors"):
        FaultModel.parse("slow@1:2; slow@1:4")
    # identical duplicates merge instead
    model = FaultModel.parse("slow@1:4; slow@1:4")
    assert len(model.events) == 1


def test_slow_is_not_a_stochastic_kind():
    with pytest.raises(ValueError):
        FaultModel.parse("mtbf=600:slow,max=4")


def test_legacy_fail_notation_still_parses():
    model = FaultModel.parse("2,7")
    assert [ev.at_job for ev in model.events] == [2, 7]
    assert all(ev.kind == "fail-stop" for ev in model.events)
    # and composes with slow clauses through the same front door
    mixed = FaultModel.parse("slow@1:3; kill@job2+5")
    assert sorted(ev.kind for ev in mixed.events) == ["fail-stop", "slow"]


# ------------------------------------------------------------ live plan
def test_due_throttles_pops_slow_and_due_never_does():
    plan = LiveFaultPlan(FaultModel.parse("slow@1:4; kill@t10"))
    plan.arm_chain_start(0.0)
    alive = {0, 1, 2}
    victims = plan.due(100.0, alive)  # unpinned kill, seeded draw
    assert len(victims) == 1 and victims[0] in alive
    assert plan.due(100.0, alive) == []
    assert plan.due_throttles(100.0, alive) == [(1, 4.0)]
    assert plan.due_throttles(100.0, alive) == []
    assert plan.exhausted


def test_due_throttles_waits_for_job_anchor_and_deadline():
    plan = LiveFaultPlan(FaultModel.parse("slow@job2+5:node=0,factor=2"))
    plan.arm_chain_start(0.0)
    assert plan.due_throttles(100.0, {0, 1}) == []  # job 2 never started
    plan.arm_job_start(2, 100.0)
    assert plan.due_throttles(104.0, {0, 1}) == []  # before the deadline
    assert plan.due_throttles(105.0, {0, 1}) == [(0, 2.0)]


def test_unpinned_slow_victim_is_seeded():
    def pick(seed):
        plan = LiveFaultPlan(FaultModel.parse("slow@t0:factor=2"), seed=seed)
        plan.arm_chain_start(0.0)
        return plan.due_throttles(1.0, range(8))

    assert pick(7) == pick(7)
    assert {pick(s)[0][0] for s in range(20)} != {pick(7)[0][0]}


# ------------------------------------------------------------ suspicion
def tracker(**kw):
    kw.setdefault("window", 1.0)
    kw.setdefault("ratio", 3.0)
    kw.setdefault("min_commits", 3)
    return ProgressRateTracker(**kw)


def test_progress_tracker_suspects_the_lagging_node():
    t = tracker()
    t.record_dispatch(1, 0.0)  # node 1's task never commits
    for i in range(6):  # nodes 0 and 2 commit 0.1s tasks briskly
        t.record_dispatch(0, 0.1 * i), t.record_commit(0, 0.1 * i + 0.1)
        t.record_dispatch(2, 0.1 * i), t.record_commit(2, 0.1 * i + 0.1)
    # node 1's task is younger than ratio x median (3 x 0.1s): healthy
    assert t.suspects(0.25, alive={0, 1, 2}) == set()
    # ... but once it outlives the threshold it is a straggler — and a
    # fleet that finished its share and went idle still anchors the
    # baseline (no commits needed at verdict time)
    assert t.suspects(0.7, alive={0, 1, 2}) == {1}


def test_progress_tracker_warm_up_guard():
    t = tracker(min_commits=5)
    t.record_dispatch(1, 0.0)
    t.record_dispatch(0, 0.0)
    t.record_commit(0, 0.01)  # one commit is not a fleet baseline
    assert t.suspects(1.0, alive={0, 1}) == set()


def test_progress_tracker_idle_node_is_not_suspect():
    t = tracker()
    for i in range(6):
        t.record_dispatch(0, 0.1 * i)
        t.record_commit(0, 0.1 * i + 0.1)
    # node 1 lags but has nothing in flight: nothing to speculate on
    assert t.suspects(0.9, alive={0, 1}) == set()


def test_progress_tracker_floors_the_age_threshold():
    """Millisecond tasks: ratio x median is microscopic, and scheduler
    jitter alone must not suspect a healthy node."""
    t = tracker()
    for i in range(6):
        t.record_dispatch(0, 0.001 * i)
        t.record_commit(0, 0.001 * i + 0.001)
    t.record_dispatch(1, 0.0)
    assert t.suspects(0.04, alive={0, 1}) == set()  # under the 50ms floor
    assert t.suspects(0.06, alive={0, 1}) == {1}


def test_progress_tracker_settled_and_forget_clear_load():
    t = tracker()
    t.record_dispatch(1, 0.0)
    assert t.load(1) == 1
    t.record_settled(1)  # task-failed: slot freed, no progress counted
    assert t.load(1) == 0
    t.record_dispatch(2, 0.0)
    t.forget(2)
    assert t.load(2) == 0
    t.record_dispatch(3, 0.0)
    t.clear_outstanding()  # epoch bump cancels every in-flight dispatch
    assert t.load(3) == 0


def test_progress_tracker_window_prunes_old_commits():
    t = tracker(window=1.0)
    for i in range(4):
        t.record_commit(0, float(i) / 10)
    assert t.rate(0, 0.5) == 4.0
    assert t.rate(0, 5.0) == 0.0


@pytest.mark.parametrize("kw", [
    dict(window=0.0), dict(ratio=1.0), dict(min_commits=0),
])
def test_progress_tracker_validates_knobs(kw):
    with pytest.raises(ValueError):
        tracker(**kw)


# ------------------------------------------------------------ config
@pytest.mark.parametrize("kw", [
    dict(speculation_slowdown=1.0),
    dict(speculation_min_age=-0.1),
    dict(suspect_window=0.0),
    dict(suspect_ratio=1.0),
    dict(suspect_min_commits=0),
])
def test_runtime_config_validates_straggler_knobs(kw):
    with pytest.raises(ValueError):
        RuntimeConfig(n_nodes=2, chain=SMALL, **kw)


def test_one_node_cluster_warns_and_disables_speculation():
    with pytest.warns(UserWarning, match="no healthy peer"):
        config = RuntimeConfig(n_nodes=1, chain=SMALL,
                               speculation=True, pre_replicate=True)
    assert config.speculation is False
    assert config.pre_replicate is False


# ------------------------------------------------------------ throttle
def test_throttle_set_rejects_speed_ups():
    throttle = Throttle()
    assert throttle.factor == 1.0
    with pytest.raises(ValueError):
        throttle.set(0.5)
    throttle.set(3.0)
    assert throttle.factor == 3.0


def test_throttle_pace_stretches_elapsed_time():
    throttle = Throttle(3.0)
    start = time.monotonic()
    throttle.pace(0.01)  # 10 ms of work -> ~20 ms of extra sleep
    assert time.monotonic() - start >= 0.015
    throttle.set(1.0)
    start = time.monotonic()
    throttle.pace(10.0)  # 1x never sleeps, however long the work was
    assert time.monotonic() - start < 0.5


# ------------------------------------------------------- placement policy
def test_pre_replication_targets_prefer_healthy_non_holders():
    entries = [((1, p, 0, 1), {1}) for p in range(4)]
    targets = pre_replication_targets(entries, suspected={1},
                                      alive={0, 1, 2, 3})
    # round-robin over the healthy non-holders, never the straggler
    assert set(targets) == {key for key, _ in entries}
    assert sorted(set(targets.values())) == [0, 2, 3]


def test_pre_replication_targets_fall_back_to_suspected_peers():
    # every non-holder is itself suspected: any second copy still beats
    # leaving the sole replica on the straggler
    targets = pre_replication_targets([(("k",), {1})], suspected={1, 2},
                                      alive={1, 2})
    assert targets == {("k",): 2}
    # ... but a fully-held piece has nowhere to go
    assert pre_replication_targets([(("k",), {1, 2})], suspected={1},
                                   alive={1, 2}) == {}


# ------------------------------------------------------------ simulator
def test_sim_injector_records_slow_without_killing():
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(4), SeedSequenceRegistry(0))
    struck = []
    injector = FaultInjector(
        cluster, FaultModel.parse("slow@1:4"),
        on_fault=lambda node, ev: pytest.fail(
            "slow must never reach the kill callback"),
        on_slow=lambda node, ev: struck.append((node.node_id, ev.factor)))
    sim.run()
    assert injector.slowed == {1: 4.0}
    assert struck == [(1, 4.0)]
    assert injector.killed == []
    assert cluster.nodes[1].alive


def test_sim_run_chain_treats_slow_as_recorded_noop():
    """The middleware does not wire ``on_slow``: a sim run with a slow
    plan completes with no kills and the fault-free runtime."""
    chain = build_chain(n_jobs=2)
    kw = dict(chain=chain, seed=3)
    baseline = run_chain(presets.tiny(4), strategies.RCMP, **kw)
    slowed = run_chain(presets.tiny(4), strategies.RCMP,
                       failures="slow@1:4", **kw)
    assert slowed.completed
    assert slowed.killed_nodes == []
    assert slowed.total_runtime == baseline.total_runtime


# ------------------------------------------------------------ reporting
def _instant(name, **args):
    return {"ph": "i", "name": name, "args": args}


SPEC_EVENTS = [
    _instant("node-throttled", node=1, factor=10.0),
    _instant("suspected-slow", node=1),
    _instant("speculative-attempt", original=1, backup=2),
    _instant("speculative-result", winner=2, loser=1),
    _instant("speculation-loser", node=1, wasted=512),
    _instant("speculation-swept", node=1, freed=256),
    _instant("pre-replicate", pieces=3),
]


def test_speculation_report_aggregates_per_node():
    report = speculation_report(SPEC_EVENTS)
    lines = report.splitlines()
    assert lines[0] == "== straggler / speculation =="
    (row1,) = [ln for ln in lines if ln.startswith("1 ")]
    assert row1.split() == ["1", "10", "1", "1", "0", "0", "512", "256"]
    (row2,) = [ln for ln in lines if ln.startswith("2 ")]
    assert row2.split() == ["2", "-", "0", "0", "1", "1", "0", "0"]
    assert "pre-replicated pieces: 3" in report
    assert speculation_report([]) == ""
    assert speculation_report([{"ph": "X", "name": "task"}]) == ""


def test_report_from_file_appends_speculation_table(tmp_path):
    path = tmp_path / "trace.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        for ev in SPEC_EVENTS:
            fh.write(json.dumps(ev) + "\n")
    report = report_from_file(str(path))
    assert "== straggler / speculation ==" in report


def test_run_report_carries_speculation():
    report = RunReport(checksum="abc", speculation={
        "attempts": 2, "wins": 1, "wasted_bytes": 64,
        "pre_replicated": 0, "throttled": {1: 10.0}})
    assert report.to_dict()["speculation"]["attempts"] == 2
    assert "speculation: 2 attempts, 1 wins" in report.render()
    # a straggler-free run stays silent
    assert "speculation" not in RunReport(checksum="abc").render()


# --------------------------------------------------------------- e2e
@pytest.mark.slow
def test_slow_is_never_dead_under_tight_heartbeats(tmp_path):
    """A 10x straggler beats the heartbeat clock: throttled task loops
    must never starve the heartbeat thread into a death declaration."""
    tracer = RecordingTracer()
    report = run_process_chain(
        tmp_path, chain=SMALL, n_nodes=3, tracer=tracer,
        heartbeat_interval=0.05, heartbeat_expiry=0.3,
        fault_model=FaultModel.parse("slow@1:10"))
    assert report.checksum == reference_checksum(SMALL, 3)
    assert report.deaths == []
    assert all(kind == "run" for _, kind, _ in report.job_times)
    assert report.speculation["throttled"] == {1: 10.0}
    assert instants(tracer, "node-throttled")


@pytest.mark.slow
def test_speculation_backs_up_straggler_tasks(tmp_path):
    tracer = RecordingTracer()
    report = run_process_chain(
        tmp_path, chain=SMALL, n_nodes=4, tracer=tracer,
        task_slots=2, speculation=True, speculation_min_age=0.02,
        fault_model=FaultModel.parse("slow@1:10"))
    assert report.checksum == reference_checksum(SMALL, 4)
    assert report.deaths == []
    attempts = report.speculation["attempts"]
    assert attempts > 0
    assert len(instants(tracer, "speculative-attempt")) == attempts
    assert report.speculation["wins"] <= attempts
    # a backup always runs on a different node than the original
    assert all(ev["args"]["backup"] != ev["args"]["original"]
               for ev in instants(tracer, "speculative-attempt"))


@pytest.mark.slow
def test_first_commit_wins_and_losers_are_swept(tmp_path):
    """Duplicate completions from the slow original are ignored by the
    epoch/attempt guard and the loser's partial output is dropped: after
    the run no surviving disk holds a file the registry disowns."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    tracer = RecordingTracer()
    config = RuntimeConfig(n_nodes=4, chain=chain, task_slots=2,
                           speculation=True, speculation_min_age=0.02)
    with Coordinator(config, tmp_path / "cluster", tracer=tracer,
                     fault_model=FaultModel.parse("slow@1:10")) as coord:
        report = coord.run_chain()
        assert report.checksum == reference_checksum(chain, 4)
        assert report.speculation["wins"] > 0
        jobs = set(range(1, chain.n_jobs + 1))
        deadline = time.monotonic() + 5.0
        while on_disk_orphans(coord, jobs) and time.monotonic() < deadline:
            time.sleep(0.05)  # loser drops are applied asynchronously
        assert on_disk_orphans(coord, jobs) == []
    winners = {ev["args"]["winner"]
               for ev in instants(tracer, "speculative-result")}
    assert winners  # at least one race resolved
    # every ignored duplicate is accounted as wasted bytes
    assert report.speculation["wasted_bytes"] == sum(
        ev["args"]["wasted"] for ev in instants(tracer, "speculation-loser"))


@pytest.mark.slow
def test_straggler_whose_node_dies_mid_attempt(tmp_path):
    """slow composes with kill: the straggler is finally lost for real
    and normal recovery takes over — pending losers on the dead node are
    pruned instead of waited on."""
    chain = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, split_ratio=2, seed=0)
    report = run_process_chain(
        tmp_path, chain=chain, n_nodes=4, task_slots=2,
        speculation=True, speculation_min_age=0.02,
        fault_model=FaultModel.parse("slow@1:10; kill@job3+0:node=1"))
    assert report.checksum == reference_checksum(chain, 4)
    assert [node for _, node in report.deaths] == [1]


@pytest.mark.slow
def test_pre_replication_leaves_no_sole_copy_on_the_straggler(tmp_path):
    """With pre-replication on (speculation off, so the throttled node
    keeps committing its own pieces), every piece the straggler holds
    gains a healthy second holder — its later death costs nothing.

    The chain is deliberately heavier than SMALL: suspicion samples
    commit rates on pump ticks, so the straggler's lag must dwarf the
    detector's 50 ms poll granularity to fire deterministically."""
    chain = LocalJobConfig(n_jobs=2, n_partitions=4, records_per_node=192,
                           records_per_block=16, split_ratio=2, seed=0)
    tracer = RecordingTracer()
    config = RuntimeConfig(n_nodes=4, chain=chain, task_slots=2,
                           pre_replicate=True, suspect_window=2.0)
    with Coordinator(config, tmp_path / "cluster", tracer=tracer,
                     fault_model=FaultModel.parse("slow@1:10")) as coord:
        report = coord.run_chain()
        assert report.checksum == reference_checksum(chain, 4)
        assert report.deaths == []
        assert report.speculation["pre_replicated"] > 0
        registry = coord.registry
        straggler_pieces = [
            entry for per_part in registry.pieces.values()
            for entries in per_part.values() for entry in entries
            if entry.node == 1]
        assert straggler_pieces  # the throttled node did commit work
        for entry in straggler_pieces:
            holders = registry.holders(*entry.key)
            assert len(holders) >= 2, entry.key
            assert holders - {1}, entry.key
    assert instants(tracer, "pre-replicate")


@pytest.mark.slow
def test_service_surfaces_throttles_and_accepts_speculation_overrides(
        tmp_path):
    tiny = LocalJobConfig(n_jobs=1, n_partitions=2, records_per_node=8,
                          records_per_block=8, seed=3)
    config = RuntimeConfig(n_nodes=2, chain=tiny, task_slots=2)
    with ChainService(config, tmp_path / "svc") as service:
        service.pool.throttle_node(1, 2.0)
        status = service.status()
        assert status["throttled"] == {"1": 2.0}
        assert status["suspected"] == []
        job = service.submit(chain=tiny, speculation=True)
        service.wait(job.id, timeout=60)
        assert job.state == DONE, job.error
        assert job.report.checksum == reference_checksum(tiny, 2)


def test_speculation_without_idle_capacity_warns_and_noops(tmp_path):
    """Every healthy peer saturated (or suspected): the backup is never
    queued behind busy slots — speculation declines with a one-time
    warning and retries on a later tick."""
    config = RuntimeConfig(n_nodes=2, chain=SMALL, task_slots=1,
                           speculation=True)
    coord = Coordinator(config, tmp_path / "cluster")  # never started
    run = coord.chain_run
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert run._backup_candidate(original=1, suspected={0, 1}) is None
        # the no-op warning fires once, not per tick
        assert run._backup_candidate(original=1, suspected={0, 1}) is None
    assert len(caught) == 1
    assert "no healthy idle slot" in str(caught[0].message)
    # with a healthy idle peer the same call places the backup there
    assert run._backup_candidate(original=1, suspected={1}) == 0
