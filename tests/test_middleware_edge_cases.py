"""Edge-case tests for the middleware's failure handling."""

import dataclasses

import pytest

from repro.cluster import presets
from repro.cluster.failures import FailureEvent, FailurePlan
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def chain(n_jobs=3):
    return build_chain(n_jobs=n_jobs, per_node_input=256 * MB,
                       block_size=64 * MB)


def test_failure_during_last_job_still_completes():
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain(3),
                       failures="3")
    assert result.completed
    last = result.metrics.jobs[-1]
    assert last.logical_index == 3 and last.outcome == "done"


def test_back_to_back_kills_before_detection():
    """Two kills 1 s apart: both are folded into one recovery plan (the
    paper: a recomputation job can service any number of data loss
    events)."""
    plan = FailurePlan([FailureEvent(2, 15.0), FailureEvent(2, 16.0)])
    result = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(3),
                       failures=plan)
    assert result.completed
    assert len(result.metrics.failures) == 2
    # recovery happened once per damaged job, not once per failure
    recomputed = [j.logical_index for j in
                  result.metrics.jobs_of_kind("recompute")]
    assert recomputed == sorted(set(recomputed))


def test_failure_during_recompute_of_job1():
    """Nested failure hitting the very first recomputation run."""
    # job 3 fails -> recompute starts at ordinal 4; kill again during it
    result = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(3),
                       failures="3,4")
    assert result.completed
    aborted = [j for j in result.metrics.jobs if j.outcome == "aborted"]
    assert len(aborted) == 2  # the original job 3 and one recompute run


def test_surviving_three_sequential_failures():
    """Extreme shrinkage: 5 nodes, 3 sequential failures.  RCMP recovers
    unless the triple-replicated *input* itself loses all replicas — in
    which case the run must fail gracefully, not crash."""
    result = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(2),
                       failures=[(1, 20.0), (3, 15.0), (5, 15.0)])
    assert len(set(result.killed_nodes)) == 3
    if not result.completed:
        assert "input" in result.failure_reason
    # a larger cluster keeps the input alive under the same failure count
    big = run_chain(presets.tiny(8), strategies.RCMP, chain=chain(2),
                    failures=[(1, 20.0), (3, 15.0), (5, 15.0)], seed=3)
    assert big.completed


def test_hybrid_replication_point_failure_mid_replicate():
    """A kill landing while the hybrid strategy replicates an output."""
    hybrid = strategies.rcmp(hybrid_interval=1)
    # replication happens right after each job; failure at job 2's start
    # can overlap job 1's replication traffic
    result = run_chain(presets.tiny(5), hybrid, chain=chain(3),
                       failures=[(2, 1.0)])
    assert result.completed


def test_zero_failures_plan_is_noop():
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain(2),
                       failures=FailurePlan())
    assert result.completed
    assert result.metrics.failures == []


def test_failures_list_coercion():
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain(2),
                       failures=[(2, 10.0)])
    assert result.completed
    assert len(result.metrics.failures) == 1
    assert result.metrics.failures[0][0] > 0


def test_spread_output_with_second_failure():
    """Spread recomputed outputs enlarge the blast radius of the next
    failure (every piece has a block on many nodes) — recovery must still
    converge."""
    result = run_chain(presets.tiny(6), strategies.RCMP_SPREAD,
                       chain=chain(4), failures="3,6")
    assert result.completed


def test_detection_timeout_zero():
    spec = dataclasses.replace(presets.tiny(4),
                               failure_detection_timeout=0.0)
    result = run_chain(spec, strategies.RCMP, chain=chain(2), failures="2")
    assert result.completed


def test_rcmp_single_job_chain():
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain(1),
                       failures="1")
    assert result.completed
    # input is triple-replicated: just rerun job 1, no recomputation
    assert len(result.metrics.jobs_of_kind("recompute")) == 0


@pytest.mark.parametrize("strategy", [strategies.RCMP, strategies.REPL2])
def test_seed_changes_victim_not_correctness(strategy):
    for seed in (0, 1, 2):
        result = run_chain(presets.tiny(5), strategy, chain=chain(2),
                           failures="2", seed=seed)
        assert result.completed, (strategy.name, seed)
