"""Unit tests for slot pools and the fluid flow network."""

import pytest

from repro.simcore import Capacity, FluidNetwork, SimulationError, Simulator, SlotPool


# ---------------------------------------------------------------- SlotPool
def test_slotpool_grants_up_to_capacity():
    sim = Simulator()
    pool = SlotPool(sim, 2)
    a, b, c = pool.request(), pool.request(), pool.request()
    sim.run()
    assert a.triggered and b.triggered
    assert not c.triggered
    pool.release()
    sim.run()
    assert c.triggered


def test_slotpool_fifo_ordering():
    sim = Simulator()
    pool = SlotPool(sim, 1)
    got = []

    def worker(tag, hold):
        yield pool.request()
        yield sim.timeout(hold)
        got.append((tag, sim.now))
        pool.release()

    for i in range(3):
        sim.process(worker(i, 10.0))
    sim.run()
    assert [t for t, _ in got] == [0, 1, 2]
    assert [w for _, w in got] == [10.0, 20.0, 30.0]


def test_slotpool_release_without_acquire_raises():
    sim = Simulator()
    pool = SlotPool(sim, 1)
    with pytest.raises(SimulationError):
        pool.release()


def test_slotpool_cancel_pending_request():
    sim = Simulator()
    pool = SlotPool(sim, 1)
    pool.request()
    pending = pool.request()
    pool.cancel(pending)
    pool.release()
    sim.run()
    assert pool.available == 1  # cancelled waiter did not consume the slot


# ---------------------------------------------------------------- Flows
@pytest.fixture(params=["equal_share", "max_min"])
def rate_model(request):
    return request.param


def _run_transfer(sim, net, size, links, latency=0.0):
    times = {}

    def proc():
        flow = net.transfer(size, links, latency=latency)
        yield flow.done
        times["end"] = sim.now

    sim.process(proc())
    sim.run()
    return times["end"]


def test_single_flow_full_bandwidth(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    assert _run_transfer(sim, net, 1000.0, [disk]) == pytest.approx(10.0)


def test_two_flows_share_equally(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    ends = []

    def proc():
        flow = net.transfer(1000.0, [disk])
        yield flow.done
        ends.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert ends == pytest.approx([20.0, 20.0])


def test_flow_rate_increases_when_sharer_finishes(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    ends = []

    def proc(size):
        flow = net.transfer(size, [disk])
        yield flow.done
        ends.append(sim.now)

    sim.process(proc(500.0))   # shares 50B/s until t=10, done
    sim.process(proc(1500.0))  # 500B by t=10, then 1000B at 100B/s -> t=20
    sim.run()
    assert ends == pytest.approx([10.0, 20.0])


def test_multi_link_flow_limited_by_slowest(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    fast = Capacity("nic", 1000.0)
    slow = Capacity("disk", 50.0)
    assert _run_transfer(sim, net, 500.0, [fast, slow]) == pytest.approx(10.0)


def test_concurrency_penalty_degrades_aggregate():
    sim = Simulator()
    net = FluidNetwork(sim, "equal_share")
    # alpha=1.0, floor=0.5: eff(2) = 100*(0.5 + 0.5/2) = 75, each flow 37.5.
    disk = Capacity("disk", 100.0, concurrency_penalty=1.0,
                    penalty_floor=0.5)
    ends = []

    def proc():
        flow = net.transfer(375.0, [disk])
        yield flow.done
        ends.append(sim.now)

    sim.process(proc())
    sim.process(proc())
    sim.run()
    assert ends == pytest.approx([10.0, 10.0])


def test_penalty_floor_bounds_degradation():
    disk = Capacity("disk", 100.0, concurrency_penalty=1.0,
                    penalty_floor=0.4)
    assert disk.effective_bandwidth(1) == pytest.approx(100.0)
    assert disk.effective_bandwidth(1000) == pytest.approx(40.0, rel=0.05)
    # monotone non-increasing in n
    values = [disk.effective_bandwidth(n) for n in range(1, 50)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_penalty_floor_validation():
    with pytest.raises(ValueError):
        Capacity("bad", 10.0, penalty_floor=0.0)
    with pytest.raises(ValueError):
        Capacity("bad", 10.0, penalty_floor=1.5)


def test_latency_added_after_last_byte(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    end = _run_transfer(sim, net, 1000.0, [disk], latency=10.0)
    assert end == pytest.approx(20.0)


def test_zero_size_flow_is_latency_only(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    end = _run_transfer(sim, net, 0.0, [], latency=3.0)
    assert end == pytest.approx(3.0)


def test_abort_fails_done_event(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    outcome = []

    def proc():
        flow = net.transfer(1e6, [disk])
        try:
            yield flow.done
        except SimulationError:
            outcome.append(sim.now)

    def aborter():
        yield sim.timeout(5.0)
        (flow,) = list(net.active)
        net.abort(flow)

    sim.process(proc())
    sim.process(aborter())
    sim.run()
    assert outcome == [5.0]


def test_fail_capacity_kills_crossing_flows(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    other = Capacity("other", 100.0)
    outcome = []

    def proc(links, tag):
        flow = net.transfer(1e5, links)
        try:
            yield flow.done
            outcome.append((tag, "ok", sim.now))
        except SimulationError:
            outcome.append((tag, "fail", sim.now))

    def killer():
        yield sim.timeout(1.0)
        net.fail_capacity(disk)

    sim.process(proc([disk], "a"))
    sim.process(proc([other], "b"))
    sim.process(killer())
    sim.run()
    assert ("a", "fail", 1.0) in outcome
    assert outcome[-1] == ("b", "ok", 1000.0)


def test_transfer_on_down_capacity_fails_immediately(rate_model):
    sim = Simulator()
    net = FluidNetwork(sim, rate_model)
    disk = Capacity("disk", 100.0)
    net.fail_capacity(disk)
    outcome = []

    def proc():
        flow = net.transfer(10.0, [disk])
        try:
            yield flow.done
        except SimulationError:
            outcome.append("failed")

    sim.process(proc())
    sim.run()
    assert outcome == ["failed"]


def test_max_min_redistributes_headroom():
    """A flow bottlenecked elsewhere leaves bandwidth to its sharers."""
    sim = Simulator()
    net = FluidNetwork(sim, "max_min")
    shared = Capacity("shared", 100.0)
    thin = Capacity("thin", 10.0)
    ends = {}

    def proc(tag, size, links):
        flow = net.transfer(size, links)
        yield flow.done
        ends[tag] = sim.now

    # Flow a is capped at 10 by "thin"; max-min gives flow b the remaining 90.
    sim.process(proc("a", 100.0, [shared, thin]))
    sim.process(proc("b", 900.0, [shared]))
    sim.run()
    assert ends["a"] == pytest.approx(10.0)
    assert ends["b"] == pytest.approx(10.0)


def test_equal_share_is_conservative_vs_max_min():
    """equal_share never finishes earlier than max_min for a symmetric pair."""
    def total(model):
        sim = Simulator()
        net = FluidNetwork(sim, model)
        shared = Capacity("shared", 100.0)
        thin = Capacity("thin", 10.0)

        def proc(size, links):
            flow = net.transfer(size, links)
            yield flow.done

        sim.process(proc(100.0, [shared, thin]))
        sim.process(proc(900.0, [shared]))
        sim.run()
        return sim.now

    assert total("equal_share") >= total("max_min") - 1e-9


def test_conservation_of_bytes():
    """Total bytes delivered equals requested sizes under churn."""
    sim = Simulator()
    net = FluidNetwork(sim, "equal_share")
    disk = Capacity("disk", 100.0)
    delivered = []

    def proc(size, start):
        yield sim.timeout(start)
        flow = net.transfer(size, [disk])
        yield flow.done
        delivered.append(flow.size - flow.remaining)

    sizes = [100.0, 400.0, 250.0, 50.0, 999.0]
    for i, s in enumerate(sizes):
        sim.process(proc(s, i * 1.5))
    sim.run()
    assert sorted(delivered) == pytest.approx(sorted(sizes))


def test_capacity_validation():
    with pytest.raises(ValueError):
        Capacity("bad", 0.0)
    with pytest.raises(ValueError):
        Capacity("bad", 10.0, concurrency_penalty=-1.0)
    sim = Simulator()
    net = FluidNetwork(sim)
    with pytest.raises(ValueError):
        net.transfer(-1.0, [])
    with pytest.raises(ValueError):
        FluidNetwork(sim, "bogus")
