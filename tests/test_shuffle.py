"""Tests for the shuffle board (progressive map-output availability)."""

import pytest

from repro.mapreduce.shuffle import ShuffleBoard, SourceLost, pick_chunk_count
from repro.simcore import Simulator


def test_chunks_fire_as_fractions_complete():
    sim = Simulator()
    board = ShuffleBoard(sim, chunks=2)
    board.register_source(0, 4)
    first = board.ready(0, 0)
    second = board.ready(0, 1)
    assert not first.triggered
    board.map_completed(0)
    assert not first.triggered
    board.map_completed(0)
    assert first.triggered      # 2/4 = first half ready
    assert not second.triggered
    board.map_completed(0)
    board.map_completed(0)
    assert second.triggered


def test_reused_source_ready_immediately():
    sim = Simulator()
    board = ShuffleBoard(sim, chunks=3)
    board.register_reused_source(5)
    for chunk in range(3):
        assert board.ready(5, chunk).triggered


def test_source_with_zero_maps_ready():
    sim = Simulator()
    board = ShuffleBoard(sim, chunks=1)
    board.register_source(1, 0)
    assert board.ready(1, 0).triggered


def test_additive_registration():
    sim = Simulator()
    board = ShuffleBoard(sim, chunks=1)
    board.register_source(0, 2)
    board.register_source(0, 2)  # 4 total
    ev = board.ready(0, 0)
    board.map_completed(0)
    board.map_completed(0)
    assert not ev.triggered
    board.map_completed(0)
    board.map_completed(0)
    assert ev.triggered


def test_fail_source_fails_pending_and_future():
    sim = Simulator()
    board = ShuffleBoard(sim, chunks=2)
    board.register_source(0, 4)
    pending = board.ready(0, 1)
    board.fail_source(0)
    assert pending.triggered and not pending.ok
    assert isinstance(pending.value, SourceLost)
    future = board.ready(0, 0)
    assert future.triggered and not future.ok


def test_chunk_range_validation():
    sim = Simulator()
    board = ShuffleBoard(sim, chunks=2)
    with pytest.raises(ValueError):
        board.ready(0, 2)
    with pytest.raises(ValueError):
        ShuffleBoard(sim, chunks=0)


def test_pick_chunk_count_budgeted():
    # small: one chunk per map wave
    assert pick_chunk_count(10, 10, map_waves=16) == 16
    # large: budget caps the pair*chunk product
    assert pick_chunk_count(60, 60, map_waves=80,
                            flow_budget=20_000) == 5
    assert pick_chunk_count(60, 3540, map_waves=80,
                            flow_budget=20_000) == 1
    assert pick_chunk_count(4, 4, map_waves=0) == 1
