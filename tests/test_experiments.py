"""Tests for the experiment harness (CI scale)."""

import pytest

from repro.experiments import ALL_FIGURES, fig2, fig10, fig11, survivability
from repro.experiments.common import (
    check_scale,
    dco_testbed,
    slowdown_factors,
    stic_testbed,
)


def test_scale_validation():
    with pytest.raises(ValueError):
        check_scale("huge")
    with pytest.raises(ValueError):
        stic_testbed("huge")


def test_testbeds_shapes():
    ci = stic_testbed("ci")
    assert ci.cluster.n_nodes == 4
    paper = stic_testbed("paper")
    assert paper.cluster.n_nodes == 10
    assert paper.chain.n_jobs == 7
    dco = dco_testbed("paper")
    assert dco.cluster.n_nodes == 60
    bench_dco = dco_testbed("bench")
    assert bench_dco.cluster.n_nodes == 60
    assert bench_dco.chain.per_node_input < dco.chain.per_node_input


def test_slowdown_factors_normalized_to_fastest():
    f = slowdown_factors({"a": 100.0, "b": 150.0, "c": 200.0})
    assert f["a"] == 1.0
    assert f["b"] == pytest.approx(1.5)
    assert f["c"] == pytest.approx(2.0)


def test_all_figures_registry_complete():
    assert sorted(ALL_FIGURES) == ["fig10", "fig11", "fig12", "fig13",
                                   "fig14", "fig2", "fig8", "fig9",
                                   "ratios", "survivability"]
    for module in ALL_FIGURES.values():
        assert hasattr(module, "run")


def test_fig2_statistics_close_to_calibration():
    report = fig2.run("ci", seed=1)
    rows = {c.label: c for c in report.rows}
    stic = rows["STIC: CDF at 0 failures/day (%)"]
    sugar = rows["SUG@R: CDF at 0 failures/day (%)"]
    assert stic.measured == pytest.approx(83.0, abs=3.0)
    assert sugar.measured == pytest.approx(88.0, abs=3.0)


def test_fig2_series_are_valid_cdfs():
    for _name, (x, f) in fig2.series("ci", seed=0).items():
        assert (f[1:] >= f[:-1]).all()   # monotone
        assert f[-1] == pytest.approx(100.0)
        assert x[0] == 0


def test_fig10_extrapolation_runs_and_is_flat():
    report = fig10.run("ci")
    rows = {c.label: c for c in report.rows}
    spread = rows["HADOOP REPL-3 spread over L (max-min)"]
    level = rows["HADOOP REPL-3 slowdown @ L=50"]
    assert level.measured > 1.0
    assert spread.measured < 0.3 * level.measured


def test_fig11_split_beats_nosplit():
    report = fig11.run("ci")
    rows = {c.label: c.measured for c in report.rows}
    for n in (4, 6):
        assert rows[f"N={n} RCMP SPLIT"] > rows[f"N={n} RCMP NO-SPLIT"]


def test_fig11_speedup_grows_with_nodes_for_split():
    report = fig11.run("ci")
    rows = {c.label: c.measured for c in report.rows}
    assert rows["N=6 RCMP SPLIT"] >= rows["N=4 RCMP SPLIT"] * 0.9


def test_survivability_sweep_terminates_every_run():
    """Every stochastic run ends with completed=True or a failure reason
    (the sweep itself asserts this per run), and completion probability
    does not *decrease* when the MTBF grows."""
    cells = survivability.sweep("ci", seed=1)
    mtbfs = sorted({mtbf for mtbf, _name in cells})
    assert len(mtbfs) >= 2
    for name in {name for _mtbf, name in cells}:
        fracs = [sum(cells[(m, name)]["completed"])
                 / len(cells[(m, name)]["completed"]) for m in mtbfs]
        assert fracs == sorted(fracs), (name, fracs)
    report = survivability.run("ci", seed=1)
    assert all(0.0 <= c.measured <= 1.0 for c in report.rows)
    assert len(report.rows) == len(cells)


def test_survivability_runs_are_reproducible():
    a = survivability.sweep("ci", seed=2)
    b = survivability.sweep("ci", seed=2)
    assert a == b
