"""Unit tests for the ChainState lineage planner."""

import pytest

from repro.cluster import presets
from repro.cluster.topology import Cluster
from repro.core import strategies
from repro.core.lineage import STRIDE, ChainState, Piece, _JobState
from repro.core.persistence import MapOutputMeta, PersistedStore
from repro.core.splitting import LostPiece
from repro.dfs import DistributedFileSystem
from repro.mapreduce.types import PartitionRef
from repro.simcore import SeedSequenceRegistry, Simulator
from repro.workloads.chain import build_chain

MB = 1 << 20


def make_state(n_nodes=4, n_jobs=3, strategy=None):
    chain = build_chain(n_jobs=n_jobs, per_node_input=256 * MB,
                        block_size=64 * MB)
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(n_nodes), SeedSequenceRegistry(1))
    dfs = DistributedFileSystem(cluster, chain.block_size)
    store = PersistedStore()
    state = ChainState(chain, cluster, dfs, store,
                       strategy or strategies.RCMP)
    return state, dfs, store


def fabricate_job(state, dfs, j, n_partitions=4, piece_mb=64, nodes=None):
    js = _JobState()
    nodes = nodes or [0, 1, 2, 3]
    for p in range(n_partitions):
        name = f"fab-j{j}-p{p}"
        dfs.create_placed(name, piece_mb * MB,
                          locations=[nodes[p % len(nodes)]],
                          tags={"job_index": j, "partition": p})
        js.layout[p] = [Piece(name, 1.0, 0, 1)]
    state.jobs[j] = js
    return js


# -------------------------------------------------------------- enumeration
def test_job1_maps_from_input_file():
    state, dfs, _store = make_state()
    state.seed_input()
    tasks = state.enumerate_map_tasks(1)
    # 4 nodes x 256MB at 64MB blocks = 16 map tasks
    assert len(tasks) == 16
    assert all(t.input.origin is None for t in tasks)
    assert [t.task_id for t in tasks] == list(range(16))


def test_downstream_maps_use_hierarchical_ids_and_origins():
    state, dfs, _store = make_state()
    state.seed_input()
    fabricate_job(state, dfs, 1)
    tasks = state.enumerate_map_tasks(2)
    assert len(tasks) == 4  # one 64MB block per partition piece
    for t in tasks:
        partition = t.task_id // STRIDE
        assert t.input.origin == PartitionRef(1, partition)


def test_enumeration_requires_intact_upstream():
    state, dfs, _store = make_state()
    state.seed_input()
    js = fabricate_job(state, dfs, 1)
    js.damaged[0] = [LostPiece(0)]
    with pytest.raises(RuntimeError, match="damaged"):
        state.enumerate_map_tasks(2)


def test_missing_upstream_raises():
    state, _dfs, _store = make_state()
    state.seed_input()
    with pytest.raises(RuntimeError, match="no recorded output"):
        state.enumerate_map_tasks(2)


# -------------------------------------------------------------- damage
def test_note_node_death_marks_and_removes_pieces():
    state, dfs, store = make_state()
    state.seed_input()
    fabricate_job(state, dfs, 1)
    store.register(MapOutputMeta(1, 0, node=1, size=10.0))
    lost = state.note_node_death(1)
    assert lost
    assert state.damaged_jobs() == [1]
    js = state.jobs[1]
    assert 1 not in js.layout  # partition 1 lived on node 1
    assert js.damaged[1][0].partition == 1
    assert store.get(1, 0) is None  # persisted outputs on node 1 dropped


def test_note_node_death_without_losses():
    state, dfs, _store = make_state()
    state.seed_input()
    assert state.note_node_death(2) is False
    assert state.damaged_jobs() == []


# -------------------------------------------------------- recompute plans
def test_recompute_plan_minimum_work():
    state, dfs, store = make_state()
    state.seed_input()
    # job 1's output lives off node 1, so killing node 1 damages only job 2
    fabricate_job(state, dfs, 1, nodes=[0, 2, 3])
    # persist all four consumer map outputs of job 2; then lose node 1
    for p in range(4):
        store.register(MapOutputMeta(2, p * STRIDE, node=p,
                                     size=64 * MB,
                                     origin=PartitionRef(1, p)))
    fabricate_job(state, dfs, 2)
    state.note_node_death(1)
    plan = state.build_recompute_plan(2)
    assert plan.kind == "recompute"
    # only the map output persisted on node 1 is re-executed
    assert [t.task_id for t in plan.map_tasks] == [1 * STRIDE]
    # the three outputs persisted on surviving nodes 0, 2, 3 are reused
    assert len(plan.reused_map_outputs) == 3
    assert {r.node for r in plan.reused_map_outputs} == {0, 2, 3}
    # reducers: only the lost partition, split over survivors (auto = 2)
    partitions = {t.partition for t in plan.reduce_tasks}
    assert partitions == {1}
    assert sum(t.fraction for t in plan.reduce_tasks) == pytest.approx(1.0)
    assert plan.split_partitions == {1}


def test_recompute_plan_without_damage_raises():
    state, dfs, _store = make_state()
    state.seed_input()
    fabricate_job(state, dfs, 1)
    with pytest.raises(RuntimeError, match="no damage"):
        state.build_recompute_plan(1)


def test_no_split_strategy_single_reducer():
    state, dfs, _store = make_state(strategy=strategies.RCMP_NOSPLIT)
    state.seed_input()
    fabricate_job(state, dfs, 1)
    state.note_node_death(2)
    plan = state.build_recompute_plan(1)
    assert len(plan.reduce_tasks) == 1
    assert plan.reduce_tasks[0].fraction == 1.0
    assert plan.split_partitions == frozenset()


def test_min_rerun_mappers_forces_extra_work():
    state, dfs, store = make_state()
    state.seed_input()
    # complete job 1 state with persisted outputs on nodes 0..3
    fabricate_job(state, dfs, 1)
    for i in range(16):
        store.register(MapOutputMeta(1, i, node=i % 4, size=16 * MB))
    state.note_node_death(3)
    baseline = state.build_recompute_plan(1)
    forced = state.build_recompute_plan(1, min_rerun_mappers=10)
    assert len(forced.map_tasks) == 10
    assert len(forced.map_tasks) > len(baseline.map_tasks)
    assert len(forced.reused_map_outputs) < len(baseline.reused_map_outputs)


def test_reset_clears_everything():
    state, dfs, store = make_state()
    state.seed_input()
    fabricate_job(state, dfs, 1)
    store.register(MapOutputMeta(1, 0, node=0, size=1.0))
    state.note_node_death(0)
    state.reset()
    assert state.jobs == {}
    assert len(store) == 0
    assert state.completed_through == 0
