"""Tests for the generalized fault model, heartbeat detection, transient
recovery, and graceful degradation."""

import dataclasses

import pytest

from repro.cluster import presets
from repro.cluster.failures import FailurePlan
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.faults import (
    DEFAULT_DOWNTIME,
    FaultEvent,
    FaultModel,
    HeartbeatDetector,
)
from repro.workloads.chain import build_chain

MB = 1 << 20


def chain(n_jobs=3):
    return build_chain(n_jobs=n_jobs, per_node_input=256 * MB,
                       block_size=64 * MB)


# --------------------------------------------------------- legacy FAIL parse
def test_failure_plan_parse_accepts_whitespace_and_case():
    for spec in ("FAIL 7, 14", "fail 7,14", "  7 , 14  ", "Fail 7,\t14"):
        plan = FailurePlan.parse(spec)
        assert [ev.at_job for ev in plan.events] == [7, 14]


def test_failure_plan_parse_rejects_non_positive_ordinals():
    with pytest.raises(ValueError, match="1-based"):
        FailurePlan.parse("0")
    with pytest.raises(ValueError, match="1-based"):
        FailurePlan.parse("FAIL 2,-3")


def test_failure_plan_parse_rejects_garbage_with_clear_message():
    with pytest.raises(ValueError, match="not a job ordinal"):
        FailurePlan.parse("FAIL x")
    with pytest.raises(ValueError, match="expected one or two"):
        FailurePlan.parse("1,2,3")


# ------------------------------------------------------------ FaultModel
def test_fault_model_parses_legacy_fail_notation():
    model = FaultModel.parse("FAIL 7, 14")
    assert [ev.at_job for ev in model.events] == [7, 14]
    assert all(ev.kind == "fail-stop" for ev in model.events)
    assert not model.stochastic and not model.has_transient


def test_fault_model_parse_event_clauses():
    model = FaultModel.parse(
        "kill@job2+5:node=3; transient@t120:down=60,wipe; disk@job3+10; "
        "rack@t300:rack=1,down=30")
    kinds = [ev.kind for ev in model.events]
    assert kinds == ["fail-stop", "transient", "disk-loss", "rack"]
    kill, transient, disk, rack = model.events
    assert kill.at_job == 2 and kill.offset == 5.0 and kill.node_id == 3
    assert transient.at_time == 120.0 and transient.wipe \
        and transient.downtime == 60.0
    assert disk.at_job == 3 and disk.offset == 10.0
    assert rack.rack == 1 and rack.downtime == 30.0 and rack.data_survives
    assert model.has_transient


def test_fault_model_parse_mtbf_clause():
    model = FaultModel.parse("mtbf=600:transient,kill,down=60,wipe,max=40")
    assert model.mtbf == 600.0
    assert model.mtbf_kinds == ("transient", "fail-stop")
    assert model.mtbf_downtime == 60.0 and model.mtbf_wipe
    assert model.max_stochastic == 40
    assert model.stochastic and model.has_transient


def test_fault_model_parse_rejects_bad_specs():
    with pytest.raises(ValueError, match="trigger"):
        FaultModel.parse("kill:node=2")
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultModel.parse("meteor@job2")
    with pytest.raises(ValueError, match="one mtbf clause"):
        FaultModel.parse("mtbf=10; mtbf=20")
    with pytest.raises(ValueError, match="empty"):
        FaultModel.parse("   ")


def test_fault_event_validation():
    with pytest.raises(ValueError, match="exactly one"):
        FaultEvent(at_job=1, at_time=10.0)
    with pytest.raises(ValueError, match="downtime"):
        FaultEvent(kind="transient", at_job=1)
    with pytest.raises(ValueError, match="disk-loss"):
        FaultEvent(kind="disk-loss", at_job=1, downtime=5.0)
    ev = FaultEvent(kind="transient", at_job=1, downtime=30.0)
    assert ev.transient and ev.data_survives
    assert not dataclasses.replace(ev, wipe=True).data_survives


def test_transient_default_downtime_applied_by_parser():
    model = FaultModel.parse("transient@job2")
    assert model.events[0].downtime == DEFAULT_DOWNTIME


# ------------------------------------------------------ heartbeat detector
def test_paper_mode_detector_semantics():
    det = HeartbeatDetector(interval=3.0, expiry=0.0, declare_timeout=30.0)
    assert det.paper_mode
    assert det.detection_delay(17.2) == 0.0
    assert det.declare_delay(17.2) == 30.0
    assert det.rejoin_delay(17.2) == 0.0


def test_heartbeat_detector_detection_latency():
    det = HeartbeatDetector(interval=3.0, expiry=9.0, declare_timeout=30.0)
    assert not det.paper_mode
    # death at t=7: last heartbeat at t=6, silence declared at 6+9=15
    assert det.detection_delay(7.0) == pytest.approx(8.0)
    # declare follows detection in heartbeat mode, not the fixed timeout
    assert det.declare_delay(7.0) == pytest.approx(8.0)
    # rejoin is noticed at the next heartbeat edge
    assert det.rejoin_delay(7.0) == pytest.approx(2.0)


# ------------------------------------------------- double/nested failures
@pytest.mark.parametrize("strategy", [strategies.RCMP, strategies.REPL3,
                                      strategies.OPTIMISTIC],
                         ids=["rcmp", "repl3", "optimistic"])
def test_same_job_double_failure(strategy):
    """FAIL X,X: the second kill lands 15 s after the first within the
    same started job; every strategy must terminate cleanly."""
    result = run_chain(presets.tiny(6), strategy, chain=chain(3),
                       failures="2,2")
    assert result.completed or result.failure_reason
    assert len(set(result.killed_nodes)) == 2


@pytest.mark.parametrize("strategy", [strategies.RCMP, strategies.REPL3,
                                      strategies.OPTIMISTIC],
                         ids=["rcmp", "repl3", "optimistic"])
def test_failure_during_recovery(strategy):
    """Fig. 7 case f: the second failure lands while the first is being
    recovered (for RCMP: during a recomputation run)."""
    result = run_chain(presets.tiny(6), strategy, chain=chain(3),
                       failures="3,4")
    assert result.completed or result.failure_reason
    assert len(result.metrics.failures) == 2


# ------------------------------------------------------ transient recovery
def test_transient_rejoin_shortens_rcmp_cascade():
    """A crash-recover node that rejoins with its data intact heals the
    damage, so RCMP runs measurably less recomputation than under an
    equivalent fail-stop kill."""
    failstop = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(5),
                         failures="kill@job3+10", seed=1)
    transient = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(5),
                          failures="transient@job3+10:down=30", seed=1)
    assert failstop.completed and transient.completed
    assert len(transient.metrics.rejoins) == 1
    assert transient.jobs_started < failstop.jobs_started

    def recompute_runs(result):
        return len([j for j in result.metrics.jobs
                    if j.kind == "recompute"])

    assert recompute_runs(transient) < recompute_runs(failstop)
    assert transient.total_runtime < failstop.total_runtime


def test_wiped_rejoin_cannot_heal():
    """A transient node whose disk is wiped during the outage rejoins but
    brings no data back: the cascade runs as under fail-stop."""
    wiped = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(5),
                      failures="transient@job3+10:down=60,wipe", seed=1)
    failstop = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(5),
                         failures="kill@job3+10", seed=1)
    assert wiped.completed
    assert wiped.jobs_started == failstop.jobs_started


def test_disk_loss_keeps_node_computing():
    """A disk-loss fault loses the node's stored data but not its compute:
    no node is ever 'killed' and the chain completes."""
    result = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(4),
                       failures="disk@job3+10", seed=1)
    assert result.completed
    assert result.killed_nodes == []
    assert [kind for _t, kind, _n in result.fault_log] == ["disk-loss"]


def test_disk_loss_under_replication_completes():
    result = run_chain(presets.tiny(5), strategies.REPL2, chain=chain(4),
                       failures="disk@job3+10", seed=1)
    assert result.completed


def test_rack_failure_strikes_whole_rack():
    spec = dataclasses.replace(presets.tiny(6), n_racks=2)
    result = run_chain(spec, strategies.REPL3, chain=chain(3),
                       failures="rack@t60:rack=1", seed=2)
    assert result.completed or result.failure_reason
    racked = [n for _t, kind, n in result.fault_log if kind == "rack"]
    assert len(racked) == 3  # every node of the 3-node rack


# --------------------------------------------------- stochastic arrivals
def test_mtbf_runs_terminate_and_are_seeded():
    model = "mtbf=120:transient,kill,down=30,max=12"
    strat = strategies.RCMP.with_degradation(
        max_cascade_depth=6, max_restarts=3, restart_backoff=1.0)
    results = [run_chain(presets.tiny(5), strat, chain=chain(4),
                         failures=model, seed=9) for _ in range(2)]
    for r in results:
        assert r.completed or r.failure_reason
    # same seed -> byte-identical fault sequence and runtime
    assert results[0].fault_log == results[1].fault_log
    assert results[0].total_runtime == results[1].total_runtime


def test_dedicated_fault_seed_decouples_arrivals():
    m1 = FaultModel(mtbf=200.0, seed=5, max_stochastic=8)
    m2 = FaultModel(mtbf=200.0, seed=5, max_stochastic=8)
    r1 = run_chain(presets.tiny(5), strategies.REPL2, chain=chain(3),
                   failures=m1, seed=1)
    r2 = run_chain(presets.tiny(5), strategies.REPL2, chain=chain(3),
                   failures=m2, seed=1)
    assert r1.fault_log == r2.fault_log


# --------------------------------------------------- graceful degradation
def test_with_degradation_validation():
    with pytest.raises(ValueError, match="recomputation"):
        strategies.REPL2.with_degradation(max_cascade_depth=3)
    s = strategies.RCMP.with_degradation(max_cascade_depth=2,
                                         max_restarts=3,
                                         restart_backoff=1.5)
    assert s.name == "RCMP"
    assert (s.max_cascade_depth, s.max_restarts, s.restart_backoff) \
        == (2, 3, 1.5)


def test_optimistic_restart_budget_exhausts_cleanly():
    strat = strategies.OPTIMISTIC.with_degradation(max_restarts=2,
                                                   restart_backoff=1.0)
    result = run_chain(presets.tiny(5), strat, chain=chain(4),
                       failures="mtbf=40:kill,max=20", seed=3)
    assert not result.completed
    assert result.failure_reason
    assert result.restarts >= 1


# ----------------------------------------------------- paper byte-identity
def test_expiry_zero_detector_is_byte_identical_to_paper_mode():
    """With heartbeat_expiry=0 the detector is omniscient: changing the
    heartbeat interval must not perturb a planned-failure run at all."""
    base = presets.tiny(5)
    tweaked = dataclasses.replace(base, heartbeat_interval=7.0)
    for failures in ("2", "7,14", [(2, 15.0), (2, 30.0)]):
        a = run_chain(base, strategies.RCMP, chain=chain(4),
                      failures=failures, seed=4)
        b = run_chain(tweaked, strategies.RCMP, chain=chain(4),
                      failures=failures, seed=4)
        assert a.total_runtime == b.total_runtime
        assert a.killed_nodes == b.killed_nodes
        assert a.metrics.summary() == b.metrics.summary()


def test_legacy_plan_and_fault_model_byte_identical():
    """A FAIL plan routed through the generalized injector reproduces the
    legacy injector's exact draws: same victims, same timings."""
    plan = FailurePlan.parse("7,14")
    model = FaultModel.from_plan(plan)
    a = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(7),
                  failures=plan, seed=2)
    b = run_chain(presets.tiny(5), strategies.RCMP, chain=chain(7),
                  failures=model, seed=2)
    assert a.total_runtime == b.total_runtime
    assert a.killed_nodes == b.killed_nodes


# --------------------------------------------------- heartbeat-mode runs
def test_heartbeat_mode_delays_detection_and_completes():
    spec = dataclasses.replace(presets.tiny(5), heartbeat_interval=3.0,
                               heartbeat_expiry=9.0)
    result = run_chain(spec, strategies.RCMP, chain=chain(5),
                       failures="FAIL 3", seed=4)
    assert result.completed
    assert len(result.metrics.detections) == 1
    _t, _node, latency = result.metrics.detections[0]
    assert 0.0 < latency <= 12.0
    assert result.metrics.summary()["mean_detection_latency"] == \
        pytest.approx(latency)


def test_heartbeat_spec_validation():
    with pytest.raises(ValueError):
        dataclasses.replace(presets.tiny(4),
                            heartbeat_interval=0.0).validate()
    with pytest.raises(ValueError):
        dataclasses.replace(presets.tiny(4), heartbeat_interval=5.0,
                            heartbeat_expiry=2.0).validate()
