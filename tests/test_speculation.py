"""Tests for speculative execution of straggler mappers."""

import dataclasses

import pytest

from repro.cluster import presets
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import Cluster
from repro.dfs import DistributedFileSystem
from repro.mapreduce import JobPlan, JobTracker, MapInput, MapTaskSpec
from repro.mapreduce.metrics import RunMetrics
from repro.simcore import SeedSequenceRegistry, Simulator

MB = 1 << 20
BLOCK = 64 * MB


def spec_cluster(n=4, **overrides):
    base = presets.tiny(n)
    return dataclasses.replace(base, speculative_execution=True,
                               speculation_interval=1.0,
                               speculation_min_runtime=2.5, **overrides)


def make_env(spec):
    sim = Simulator()
    cluster = Cluster(sim, spec, SeedSequenceRegistry(9))
    dfs = DistributedFileSystem(cluster, BLOCK)
    metrics = RunMetrics()
    return sim, cluster, dfs, metrics, JobTracker(cluster, dfs, metrics)


def straggler_plan(n_nodes, replicated_input):
    """Task 0 reads from node 0, whose disk is saturated by background
    load; with ``replicated_input`` a second replica on node 2 gives a
    speculative duplicate an escape hatch."""
    tasks = []
    for i in range(n_nodes * 2):
        if i == 0:
            locs = (0, 2) if replicated_input else (0,)
        else:
            # healthy tasks never touch node 0's hogged disk
            locs = ((i % (n_nodes - 1)) + 1,)
        tasks.append(MapTaskSpec(i, MapInput(BLOCK, locs), BLOCK))
    # map-only job: the straggling map is the critical path
    plan = JobPlan(1, "j", "initial", tasks, [], 1)
    # run the straggler away from all of its replicas and keep the rest of
    # the work off node 0 so only task 0 suffers
    plan.mapper_assignment = {0: 1}
    for i in range(1, n_nodes * 2):
        plan.mapper_assignment[i] = (i % (n_nodes - 1)) + 1
    return plan


def run_plan(spec, plan):
    sim, cluster, dfs, metrics, jt = make_env(spec)

    def driver():
        yield from jt.run_job(plan)

    # saturate node 0's disk for the whole run, and occupy its mapper slot
    # so speculative duplicates are placed on healthy nodes
    cluster.nodes[0].mapper_slots.request()

    def hog():
        flows = [cluster.network.transfer(50_000 * MB,
                                          [cluster.nodes[0].disk])
                 for _ in range(8)]
        for flow in flows:
            yield flow.done

    sim.process(hog())
    sim.process(driver())
    sim.run(until=2000.0)
    return metrics


def test_speculation_config_validation():
    with pytest.raises(ValueError):
        ClusterSpec(name="x", n_nodes=4, speculation_slowdown=1.0).validate()
    with pytest.raises(ValueError):
        ClusterSpec(name="x", n_nodes=4, speculation_interval=0).validate()


def test_speculative_attempts_recorded():
    metrics = run_plan(spec_cluster(), straggler_plan(4, True))
    spec_records = [t for t in metrics.jobs[0].tasks
                    if t.task_type == "map-speculative"]
    assert spec_records, "a straggler should have been duplicated"


def test_job_completes_with_speculation_enabled():
    metrics = run_plan(spec_cluster(), straggler_plan(4, True))
    job = metrics.jobs[0]
    assert job.outcome == "done"
    # every map task completed exactly once
    done_ids = [t.task_id for t in job.tasks
                if t.task_type == "map" and t.outcome == "done"]
    killed = [t.task_id for t in job.tasks
              if t.task_type == "map" and t.outcome == "killed"]
    assert sorted(done_ids + killed) == sorted(set(done_ids + killed))


def test_speculation_with_replicas_beats_straggler():
    """§III-A: a duplicate reading another replica bypasses the hot disk."""
    with_replicas = run_plan(spec_cluster(), straggler_plan(4, True))
    job_repl = with_replicas.jobs[0].duration

    no_spec = run_plan(presets.tiny(4), straggler_plan(4, True))
    job_base = no_spec.jobs[0].duration
    assert job_repl < job_base


def test_speculation_single_replica_gains_less():
    """With single-replicated input the duplicate reads the same hot disk,
    so speculation's relative gain shrinks (the paper's §III-A argument
    that replication's speculation benefit is narrow)."""
    gain = {}
    for replicated in (True, False):
        plan = straggler_plan(4, replicated)
        base = run_plan(presets.tiny(4), plan).jobs[0].duration
        spec = run_plan(spec_cluster(), straggler_plan(4, replicated))
        gain[replicated] = (base - spec.jobs[0].duration) / base
    assert gain[True] >= gain[False] - 0.02


def test_speculation_disabled_by_default():
    assert presets.tiny(4).speculative_execution is False
    assert presets.stic().speculative_execution is False
