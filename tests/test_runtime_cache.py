"""Tests for the cross-run result cache.

Fast tests pin down the pure pieces — fingerprint identity, the
contiguous-prefix rule, registry admission/adoption/eviction/persistence
over synthetic files, and the close-time namespace sweep.  The ``slow``
marker guards the end-to-end service scenarios: full-chain and prefix
hits, the no-cache opt-out, LRU eviction under a tiny budget, restart
rescan, and the headline differential proof — a kill during the cached
prefix forces RCMP recovery to recompute adopted pieces and the final
checksum stays byte-identical to a cold run.
"""

import functools
import json
import time

import pytest

from repro.localexec import LocalCluster, LocalJobConfig
from repro.runtime.cache import (
    CacheRegistry,
    chain_fingerprints,
    scan_chain_sequence,
    udf_identity,
)
from repro.runtime.coordinator import RuntimeConfig
from repro.runtime.recovery import JobGraph, adoptable_prefix
from repro.runtime.service import ChainService
from repro.runtime.storage import (
    ClusterRegistry,
    NodeStore,
    PieceEntry,
    chain_checksum,
)

CHAIN3 = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                        records_per_block=16, seed=0)
CHAIN5 = LocalJobConfig(n_jobs=5, n_partitions=4, records_per_node=48,
                        records_per_block=16, seed=0)


@functools.lru_cache(maxsize=None)
def reference_checksum(chain: LocalJobConfig, n_nodes: int = 4) -> str:
    cluster = LocalCluster(n_nodes, chain)
    for job in range(1, chain.n_jobs + 1):
        cluster.run_job(job)
    return chain_checksum(cluster.final_output())


def _config(chain=CHAIN3, **kw) -> RuntimeConfig:
    return RuntimeConfig(n_nodes=4, chain=chain, task_slots=2, **kw)


# ------------------------------------------------------------ fingerprints
def test_fingerprints_one_per_job_and_position_dependent():
    fps = chain_fingerprints(CHAIN3, n_nodes=4)
    assert len(fps) == 3
    assert len(set(fps)) == 3  # position changes the hash


def test_fingerprint_prefix_shared_across_chain_lengths():
    """The whole point: a 5-job chain's first three fingerprints equal
    the 3-job chain's — overlapping submissions share cache entries."""
    assert chain_fingerprints(CHAIN5, 4)[:3] == chain_fingerprints(CHAIN3, 4)


@pytest.mark.parametrize("field, value", [
    ("seed", 7),
    ("records_per_node", 64),
    ("value_size", 32),
    ("n_partitions", 2),
])
def test_fingerprints_track_input_identity(field, value):
    import dataclasses
    other = dataclasses.replace(CHAIN3, **{field: value})
    assert chain_fingerprints(other, 4) != chain_fingerprints(CHAIN3, 4)


def test_fingerprints_track_node_count_but_not_blocking():
    """n_nodes changes the generated input (one seed per node); block
    size and split ratio only change piece boundaries, which the
    canonical per-partition output is invariant to."""
    import dataclasses
    assert chain_fingerprints(CHAIN3, 5) != chain_fingerprints(CHAIN3, 4)
    reblocked = dataclasses.replace(CHAIN3, records_per_block=8)
    resplit = dataclasses.replace(CHAIN3, split_ratio=2)
    assert chain_fingerprints(reblocked, 4) == chain_fingerprints(CHAIN3, 4)
    assert chain_fingerprints(resplit, 4) == chain_fingerprints(CHAIN3, 4)


def test_udf_identity_is_stable():
    assert udf_identity() == udf_identity()


DIAMOND4 = LocalJobConfig(n_jobs=4, n_partitions=4, records_per_node=48,
                          records_per_block=16, seed=0,
                          dependencies=((), (1,), (1,), (2, 3)))


def test_fingerprints_include_dependency_structure():
    """Job 3 of a diamond reads job 1; job 3 of a linear chain reads
    job 2.  Same knobs, different lineage — the fingerprints must
    diverge exactly where the parent sets do."""
    linear = LocalJobConfig(n_jobs=4, n_partitions=4, records_per_node=48,
                            records_per_block=16, seed=0)
    lin = chain_fingerprints(linear, 4)
    dag = chain_fingerprints(DIAMOND4, 4)
    assert dag[0] == lin[0] and dag[1] == lin[1]  # identical lineage
    assert dag[2] != lin[2] and dag[3] != lin[3]


def test_multi_parent_fingerprint_is_parent_order_invariant():
    """A join's output is the reduce over the union of its parents'
    records — listing the parents in another order is the same
    computation and must share the cache entry."""
    import dataclasses
    swapped = dataclasses.replace(
        DIAMOND4, dependencies=((), (1,), (1,), (3, 2)))
    assert chain_fingerprints(swapped, 4)[3] == \
        chain_fingerprints(DIAMOND4, 4)[3]


def test_linear_fingerprint_scheme_is_byte_stable():
    """Byte-compat pin: on a linear chain the DAG-aware hash must equal
    the historical ``fp[j] = md5("job:j:" + fp[j-1])`` chain, so cache
    state persisted by older services stays valid."""
    import hashlib

    identity = json.dumps({
        "seed": CHAIN3.seed,
        "records_per_node": CHAIN3.records_per_node,
        "value_size": CHAIN3.value_size,
        "n_nodes": 4,
        "n_partitions": CHAIN3.n_partitions,
        "udf": udf_identity(),
    }, sort_keys=True).encode()
    digest = hashlib.md5(b"chain-input:" + identity).hexdigest()
    legacy = []
    for job in range(1, CHAIN3.n_jobs + 1):
        digest = hashlib.md5(f"job:{job}:{digest}".encode()).hexdigest()
        legacy.append(digest)
    assert chain_fingerprints(CHAIN3, 4) == legacy


def test_adoptable_prefix_contiguity():
    assert adoptable_prefix([]) == 0
    assert adoptable_prefix([1, 2, 3]) == 3
    assert adoptable_prefix([1, 3]) == 1     # gap truncates
    assert adoptable_prefix([2, 3]) == 0     # missing job 1: nothing
    assert adoptable_prefix([3, 1, 2, 5]) == 3


# -------------------------------------------------------- registry (unit)
def _seed_chain_files(root, chain_id: str, jobs, n_partitions: int = 2,
                      payload: bytes = b"x" * 64) -> ClusterRegistry:
    """Write synthetic piece files for ``jobs`` under ``chain_id``'s
    namespace (partition p on node p) and return a matching registry."""
    registry = ClusterRegistry()
    for job in jobs:
        for partition in range(n_partitions):
            NodeStore(root, partition, chain=chain_id).write_piece_bytes(
                job, partition, 0, 1, payload)
            registry.add_piece(PieceEntry(job, partition, 0, 1,
                                          partition, 4))
    return registry


def test_registry_admit_adopt_roundtrip(tmp_path):
    fps = ["fp-a", "fp-b", "fp-c"]
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[1, 2, 3])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert cache.admit(fps, "c0001", registry) == 3
    adopted = cache.adopt(fps, "c0002")
    assert [e.job for e in adopted] == [1, 2, 3]
    assert all(p.chain == "c0001" for e in adopted for p in e.pieces)
    assert cache.hits == 3 and cache.misses == 0
    assert cache.kept_jobs("c0001") == {1, 2, 3}
    assert cache.kept_jobs("c0002") == set()


def test_registry_adopt_stops_at_gap_and_counts_misses(tmp_path):
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[1, 3])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    # job 2 has no surviving pieces, so only fp-a and fp-c are admitted
    assert cache.admit(["fp-a", "fp-b", "fp-c"], "c0001", registry) == 2
    # the new chain wants all three: job 2 is uncached, so adoption
    # must stop at job 1 even though job 3 is resident
    adopted = cache.adopt(["fp-a", "fp-b", "fp-c"], "c0002")
    assert [e.job for e in adopted] == [1]
    assert cache.hits == 1 and cache.misses == 2


def test_registry_admit_skips_incomplete_coverage(tmp_path):
    """A hybrid-reclaimed job has no registry coverage left — admission
    must skip it rather than cache dangling paths."""
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[2])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert cache.admit(["fp-a", "fp-b"], "c0001", registry) == 1
    assert {e.job for e in cache.entries.values()} == {2}


def test_registry_persistence_and_disk_rescan(tmp_path):
    fps = ["fp-a", "fp-b"]
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[1, 2])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    cache.admit(fps, "c0001", registry)

    reloaded = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert reloaded.load() == 2
    assert reloaded.adopt(fps, "c0002") and reloaded.hits == 2

    # delete one of job 2's files out-of-band: the rescan must drop the
    # entry (and only it)
    victim = NodeStore(tmp_path, 0, chain="c0001").piece_path(2, 0, 0, 1)
    victim.unlink()
    rescanned = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert rescanned.load() == 1
    assert [e.job for e in rescanned.adopt(fps, "c0003")] == [1]


def test_registry_lru_eviction_unlinks_files(tmp_path):
    payload = b"y" * 100
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[1, 2, 3],
                                 payload=payload)
    # room for two entries of 200B each
    cache = CacheRegistry(tmp_path, budget_bytes=450)
    cache.admit(["fp-a", "fp-b", "fp-c"], "c0001", registry)
    assert cache.evictions == 1
    survivors = {e.job for e in cache.entries.values()}
    assert survivors == {2, 3}  # oldest-admitted (job 1) evicted first
    assert not NodeStore(tmp_path, 0, chain="c0001").piece_path(
        1, 0, 0, 1).exists()
    # the eviction is persisted
    reloaded = CacheRegistry(tmp_path, budget_bytes=450)
    assert reloaded.load() == 2


def test_registry_eviction_never_touches_pinned_entries(tmp_path):
    payload = b"z" * 100
    registry = _seed_chain_files(tmp_path, "cA", jobs=[1], payload=payload)
    cache = CacheRegistry(tmp_path, budget_bytes=250)
    cache.admit(["fp-a"], "cA", registry)
    assert cache.adopt(["fp-a"], "cB")  # pins fp-a
    registry2 = _seed_chain_files(tmp_path, "cC", jobs=[2],
                                  payload=payload)
    cache.admit(["fp-a", "fp-c"], "cC", registry2)
    # over budget, but the pinned entry survives; its files are intact
    assert "fp-a" in cache.entries
    assert NodeStore(tmp_path, 0, chain="cA").piece_path(
        1, 0, 0, 1).exists()
    cache.release("cB")
    # unpinned now: the next admission pass may evict it
    cache.admit(["fp-a", "fp-c"], "cC", registry2)
    assert cache.total_bytes <= 250


def test_registry_death_dooms_pinned_drops_unpinned(tmp_path):
    registry = _seed_chain_files(tmp_path, "cA", jobs=[1, 2])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    cache.admit(["fp-a", "fp-b"], "cA", registry)
    cache.adopt(["fp-a"], "cB")           # pin job 1 only
    assert cache.on_death(0) == 2         # node 0 held a piece of both
    assert not cache.entries
    # unpinned job 2: its surviving node-1 file is gone immediately
    assert not NodeStore(tmp_path, 1, chain="cA").piece_path(
        2, 1, 0, 1).exists()
    # pinned job 1: survivors stay on disk until the adopter releases
    pinned_file = NodeStore(tmp_path, 1, chain="cA").piece_path(1, 1, 0, 1)
    assert pinned_file.exists()
    cache.release("cB")
    assert not pinned_file.exists()


def test_adopt_takes_dependency_closure_on_a_dag(tmp_path):
    """With the diamond's graph, a resident {1, 3} adopts both — the
    cached branch survives the missing sibling; the linear default
    would stop at the job-2 gap."""
    fps = ["fp-a", "fp-b", "fp-c", "fp-d"]
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[1, 3])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert cache.admit(fps, "c0001", registry) == 2
    graph = JobGraph(((), (1,), (1,), (2, 3)))
    adopted = cache.adopt(fps, "c0002", graph=graph)
    assert sorted(e.job for e in adopted) == [1, 3]
    assert cache.hits == 2 and cache.misses == 2
    # the same residency under the linear default stops at the gap
    assert [e.job for e in cache.adopt(fps, "c0003")] == [1]


def test_invalidation_prunes_only_the_entry_namespace(tmp_path):
    """Unlinking an invalidated entry prunes the empty dirs it leaves —
    up to its own chain namespace and no further (regression: a fixed
    parent count could walk past the namespace root and delete node
    state the cache never owned)."""
    registry = _seed_chain_files(tmp_path, "cA", jobs=[1])
    _seed_chain_files(tmp_path, "cB", jobs=[1])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    cache.admit(["fp-a"], "cA", registry)
    # one file vanishes out-of-band: adoption invalidates the entry and
    # unlinks its survivor, pruning cA's now-empty namespace dirs
    NodeStore(tmp_path, 0, chain="cA").piece_path(1, 0, 0, 1).unlink()
    assert cache.adopt(["fp-a"], "cC") == []
    assert cache.stats()["invalidated"] == 1
    for node in (tmp_path / "node000", tmp_path / "node001"):
        assert not (node / "chains" / "cA").exists()
        assert (node / "chains" / "cB").is_dir()  # sibling untouched
        assert node.is_dir()                      # node root survives


def test_rescan_counts_and_persists_dropped_entries(tmp_path):
    registry = _seed_chain_files(tmp_path, "c0001", jobs=[1, 2])
    cache = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    cache.admit(["fp-a", "fp-b"], "c0001", registry)
    assert cache.stats()["rescan_invalidated"] == 0

    NodeStore(tmp_path, 0, chain="c0001").piece_path(2, 0, 0, 1).unlink()
    rescanned = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert rescanned.load() == 1
    stats = rescanned.stats()
    assert stats["rescan_invalidated"] == 1
    assert stats["invalidated"] == 1  # rescan drops are a subset

    # a clean restart carries the counter forward instead of resetting
    again = CacheRegistry(tmp_path, budget_bytes=1 << 20)
    assert again.load() == 1
    assert again.stats()["rescan_invalidated"] == 1


def test_scan_chain_sequence(tmp_path):
    assert scan_chain_sequence(tmp_path) == 0
    for node, cid in ((0, "c0002"), (1, "c0017"), (0, "weird")):
        (tmp_path / f"node{node:03d}" / "chains" / cid).mkdir(parents=True)
    assert scan_chain_sequence(tmp_path) == 17


def test_sweep_chain_keeps_only_cached_reduce_jobs(tmp_path):
    store = NodeStore(tmp_path, 0, chain="c0001")
    store.write_map_output(1, 0, None, {0: []})
    store.write_piece_bytes(1, 0, 0, 1, b"one")
    store.write_piece_bytes(2, 0, 0, 1, b"two")
    freed = store.sweep_chain(keep_reduce_jobs={2})
    assert freed > 0
    assert not (store.dir / "map").exists()
    assert not store.piece_path(1, 0, 0, 1).exists()
    assert store.piece_path(2, 0, 0, 1).exists()
    # nothing kept: the namespace dir itself goes away
    other = NodeStore(tmp_path, 1, chain="c0009")
    other.write_piece_bytes(1, 0, 0, 1, b"gone")
    other.sweep_chain(keep_reduce_jobs=())
    assert not other.dir.exists()


def test_sweep_chain_rejects_unnamespaced_store(tmp_path):
    with pytest.raises(ValueError, match="chain namespaces"):
        NodeStore(tmp_path, 0).sweep_chain(())


# ------------------------------------------------------ service scenarios
@pytest.mark.slow
def test_service_full_hit_prefix_hit_and_no_cache(tmp_path):
    with ChainService(_config(), tmp_path / "svc",
                      cache_budget=64 << 20) as svc:
        cold = svc.submit(CHAIN3)
        svc.wait(cold.id, timeout=60)
        assert cold.state == "done" and cold.adopted_jobs == 0
        assert cold.report.checksum == reference_checksum(CHAIN3)

        warm = svc.submit(CHAIN3)
        svc.wait(warm.id, timeout=60)
        assert warm.adopted_jobs == 3
        assert [k for _, k, _ in warm.report.job_times] == ["cached"] * 3
        assert warm.report.checksum == reference_checksum(CHAIN3)

        longer = svc.submit(CHAIN5)
        svc.wait(longer.id, timeout=60)
        assert longer.adopted_jobs == 3
        assert [k for _, k, _ in longer.report.job_times] == \
            ["cached"] * 3 + ["run"] * 2
        assert longer.report.checksum == reference_checksum(CHAIN5)

        opt_out = svc.submit(CHAIN3, no_cache=True)
        svc.wait(opt_out.id, timeout=60)
        assert opt_out.adopted_jobs == 0
        assert opt_out.report.checksum == reference_checksum(CHAIN3)

        stats = svc.cache.stats()
        assert stats["hits"] == 6 and stats["misses"] == 5
        assert stats["evictions"] == 0
        status = svc.status()
        assert status["cache"]["hits"] == 6
        assert [j["cached_jobs"] for j in status["jobs"]] == [0, 3, 3, 0]


@pytest.mark.slow
def test_service_close_sweeps_non_cached_namespaces(tmp_path):
    """Workdir hygiene: with caching off every finished chain's
    namespace disappears; with caching on only cached reduce jobs
    survive."""
    wd = tmp_path / "svc"
    with ChainService(_config(), wd) as svc:  # cache disabled
        job = svc.submit(CHAIN3)
        svc.wait(job.id, timeout=60)
        deadline = time.monotonic() + 5.0
        while list(wd.glob("node*/chains/*")) and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert list(wd.glob("node*/chains/*")) == []

    wd2 = tmp_path / "svc2"
    with ChainService(_config(), wd2, cache_budget=64 << 20) as svc:
        job = svc.submit(CHAIN3)
        svc.wait(job.id, timeout=60)
        deadline = time.monotonic() + 5.0
        while list(wd2.glob("node*/chains/*/map")) and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        # map outputs swept everywhere; cached reduce jobs survive
        assert list(wd2.glob("node*/chains/*/map")) == []
        assert list(wd2.glob("node*/chains/*/reduce/job*"))


@pytest.mark.slow
def test_service_repl_chains_skip_adoption_but_feed_the_cache(tmp_path):
    """REPL-k recovery cannot recompute an adopted sole-copy piece, so
    replicated chains run cold — but their outputs are admitted and a
    later rcmp chain adopts them."""
    with ChainService(_config(), tmp_path / "svc",
                      cache_budget=64 << 20) as svc:
        first = svc.submit(CHAIN3, strategy="repl2")
        svc.wait(first.id, timeout=60)
        assert first.state == "done" and first.adopted_jobs == 0

        second = svc.submit(CHAIN3, strategy="repl2")
        svc.wait(second.id, timeout=60)
        assert second.adopted_jobs == 0  # repl chains never adopt

        third = svc.submit(CHAIN3)  # rcmp
        svc.wait(third.id, timeout=60)
        assert third.adopted_jobs == 3
        assert third.report.checksum == reference_checksum(CHAIN3)


@pytest.mark.slow
def test_service_restart_rescans_and_reuses_the_cache(tmp_path):
    wd = tmp_path / "svc"
    with ChainService(_config(), wd, cache_budget=64 << 20) as svc:
        job = svc.submit(CHAIN3)
        svc.wait(job.id, timeout=60)
        assert job.state == "done"

    with ChainService(_config(), wd, cache_budget=64 << 20) as svc:
        assert len(svc.cache.entries) == 3  # rescan verified the files
        assert svc._seq >= 1               # ids never collide with c0001
        warm = svc.submit(CHAIN3)
        assert warm.id != "c0001"
        svc.wait(warm.id, timeout=60)
        assert warm.adopted_jobs == 3
        assert warm.report.checksum == reference_checksum(CHAIN3)


@pytest.mark.slow
def test_kill_during_cached_prefix_recomputes_and_matches(tmp_path):
    """The differential proof: a node death while a chain rides adopted
    pieces turns the cache loss into ordinary RCMP damage — the cascade
    recomputes the adopted jobs and the checksum stays byte-identical
    to the cold reference."""
    with ChainService(_config(), tmp_path / "svc",
                      cache_budget=64 << 20) as svc:
        cold = svc.submit(CHAIN3)
        svc.wait(cold.id, timeout=60)

        victim = svc.submit(CHAIN5)  # adopts jobs 1-3, runs 4-5
        while victim.state == "queued":
            time.sleep(0.005)
        svc.pool.kill_node(1)        # holds one adopted piece per job
        svc.wait(victim.id, timeout=120)
        assert victim.state == "done"
        assert victim.adopted_jobs == 3
        assert len(victim.report.deaths) == 1
        kinds = [k for _, k, _ in victim.report.job_times]
        assert "recompute" in kinds  # adopted pieces were re-derived
        assert victim.report.checksum == reference_checksum(CHAIN5)
        # the dead node invalidated every entry it held a piece of
        assert svc.cache.stats()["invalidated"] >= 3


@pytest.mark.slow
def test_service_eviction_under_tiny_budget_stays_correct(tmp_path):
    """A budget too small for two chains evicts LRU entries (unlinking
    their files); an evicted chain simply runs cold again — and
    correctly."""
    other = LocalJobConfig(n_jobs=3, n_partitions=4, records_per_node=48,
                           records_per_block=16, seed=9)
    # one CHAIN3-sized chain caches ~15KB: room for one chain, not two
    with ChainService(_config(), tmp_path / "svc",
                      cache_budget=16000) as svc:
        a = svc.submit(CHAIN3)
        svc.wait(a.id, timeout=60)
        b = svc.submit(other)
        svc.wait(b.id, timeout=60)
        assert svc.cache.stats()["evictions"] >= 1
        assert svc.cache.stats()["bytes"] <= 16000
        again = svc.submit(CHAIN3)
        svc.wait(again.id, timeout=60)
        assert again.state == "done"
        assert again.report.checksum == reference_checksum(CHAIN3)


@pytest.mark.slow
def test_cache_registry_file_is_valid_json(tmp_path):
    wd = tmp_path / "svc"
    with ChainService(_config(), wd, cache_budget=64 << 20) as svc:
        job = svc.submit(CHAIN3)
        svc.wait(job.id, timeout=60)
    state = json.loads((wd / "cache_registry.json").read_text())
    assert state["version"] == 1
    assert len(state["entries"]) == 3
    assert state["counters"]["misses"] == 3
