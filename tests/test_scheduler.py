"""Tests for task placement (locality, balance, explicit assignment)."""

import pytest

from repro.cluster import presets
from repro.cluster.topology import Cluster
from repro.mapreduce.scheduler import assign_tasks, spread_reducers
from repro.mapreduce.types import JobPlan, MapInput, MapTaskSpec, ReduceTaskSpec
from repro.simcore import SeedSequenceRegistry, Simulator

MB = 1 << 20
BLOCK = 64 * MB


def make_cluster(n=4, slots=(1, 1)):
    sim = Simulator()
    return Cluster(sim, presets.tiny(n, slots), SeedSequenceRegistry(5))


def balanced_plan(n_nodes, maps_per_node=2, **kw):
    tasks = []
    tid = 0
    for node in range(n_nodes):
        for _ in range(maps_per_node):
            tasks.append(MapTaskSpec(tid, MapInput(BLOCK, (node,)), BLOCK))
            tid += 1
    reducers = [ReduceTaskSpec(i, i) for i in range(n_nodes)]
    return JobPlan(1, "j", "initial", tasks, reducers, n_nodes, **kw)


def test_locality_honored_in_balanced_plan():
    cluster = make_cluster(4)
    plan = balanced_plan(4)
    placement = assign_tasks(cluster, plan)
    for task in plan.map_tasks:
        assert placement.mappers[task.task_id] == task.input.locations[0]


def test_reducers_balanced_round_robin():
    cluster = make_cluster(4)
    plan = balanced_plan(4)
    placement = assign_tasks(cluster, plan)
    nodes = sorted(placement.reducers.values())
    assert nodes == [0, 1, 2, 3]


def test_dead_node_excluded():
    cluster = make_cluster(4)
    cluster.kill_node(2)
    plan = balanced_plan(4)
    placement = assign_tasks(cluster, plan)
    assert 2 not in placement.mappers.values()
    assert 2 not in placement.reducers.values()


def test_explicit_assignments_honored():
    cluster = make_cluster(4)
    plan = balanced_plan(4)
    plan.mapper_assignment = {0: 3, 1: 3}
    plan.reducer_assignment = {0: 1}
    placement = assign_tasks(cluster, plan)
    assert placement.mappers[0] == 3 and placement.mappers[1] == 3
    assert placement.reducers[0] == 1


def test_explicit_assignment_to_dead_node_falls_back():
    cluster = make_cluster(4)
    cluster.kill_node(3)
    plan = balanced_plan(4)
    plan.mapper_assignment = {0: 3}
    placement = assign_tasks(cluster, plan)
    assert placement.mappers[0] != 3


def test_locality_cap_prevents_single_node_serialization():
    """All inputs on one node: the scheduler must spill the excess to other
    nodes instead of queueing 8 waves on the popular one."""
    cluster = make_cluster(4, slots=(1, 1))
    tasks = [MapTaskSpec(i, MapInput(BLOCK, (0,)), BLOCK) for i in range(8)]
    plan = JobPlan(1, "j", "initial", tasks, [ReduceTaskSpec(0, 0)], 1)
    placement = assign_tasks(cluster, plan)
    on_zero = sum(1 for n in placement.mappers.values() if n == 0)
    assert on_zero < 8
    assert set(placement.mappers.values()) == {0, 1, 2, 3}


def test_spread_reducers_round_robin_with_exclusion():
    tasks = [ReduceTaskSpec(i, 0, fraction=0.25, split_index=i, n_splits=4)
             for i in range(4)]
    assignment = spread_reducers(tasks, alive=[0, 1, 2, 3], exclude={1})
    assert set(assignment.values()) <= {0, 2, 3}
    assert len(assignment) == 4


def test_no_alive_nodes_raises():
    cluster = make_cluster(2)
    cluster.kill_node(0)
    cluster.kill_node(1)
    plan = balanced_plan(2)
    with pytest.raises(RuntimeError):
        assign_tasks(cluster, plan)
