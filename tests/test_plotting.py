"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plotting import bar_chart, cdf_plot, line_plot


def test_line_plot_renders_all_series():
    text = line_plot({
        "a": ([0, 1, 2], [1.0, 2.0, 3.0]),
        "b": ([0, 1, 2], [3.0, 2.0, 1.0]),
    }, title="demo", x_label="t")
    assert "demo" in text
    assert "o=a" in text and "x=b" in text
    assert "o" in text and "x" in text
    assert "[t]" in text
    # axis labels carry the extremes
    assert "3.00" in text and "1.00" in text


def test_line_plot_requires_data():
    with pytest.raises(ValueError):
        line_plot({})


def test_line_plot_constant_series():
    text = line_plot({"flat": ([0, 1], [5.0, 5.0])})
    assert "o" in text  # degenerate y-range handled


def test_cdf_plot_monotone_axis():
    text = cdf_plot({"d": [1.0, 2.0, 2.0, 5.0]}, title="cdf demo")
    assert "CDF (%)" in text
    assert "100.00" in text


def test_bar_chart():
    text = bar_chart({"RCMP": 1.0, "REPL-3": 1.75}, unit="x",
                     title="slowdown")
    lines = text.splitlines()
    assert lines[0] == "slowdown"
    rcmp_bar = lines[1].split("|")[1]
    repl_bar = lines[2].split("|")[1]
    assert len(repl_bar) > len(rcmp_bar)
    with pytest.raises(ValueError):
        bar_chart({})


def test_bar_chart_rejects_nonpositive_peak():
    with pytest.raises(ValueError):
        bar_chart({"a": 0.0})


def test_plots_from_real_experiment_series():
    from repro.experiments import fig2
    series = fig2.series("ci", seed=1)
    text = line_plot(series, title="Fig. 2 CDF", x_label="failures/day")
    assert "STIC" in text and "SUG@R" in text
