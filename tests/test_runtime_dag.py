"""End-to-end DAG execution and recovery across both backends.

The linear-chain matrix lives in ``test_runtime_process``; this suite
covers non-linear dependency graphs — the shapes ``--dag`` exposes —
end to end:

* wave scheduling: independent jobs of one dependency level dispatch as
  a single combined wave (``map-2+3`` phases) and recover the same way;
* graph-cut recovery: a kill mid-DAG recomputes only the damaged
  branches, in topological levels, with sibling branches untouched;
* multi-sink output: the cuboid lattice's final result is the union of
  every sink job's partitions, keyed per sink band;
* the differential matrix: diamond and data-cube runs under single and
  double kills must reproduce the failure-free in-process checksum
  byte-for-byte for every strategy.
"""

import pytest

from repro.localexec import LocalCluster, LocalJobConfig, recover_and_finish
from repro.obs import RecordingTracer
from repro.runtime.coordinator import Coordinator, RuntimeConfig
from repro.runtime.recovery import STRIDE
from repro.runtime.storage import chain_checksum
from repro.workloads import cube_dependencies, cuboids, shape_dependencies
from tests.test_runtime_process import (
    KillAt,
    KillPlan,
    reference_checksum,
    run_process_chain,
    spans,
)

DIAMOND = LocalJobConfig(n_jobs=4, n_partitions=4, records_per_node=48,
                         records_per_block=16, split_ratio=2, seed=0,
                         dependencies=shape_dependencies("diamond"))
CUBE3 = LocalJobConfig(n_jobs=8, n_partitions=4, records_per_node=48,
                       records_per_block=16, split_ratio=2, seed=0,
                       dependencies=cube_dependencies(3))


def reference_output(config, n_nodes=4):
    cluster = LocalCluster(n_nodes, config)
    for job in range(1, config.n_jobs + 1):
        cluster.run_job(job)
    return cluster.final_output()


# ------------------------------------------------------------- spec guards
def test_every_entry_point_rejects_malformed_dependencies():
    """Reject-or-run must be exhaustive: a malformed ``depends_on`` spec
    raises ``ValueError`` at config construction, before any entry point
    (CLI, service submit, coordinator, localexec) could silently run it
    as a linear chain."""
    malformed = [
        ((), (1, 1), (1,)),   # duplicate edge
        ((), (3,), (1,)),     # forward edge
        ((), (2,), (1,)),     # self edge
        ((1,), (1,), (2,)),   # job 1 depending on itself
        ((), (1,)),           # wrong length
    ]
    for deps in malformed:
        with pytest.raises(ValueError):
            LocalJobConfig(n_jobs=3, dependencies=deps)
    with pytest.raises(ValueError):
        shape_dependencies("mobius")
    with pytest.raises(ValueError):
        shape_dependencies("diamond:7")  # takes no parameter
    with pytest.raises(ValueError):
        cuboids(0)


def test_cube_lattice_structure():
    assert cuboids(2) == [(0, 1), (0,), (1,), ()]
    assert cube_dependencies(3) == \
        ((), (1,), (1,), (1,), (2,), (2,), (3,), (5,))
    graph = CUBE3.graph()
    assert graph.sinks() == (4, 6, 7, 8)
    assert graph.topo_levels(range(1, 9)) == \
        [[1], [2, 3, 4], [5, 6, 7], [8]]


# ------------------------------------------------------ in-process backend
def test_localexec_multi_sink_output_bands():
    # single sink: plain partition keys, checksums unchanged
    assert set(reference_output(DIAMOND)) == set(range(4))
    # three sinks (jobs 2, 3, 4): each sink's partitions get their own
    # STRIDE band, in sink order
    fanout = LocalJobConfig(n_jobs=4, n_partitions=4, records_per_node=48,
                            records_per_block=16, seed=0,
                            dependencies=shape_dependencies("fanout:3"))
    assert set(reference_output(fanout)) == \
        {pos * STRIDE + p for pos in range(3) for p in range(4)}


def test_localexec_incomplete_sink_is_an_error():
    cluster = LocalCluster(4, DIAMOND)
    cluster.run_job(1)
    with pytest.raises(RuntimeError, match="sink job"):
        cluster.final_output()


@pytest.mark.parametrize("config", [DIAMOND, CUBE3],
                         ids=["diamond", "cube3"])
def test_localexec_dag_kill_recovery_byte_identical(config):
    expected = chain_checksum(reference_output(config))
    cluster = LocalCluster(4, config)
    for job in range(1, config.n_jobs + 1):
        cluster.run_job(job)
    cluster.kill(1)
    recover_and_finish(cluster)
    assert chain_checksum(cluster.final_output()) == expected


def test_localexec_mid_lattice_kill_recovers():
    cluster = LocalCluster(4, CUBE3)
    for job in range(1, 6):
        cluster.run_job(job)
    cluster.kill(2)
    recover_and_finish(cluster)
    assert chain_checksum(cluster.final_output()) == \
        chain_checksum(reference_output(CUBE3))


# -------------------------------------------------------- process backend
def test_process_diamond_runs_in_waves_and_matches_inproc(tmp_path):
    tracer = RecordingTracer()
    report = run_process_chain(tmp_path, chain=DIAMOND, tracer=tracer)
    assert report.checksum == reference_checksum(DIAMOND)
    # the independent branch jobs 2 and 3 dispatched as one wave...
    assert any(e["args"].get("phase") == "map-2+3"
               for e in spans(tracer, "task"))
    # ...and committed with the same wave wall time
    walls = {j: w for j, _, w in report.job_times}
    assert walls[2] == walls[3]
    assert [j for j, _, _ in report.job_times] == [1, 2, 3, 4]


def test_process_dag_kill_recomputes_branches_in_parallel(tmp_path):
    """A node death after job 3 damages all three committed diamond
    jobs: recovery must recompute in topological levels — the shared
    producer first, then both branches as one combined wave whose tasks
    really interleave across workers."""
    tracer = RecordingTracer()
    hooks = KillAt("job-commit", job=3, victims=[1])
    report = run_process_chain(tmp_path, chain=DIAMOND, hooks=hooks,
                               tracer=tracer)
    assert report.checksum == reference_checksum(DIAMOND)
    assert [n for _, n in report.deaths] == [1]
    assert [(j, k) for j, k, _ in report.job_times if k == "recompute"] \
        == [(1, "recompute"), (2, "recompute"), (3, "recompute")]
    wave = [e for e in spans(tracer, "task")
            if e["args"].get("phase", "").endswith("-2+3")]
    assert wave, "branches 2 and 3 must recompute as one combined wave"
    assert len({e["tid"] for e in wave}) >= 2  # spread over workers
    # trace-verified overlap: both branch recompute spans open at once
    jspans = {e["name"]: e for e in spans(tracer, "job")}
    a, b = jspans["job-2-recompute"], jspans["job-3-recompute"]
    assert a["ts"] < b["ts"] + b["dur"] and b["ts"] < a["ts"] + a["dur"]


def test_cube_branch_damage_cascades_only_that_branch(tmp_path):
    """The planner cut on the real coordinator: damage confined to one
    lattice branch recomputes that branch alone, and mid-lattice damage
    behind done intact consumers recomputes nothing."""
    coord = Coordinator(RuntimeConfig(n_nodes=4, chain=CUBE3),
                        tmp_path / "cluster")
    coord.done_jobs = set(range(1, 9))
    # branch 1 -> 3 -> 7 loses pieces; branches through 2 are untouched
    coord.registry.damage = {3: {0: [(0, 1)]}, 7: {0: [(0, 1)]}}
    assert coord._cascade_jobs() == [3, 7]
    # damage shielded by done, intact consumers is outside the cut
    coord.registry.damage = {2: {0: [(0, 1)]}}
    assert coord._cascade_jobs() == []


# --------------------------------------------------- differential matrix
@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["rcmp", "optimistic", "repl2",
                                      "hybrid"])
@pytest.mark.parametrize("scenario", ["single", "double"])
@pytest.mark.parametrize("shape", ["diamond", "cube"])
def test_dag_differential_matrix(tmp_path, shape, scenario, strategy):
    """The DAG columns of the acceptance matrix: diamond and data-cube
    runs under mid-DAG single and spaced double kills must reproduce
    the failure-free in-process checksum byte-for-byte under every
    strategy."""
    chain = {"diamond": DIAMOND, "cube": CUBE3}[shape]
    mid = {"diamond": 2, "cube": 5}[shape]
    triggers = {"single": [("job-commit", mid, 1)],
                "double": [("job-commit", 1, 1),
                           ("job-commit", mid, 2)]}[scenario]
    hooks = KillPlan(*triggers)
    victims = hooks.victims
    report = run_process_chain(tmp_path, chain=chain, hooks=hooks,
                               strategy=strategy)
    assert report.checksum == reference_checksum(chain)
    assert sorted(n for _, n in report.deaths) == victims
    assert report.strategy == strategy


@pytest.mark.slow
def test_cube_clean_run_schedules_by_level(tmp_path):
    tracer = RecordingTracer()
    report = run_process_chain(tmp_path, chain=CUBE3, tracer=tracer)
    assert report.checksum == reference_checksum(CUBE3)
    phases = {e["args"].get("phase") for e in spans(tracer, "task")}
    assert {"map-1", "map-2+3+4", "map-5+6+7", "map-8"} <= phases


@pytest.mark.slow
def test_cube_hybrid_with_reclaim_kill_recovers(tmp_path):
    hooks = KillAt("job-commit", job=6, victims=[2])
    report = run_process_chain(tmp_path, chain=CUBE3, hooks=hooks,
                               strategy="hybrid", hybrid_interval=2,
                               hybrid_reclaim=True)
    assert report.checksum == reference_checksum(CUBE3)
    assert [n for _, n in report.deaths] == [2]
