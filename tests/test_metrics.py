"""Tests for the metrics collection layer."""

import numpy as np
import pytest

from repro.mapreduce.metrics import JobRecord, RunMetrics, TaskRecord


def make_job(metrics, ordinal, kind="initial", start=0.0, end=100.0,
             outcome="done"):
    job = metrics.open_job(ordinal, ordinal, f"job{ordinal}", kind, start)
    job.end = end
    job.outcome = outcome
    return job


def add_task(job, task_type="map", task_id=0, start=0.0, end=10.0,
             outcome="done", node=0):
    record = TaskRecord(job.ordinal, job.kind, task_type, task_id, node,
                        start, end=end, outcome=outcome)
    job.tasks.append(record)
    return record


def test_task_duration_and_guards():
    record = TaskRecord(1, "initial", "map", 0, 0, 5.0, end=12.0)
    assert record.duration == 7.0
    with pytest.raises(ValueError):
        TaskRecord(1, "initial", "map", 0, 0, 5.0).duration


def test_job_duration_and_task_filtering():
    metrics = RunMetrics()
    job = make_job(metrics, 1, start=10.0, end=60.0)
    add_task(job, "map", 0, end=8.0)
    add_task(job, "map", 1, end=9.0, outcome="killed")
    add_task(job, "reduce", 0, end=20.0)
    assert job.duration == 50.0
    assert list(job.task_durations("map")) == [8.0]
    assert list(job.task_durations("map", outcome="killed")) == [9.0]
    assert list(job.task_durations("reduce")) == [20.0]


def test_total_runtime_spans_all_jobs():
    metrics = RunMetrics()
    make_job(metrics, 1, start=0.0, end=100.0)
    make_job(metrics, 2, start=100.0, end=250.0)
    assert metrics.total_runtime == 250.0
    assert metrics.n_jobs_started == 2


def test_kind_filters_and_durations():
    metrics = RunMetrics()
    make_job(metrics, 1, kind="initial", end=100.0)
    make_job(metrics, 2, kind="initial", start=100.0, end=190.0,
             outcome="aborted")
    make_job(metrics, 3, kind="recompute", start=190.0, end=220.0)
    make_job(metrics, 4, kind="rerun", start=220.0, end=330.0)
    assert len(metrics.completed_jobs()) == 3
    assert [j.ordinal for j in metrics.jobs_of_kind("recompute")] == [3]
    assert list(metrics.job_durations("recompute")) == [30.0]
    # aborted jobs excluded from duration stats
    assert list(metrics.job_durations("initial")) == [100.0]
    assert metrics.mean_initial_job_duration() == 100.0


def test_mean_initial_requires_completed_jobs():
    metrics = RunMetrics()
    with pytest.raises(ValueError):
        metrics.mean_initial_job_duration()


def test_pooled_mapper_and_reducer_durations():
    metrics = RunMetrics()
    j1 = make_job(metrics, 1, kind="recompute")
    add_task(j1, "map", 0, end=5.0)
    add_task(j1, "reduce", 0, end=30.0)
    j2 = make_job(metrics, 2, kind="rerun")
    add_task(j2, "map", 0, end=7.0)
    assert sorted(metrics.mapper_durations(("recompute",))) == [5.0]
    assert sorted(metrics.mapper_durations(("recompute", "rerun"))) == \
        [5.0, 7.0]
    assert list(metrics.reducer_durations(("recompute",))) == [30.0]
    assert metrics.mapper_durations(("initial",)).size == 0


def test_failures_and_summary():
    metrics = RunMetrics()
    make_job(metrics, 1)
    make_job(metrics, 2, kind="recompute", start=100.0, end=130.0)
    metrics.record_failure(50.0, 3)
    summary = metrics.summary()
    assert summary["jobs_started"] == 2
    assert summary["recomputations"] == 1
    assert summary["failures"] == [(50.0, 3)]


def test_empty_metrics_runtime_zero():
    assert RunMetrics().total_runtime == 0.0


def test_job_record_duration_guard():
    job = JobRecord(1, 1, "j", "initial", 0.0)
    with pytest.raises(ValueError):
        job.duration
    job.end = 10.0
    assert job.duration == 10.0


def test_durations_are_numpy_arrays():
    metrics = RunMetrics()
    job = make_job(metrics, 1)
    add_task(job, "map", 0, end=5.0)
    assert isinstance(metrics.job_durations(), np.ndarray)
    assert isinstance(job.task_durations("map"), np.ndarray)


def test_total_runtime_with_no_finished_jobs():
    """Regression: a chain aborted mid-first-job has jobs but no ends;
    total_runtime must return 0.0, not raise on max() of nothing."""
    metrics = RunMetrics()
    metrics.open_job(1, 1, "job1", "initial", 12.0)  # still running
    assert metrics.total_runtime == 0.0


def test_total_runtime_ignores_unfinished_jobs():
    metrics = RunMetrics()
    make_job(metrics, 1, start=10.0, end=110.0)
    metrics.open_job(2, 2, "job2", "initial", 110.0)  # never finishes
    assert metrics.total_runtime == 100.0


def test_summary_with_unfinished_jobs_does_not_raise():
    metrics = RunMetrics()
    metrics.open_job(1, 1, "job1", "initial", 0.0)
    summary = metrics.summary()
    assert summary["total_runtime"] == 0.0
    assert summary["jobs_started"] == 1
    assert summary["jobs_completed"] == 0
