"""Tests for HDFS-style post-failure re-replication."""

from repro.cluster import presets
from repro.cluster.topology import Cluster
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.dfs import DistributedFileSystem
from repro.simcore import SeedSequenceRegistry, Simulator
from repro.workloads.chain import build_chain

MB = 1 << 20


def make_dfs(n=4):
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(n), SeedSequenceRegistry(2))
    return sim, cluster, DistributedFileSystem(cluster, 64 * MB)


def test_under_replicated_detection():
    _sim, _cluster, dfs = make_dfs()
    dfs.seed_replicated("f", 128 * MB, replication=3)
    assert dfs.under_replicated() == []
    victim = dfs.meta("f").blocks[0].replicas[0]
    dfs.on_node_death(victim)
    under = dfs.under_replicated()
    assert under, "losing a replica must surface under-replication"
    for _meta, block in under:
        assert 0 < block.replication < 3


def test_restore_replication_brings_blocks_back_to_target():
    sim, cluster, dfs = make_dfs()
    dfs.seed_replicated("f", 128 * MB, replication=2)
    victim = dfs.meta("f").blocks[0].replicas[0]
    cluster.kill_node(victim)
    dfs.on_node_death(victim)

    def proc():
        yield dfs.restore_replication()

    sim.process(proc())
    sim.run()
    assert sim.now > 0  # real I/O happened
    for block in dfs.meta("f").blocks:
        assert block.replication == 2
        assert victim not in block.replicas
    assert dfs.under_replicated() == []


def test_restore_noop_when_fully_replicated():
    sim, _cluster, dfs = make_dfs()
    dfs.seed_replicated("f", 128 * MB, replication=2)

    def proc():
        yield dfs.restore_replication()

    sim.process(proc())
    sim.run()
    assert sim.now == 0.0


def test_restore_capped_by_alive_nodes():
    sim, cluster, dfs = make_dfs(n=3)
    dfs.seed_replicated("f", 64 * MB, replication=3)
    cluster.kill_node(0)
    dfs.on_node_death(0)
    # only 2 nodes remain: target is effectively 2
    def proc():
        yield dfs.restore_replication()

    sim.process(proc())
    sim.run()
    for block in dfs.meta("f").blocks:
        assert block.replication == 2


def test_repl_baseline_recovers_replication_end_to_end():
    """After a failure mid-chain, REPL-3 restores its intermediate outputs
    to 3 live replicas in the background."""
    chain = build_chain(n_jobs=3, per_node_input=256 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(5), strategies.REPL3, chain=chain,
                       failures="2")
    assert result.completed
    assert strategies.REPL3.re_replicate_after_failure
    # dfs_bytes reflects restored replicas: final outputs at full factor
    assert result.dfs_bytes > 0


def test_rcmp_does_not_re_replicate():
    assert not strategies.RCMP.re_replicate_after_failure
    chain = build_chain(n_jobs=2, per_node_input=256 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain,
                       failures="2")
    assert result.completed


def test_rereplication_traffic_slows_post_failure_jobs():
    """The paper-era HDFS restoration competes with the running chain."""
    import dataclasses
    chain = build_chain(n_jobs=4, per_node_input=512 * MB,
                        block_size=64 * MB)
    with_restore = run_chain(presets.tiny(5), strategies.REPL3, chain=chain,
                             failures="2")
    silent = dataclasses.replace(strategies.REPL3,
                                 re_replicate_after_failure=False)
    without = run_chain(presets.tiny(5), silent, chain=chain, failures="2")
    assert with_restore.total_runtime >= without.total_runtime
