"""Tests for cluster topology, specs, presets and failure injection."""

import pytest

from repro.cluster import presets
from repro.cluster.failures import FailureEvent, FailureInjector, FailurePlan
from repro.cluster.spec import MB, ClusterSpec, NodeSpec
from repro.cluster.topology import Cluster
from repro.simcore import Interrupt, SeedSequenceRegistry, Simulator


def make_cluster(spec=None):
    sim = Simulator()
    spec = spec or presets.tiny(4)
    return sim, Cluster(sim, spec, SeedSequenceRegistry(7))


# ------------------------------------------------------------------ specs
def test_spec_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        ClusterSpec(name="x", n_nodes=1).validate()
    with pytest.raises(ValueError):
        ClusterSpec(name="x", n_nodes=4, oversubscription=0.5).validate()
    with pytest.raises(ValueError):
        ClusterSpec(name="x", n_nodes=4,
                    node=NodeSpec(mapper_slots=0)).validate()
    ClusterSpec(name="ok", n_nodes=4).validate()


def test_with_slots_returns_modified_copy():
    base = presets.stic()
    two = base.with_slots(2, 2)
    assert base.node.mapper_slots == 1
    assert two.node.mapper_slots == 2 and two.node.reducer_slots == 2


def test_slow_shuffle_preset():
    spec = presets.stic_slow_shuffle()
    assert spec.shuffle_transfer_latency == 10.0
    assert presets.stic().shuffle_transfer_latency == 0.0


def test_paper_presets_shape():
    stic = presets.stic()
    assert stic.n_nodes == 10 and stic.n_racks == 1
    dco = presets.dco()
    assert dco.n_nodes == 60 and dco.n_racks == 3
    assert dco.node.task_overhead < stic.node.task_overhead  # JVM reuse


# --------------------------------------------------------------- topology
def test_paths_local_vs_remote():
    _sim, cluster = make_cluster()
    assert cluster.network_path(2, 2) == []
    remote = cluster.network_path(0, 1)
    assert cluster.nodes[0].nic_out in remote
    assert cluster.nodes[1].nic_in in remote
    read_local = cluster.read_path(3, 3)
    assert read_local == [cluster.nodes[3].disk]
    shuffle = cluster.shuffle_path(0, 1)
    assert shuffle[0] is cluster.nodes[0].disk
    assert shuffle[-1] is cluster.nodes[1].disk


def test_oversubscribed_interrack_uplink():
    spec = ClusterSpec(name="ov", n_nodes=6, n_racks=2, oversubscription=4.0,
                       node=NodeSpec())
    sim = Simulator()
    cluster = Cluster(sim, spec)
    same_rack = cluster.network_path(0, 2)   # both rack 0
    cross_rack = cluster.network_path(0, 1)  # racks 0 and 1
    assert len(cross_rack) == len(same_rack) + 2
    uplink = cross_rack[2]
    assert uplink.bandwidth == pytest.approx(3 * spec.node.nic_bandwidth / 4.0)


def test_kill_node_interrupts_tasks_and_flows():
    sim, cluster = make_cluster()
    node = cluster.nodes[1]
    interrupted = []

    def task():
        try:
            yield sim.timeout(1000.0)
        except Interrupt as intr:
            interrupted.append(intr.cause.node_id)

    proc = sim.process(task())
    node.register_task(proc)
    flow = cluster.network.transfer(1e9, [node.disk])

    def killer():
        yield sim.timeout(5.0)
        cluster.kill_node(1)

    def flow_watcher():
        try:
            yield flow.done
        except Exception:
            interrupted.append("flow-dead")

    sim.process(killer())
    sim.process(flow_watcher())
    sim.run()
    assert interrupted == ["flow-dead", 1] or interrupted == [1, "flow-dead"]
    assert not node.alive
    assert cluster.alive_ids() == [0, 2, 3]


def test_on_death_callbacks_fire():
    sim, cluster = make_cluster()
    seen = []
    cluster.nodes[2].on_death(lambda n: seen.append(n.node_id))
    cluster.kill_node(2)
    assert seen == [2]
    cluster.kill_node(2)  # idempotent
    assert seen == [2]


# --------------------------------------------------------------- failures
def test_failure_plan_parse():
    plan = FailurePlan.parse("FAIL 2,4")
    assert [(e.at_job, e.offset) for e in plan.events] == [(2, 15.0), (4, 15.0)]
    same = FailurePlan.parse("7,7")
    assert [(e.at_job, e.offset) for e in same.events] == [(7, 15.0), (7, 30.0)]
    single = FailurePlan.parse("2")
    assert single.n_failures == 1
    with pytest.raises(ValueError):
        FailurePlan.parse("1,2,3")


def test_failure_plan_clamp():
    plan = FailurePlan.double(7, 14).clamp_to(7)
    assert [e.at_job for e in plan.events] == [7, 7]
    assert plan.events[1].offset > plan.events[0].offset


def test_failure_event_validation():
    with pytest.raises(ValueError):
        FailureEvent(at_job=0)
    with pytest.raises(ValueError):
        FailureEvent(at_job=1, offset=-1.0)


def test_injector_kills_at_offset_after_job_start():
    sim, cluster = make_cluster()
    plan = FailurePlan.single(at_job=2, offset=15.0, node_id=3)
    injector = FailureInjector(cluster, plan)

    def driver():
        injector.notify_job_start(1)
        yield sim.timeout(100.0)
        injector.notify_job_start(2)
        yield sim.timeout(50.0)

    sim.process(driver())
    sim.run()
    assert injector.killed == [(115.0, 3)]
    assert not cluster.nodes[3].alive


def test_injector_random_victim_is_alive_and_deterministic():
    def run():
        sim, cluster = make_cluster()
        plan = FailurePlan.single(at_job=1, offset=1.0)
        injector = FailureInjector(cluster, plan)

        def driver():
            injector.notify_job_start(1)
            yield sim.timeout(10.0)

        sim.process(driver())
        sim.run()
        return injector.killed

    a, b = run(), run()
    assert a == b
    assert len(a) == 1


def test_injector_double_failure_same_job():
    sim, cluster = make_cluster()
    plan = FailurePlan.double(1, 1)
    injector = FailureInjector(cluster, plan)

    def driver():
        injector.notify_job_start(1)
        yield sim.timeout(60.0)

    sim.process(driver())
    sim.run()
    assert len(injector.killed) == 2
    assert injector.killed[0][0] == 15.0
    assert injector.killed[1][0] == 30.0
    assert injector.killed[0][1] != injector.killed[1][1]
    assert injector.outstanding == 0


def test_injector_on_kill_callback():
    sim, cluster = make_cluster()
    seen = []
    injector = FailureInjector(cluster, FailurePlan.single(1, 1.0, node_id=0),
                               on_kill=lambda n: seen.append(n.node_id))

    def driver():
        injector.notify_job_start(1)
        yield sim.timeout(5.0)

    sim.process(driver())
    sim.run()
    assert seen == [0]


def test_disk_bandwidth_from_preset_is_mb_scale():
    spec = presets.tiny(disk_mb_s=50.0)
    assert spec.node.disk_bandwidth == 50.0 * MB
