"""Unit tests for the shared RCMP recovery planner and live fault plans.

The planner (:mod:`repro.runtime.recovery`) is consumed by both execution
backends; these tests pin its rules on plain data, independent of any
engine.
"""

import pytest

from repro.faults import FaultModel
from repro.runtime.faults import LiveFaultPlan
from repro.runtime.recovery import (
    STRIDE,
    cascade_start,
    consumer_invalidations,
    effective_split_ratio,
    plan_job_recovery,
)


# ------------------------------------------------------------------ planner
def test_effective_split_ratio_caps_at_survivors():
    assert effective_split_ratio(3, 8) == 3
    assert effective_split_ratio(3, 2) == 2
    assert effective_split_ratio(1, 4) == 1
    assert effective_split_ratio(0, 4) == 1  # never below one piece
    with pytest.raises(ValueError):
        effective_split_ratio(2, 0)


def test_plan_requires_damage():
    with pytest.raises(ValueError):
        plan_job_recovery(1, {0: []}, all_map_tasks=[0, 1],
                          present_map_tasks=[0], alive=[0, 1],
                          split_ratio=1)


def test_plan_reexecutes_only_missing_mappers():
    plan = plan_job_recovery(
        1, {2: [(0, 1)]}, all_map_tasks=[0, 1, 2, 3],
        present_map_tasks=[0, 2], alive=[0, 1, 2], split_ratio=1)
    assert plan.map_tasks == (1, 3)
    assert [(r.partition, r.split_index, r.n_splits)
            for r in plan.reduces] == [(2, 0, 1)]
    assert not plan.split_applied


def test_plan_splits_whole_partition_loss():
    plan = plan_job_recovery(
        2, {1: [(0, 1)]}, all_map_tasks=[], present_map_tasks=[],
        alive=[0, 2, 3], split_ratio=3)
    assert plan.split_partitions == (1,)
    assert plan.split_applied
    assert [(r.split_index, r.n_splits) for r in plan.reduces] == \
        [(0, 3), (1, 3), (2, 3)]
    # round-robin over the sorted alive set (paper §IV-B1 load spreading)
    assert [r.node for r in plan.reduces] == [0, 2, 3]


def test_plan_split_capped_at_surviving_nodes():
    plan = plan_job_recovery(
        2, {0: [(0, 1)]}, all_map_tasks=[], present_map_tasks=[],
        alive=[1, 3], split_ratio=4)
    assert [(r.split_index, r.n_splits) for r in plan.reduces] == \
        [(0, 2), (1, 2)]


def test_plan_partial_piece_loss_is_not_resplit():
    # one split of an already-split partition lost: regenerate exactly it
    plan = plan_job_recovery(
        3, {2: [(1, 2)]}, all_map_tasks=[], present_map_tasks=[],
        alive=[0, 1, 2, 3], split_ratio=4)
    assert [(r.partition, r.split_index, r.n_splits)
            for r in plan.reduces] == [(2, 1, 2)]
    assert not plan.split_applied


def test_effective_split_ratio_auto_is_survivors_minus_one():
    # None = auto, the paper's choice (Strategy.effective_split)
    assert effective_split_ratio(None, 4) == 3
    assert effective_split_ratio(None, 9) == 8
    assert effective_split_ratio(None, 2) == 1
    assert effective_split_ratio(None, 1) == 1  # never below one piece


def test_cascade_walks_contiguous_damage_only():
    assert cascade_start(4, []) == 4
    assert cascade_start(4, [3]) == 3
    assert cascade_start(4, [2, 3]) == 2
    # job 1 damaged but job 2 intact: the cascade does not reach job 1
    assert cascade_start(4, [1, 3]) == 3
    assert cascade_start(1, []) == 1


def test_cascade_bounded_below_by_intact_anchor():
    # an intact hybrid anchor (§IV-C) floors the walk: damage at or
    # behind it is served by the anchor's replicas, not recomputation
    assert cascade_start(6, [2, 4, 5], intact_anchors=[3]) == 4
    assert cascade_start(4, [1, 3], intact_anchors=[2]) == 3
    # the floor is the *last* intact anchor
    assert cascade_start(8, [1, 3, 5, 6, 7], intact_anchors=[2, 4]) == 5
    # an anchor above the damage run changes nothing
    assert cascade_start(4, [2, 3], intact_anchors=[]) == 2
    assert cascade_start(6, [5], intact_anchors=[2]) == 5


def test_consumer_invalidations_by_origin_and_id_range():
    entries = [
        (2 * STRIDE + 0, (1, 2)),       # in partition 2's id range
        (2 * STRIDE + 5, None),         # id range, unknown origin
        (3 * STRIDE + 1, (1, 3)),       # other partition
        (7, (1, 2)),                    # origin match outside the range
        (8, (1, 0)),                    # untouched
    ]
    doomed = consumer_invalidations(entries, job=1, partition=2)
    assert sorted(doomed) == [7, 2 * STRIDE + 0, 2 * STRIDE + 5]


# ------------------------------------------------------------- live faults
def test_live_plan_rejects_non_fail_stop():
    with pytest.raises(ValueError):
        LiveFaultPlan(FaultModel.parse("transient@job2:down=30"))
    with pytest.raises(ValueError):
        LiveFaultPlan(FaultModel.parse("mtbf=600:kill"))
    with pytest.raises(ValueError):
        LiveFaultPlan(FaultModel.parse("kill@job2"), time_scale=0)


def test_live_plan_job_anchored_deadline():
    plan = LiveFaultPlan(FaultModel.parse("kill@job2+4:node=3"),
                         time_scale=0.5)
    plan.arm_chain_start(100.0)
    assert plan.due(109.0, alive=[0, 1, 2, 3]) == []
    plan.arm_job_start(2, 110.0)
    assert plan.due(111.9, alive=[0, 1, 2, 3]) == []   # 4 * 0.5 = 2s
    assert plan.due(112.0, alive=[0, 1, 2, 3]) == [3]
    assert plan.exhausted


def test_live_plan_pinned_victim_must_be_alive():
    plan = LiveFaultPlan(FaultModel.parse("kill@t1:node=2"))
    plan.arm_chain_start(0.0)
    assert plan.due(2.0, alive=[0, 1]) == []  # node 2 already dead
    assert plan.exhausted


def test_live_plan_seeded_victim_is_deterministic():
    def victims(seed):
        plan = LiveFaultPlan(FaultModel.parse("kill@t0; kill@t0"),
                             seed=seed)
        plan.arm_chain_start(0.0)
        return plan.due(1.0, alive=[0, 1, 2, 3])

    first = victims(7)
    assert first == victims(7)
    assert len(set(first)) == 2  # one deadline never picks a dead victim
