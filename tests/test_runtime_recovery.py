"""Unit tests for the shared RCMP recovery planner and live fault plans.

The planner (:mod:`repro.runtime.recovery`) is consumed by both execution
backends; these tests pin its rules on plain data, independent of any
engine.
"""

import pytest

from repro.faults import FaultModel
from repro.runtime.faults import LiveFaultPlan
from repro.runtime.recovery import (
    PARENT_STRIDE,
    STRIDE,
    JobGraph,
    adoptable_closure,
    adoptable_prefix,
    cascade_jobs,
    cascade_start,
    consumer_invalidations,
    effective_split_ratio,
    hybrid_reclaimable,
    plan_job_recovery,
)


# ------------------------------------------------------------------ planner
def test_effective_split_ratio_caps_at_survivors():
    assert effective_split_ratio(3, 8) == 3
    assert effective_split_ratio(3, 2) == 2
    assert effective_split_ratio(1, 4) == 1
    assert effective_split_ratio(0, 4) == 1  # never below one piece
    with pytest.raises(ValueError):
        effective_split_ratio(2, 0)


def test_plan_requires_damage():
    with pytest.raises(ValueError):
        plan_job_recovery(1, {0: []}, all_map_tasks=[0, 1],
                          present_map_tasks=[0], alive=[0, 1],
                          split_ratio=1)


def test_plan_reexecutes_only_missing_mappers():
    plan = plan_job_recovery(
        1, {2: [(0, 1)]}, all_map_tasks=[0, 1, 2, 3],
        present_map_tasks=[0, 2], alive=[0, 1, 2], split_ratio=1)
    assert plan.map_tasks == (1, 3)
    assert [(r.partition, r.split_index, r.n_splits)
            for r in plan.reduces] == [(2, 0, 1)]
    assert not plan.split_applied


def test_plan_splits_whole_partition_loss():
    plan = plan_job_recovery(
        2, {1: [(0, 1)]}, all_map_tasks=[], present_map_tasks=[],
        alive=[0, 2, 3], split_ratio=3)
    assert plan.split_partitions == (1,)
    assert plan.split_applied
    assert [(r.split_index, r.n_splits) for r in plan.reduces] == \
        [(0, 3), (1, 3), (2, 3)]
    # round-robin over the sorted alive set (paper §IV-B1 load spreading)
    assert [r.node for r in plan.reduces] == [0, 2, 3]


def test_plan_split_capped_at_surviving_nodes():
    plan = plan_job_recovery(
        2, {0: [(0, 1)]}, all_map_tasks=[], present_map_tasks=[],
        alive=[1, 3], split_ratio=4)
    assert [(r.split_index, r.n_splits) for r in plan.reduces] == \
        [(0, 2), (1, 2)]


def test_plan_partial_piece_loss_is_not_resplit():
    # one split of an already-split partition lost: regenerate exactly it
    plan = plan_job_recovery(
        3, {2: [(1, 2)]}, all_map_tasks=[], present_map_tasks=[],
        alive=[0, 1, 2, 3], split_ratio=4)
    assert [(r.partition, r.split_index, r.n_splits)
            for r in plan.reduces] == [(2, 1, 2)]
    assert not plan.split_applied


def test_effective_split_ratio_auto_is_survivors_minus_one():
    # None = auto, the paper's choice (Strategy.effective_split)
    assert effective_split_ratio(None, 4) == 3
    assert effective_split_ratio(None, 9) == 8
    assert effective_split_ratio(None, 2) == 1
    assert effective_split_ratio(None, 1) == 1  # never below one piece


def test_cascade_walks_contiguous_damage_only():
    assert cascade_start(4, []) == 4
    assert cascade_start(4, [3]) == 3
    assert cascade_start(4, [2, 3]) == 2
    # job 1 damaged but job 2 intact: the cascade does not reach job 1
    assert cascade_start(4, [1, 3]) == 3
    assert cascade_start(1, []) == 1


def test_cascade_bounded_below_by_intact_anchor():
    # an intact hybrid anchor (§IV-C) floors the walk: damage at or
    # behind it is served by the anchor's replicas, not recomputation
    assert cascade_start(6, [2, 4, 5], intact_anchors=[3]) == 4
    assert cascade_start(4, [1, 3], intact_anchors=[2]) == 3
    # the floor is the *last* intact anchor
    assert cascade_start(8, [1, 3, 5, 6, 7], intact_anchors=[2, 4]) == 5
    # an anchor above the damage run changes nothing
    assert cascade_start(4, [2, 3], intact_anchors=[]) == 2
    assert cascade_start(6, [5], intact_anchors=[2]) == 5


def test_consumer_invalidations_by_origin_and_id_range():
    entries = [
        (2 * STRIDE + 0, (1, 2)),       # in partition 2's id range
        (2 * STRIDE + 5, None),         # id range, unknown origin
        (3 * STRIDE + 1, (1, 3)),       # other partition
        (7, (1, 2)),                    # origin match outside the range
        (8, (1, 0)),                    # untouched
    ]
    doomed = consumer_invalidations(entries, job=1, partition=2)
    assert sorted(doomed) == [7, 2 * STRIDE + 0, 2 * STRIDE + 5]


# ------------------------------------------------------- dependency graph
DIAMOND = JobGraph(((), (1,), (1,), (2, 3)))
FAN_OUT = JobGraph(((), (1,), (1,), (1,)))
#: two independent branches off one producer: 1 -> 2 -> 4 and 1 -> 3 -> 5
TWO_BRANCH = JobGraph(((), (1,), (1,), (2,), (3,)))


def test_job_graph_rejects_malformed_edges():
    with pytest.raises(ValueError, match="duplicate"):
        JobGraph(((), (1, 1)))
    with pytest.raises(ValueError, match="earlier"):
        JobGraph(((), (2,)))        # self dependency
    with pytest.raises(ValueError, match="earlier"):
        JobGraph(((3,), (1,)))      # forward dependency
    with pytest.raises(ValueError, match="at least one job"):
        JobGraph(())
    with pytest.raises(ValueError, match="dependencies lists"):
        JobGraph.from_dependencies(3, ((), (1,)))  # length mismatch


def test_job_graph_shape_queries():
    assert DIAMOND.parents(4) == (2, 3) and DIAMOND.consumers(1) == (2, 3)
    assert DIAMOND.parent_pos(4, 3) == 1
    assert DIAMOND.sinks() == (4,) and DIAMOND.sources() == (1,)
    assert not DIAMOND.is_linear() and JobGraph.linear(3).is_linear()
    assert FAN_OUT.sinks() == (2, 3, 4)
    assert JobGraph.from_dependencies(3, None) == JobGraph.linear(3)


def test_job_graph_ready_and_topo_levels():
    assert DIAMOND.ready(()) == [1]
    assert DIAMOND.ready({1}) == [2, 3]            # one two-job wave
    assert DIAMOND.ready({1, 3}) == [2]
    assert DIAMOND.ready({1, 2, 3}) == [4]
    assert DIAMOND.topo_levels([1, 2, 3, 4]) == [[1], [2, 3], [4]]
    assert DIAMOND.topo_levels([2, 3]) == [[2, 3]]  # independent branches
    # only in-set parents order levels: job 4's parent (2) is intact, so
    # 4 may recompute alongside job 1 in the very first level
    assert TWO_BRANCH.topo_levels([1, 3, 4, 5]) == [[1, 4], [3], [5]]


def test_cascade_cuts_by_real_edges_not_job_index():
    # damage on one branch: the sibling branch is outside the cut
    assert cascade_jobs(DIAMOND, done_jobs={1, 2, 3},
                        damaged_jobs=[2]) == [2]
    # a done, intact consumer shields the damage entirely
    assert cascade_jobs(DIAMOND, done_jobs={1, 2, 3, 4},
                        damaged_jobs=[2]) == []
    # a damaged sink always recomputes, and pulls damaged parents in
    assert cascade_jobs(DIAMOND, done_jobs={1, 2, 3, 4},
                        damaged_jobs=[2, 4]) == [2, 4]
    # fan-out: the damaged sink branch pulls the shared producer in,
    # while the intact sibling sinks stay untouched
    assert cascade_jobs(FAN_OUT, done_jobs={1, 2, 3, 4},
                        damaged_jobs=[1, 3]) == [1, 3]


def test_cascade_anchor_floors_one_branch_only():
    # an intact anchor at 2 shields the shared producer: the only
    # unfinished paths pass through replicated output
    assert cascade_jobs(TWO_BRANCH, done_jobs={1, 2, 3},
                        damaged_jobs=[1, 2], intact_anchors=[2]) == []
    # without the anchor the same damage cascades
    assert cascade_jobs(TWO_BRANCH, done_jobs={1, 2, 3},
                        damaged_jobs=[1, 2]) == [1, 2]
    # an anchor on branch 2 cannot shield job 1 when branch 3 is damaged
    # too: recomputing 3 consumes 1's output directly
    assert cascade_jobs(TWO_BRANCH, done_jobs={1, 2, 3},
                        damaged_jobs=[1, 3], intact_anchors=[2]) == [1, 3]


def test_adoptable_closure_is_parent_closed_not_contiguous():
    # the cached half of a diamond adopts without the other branch
    assert adoptable_closure({1, 3}, DIAMOND) == {1, 3}
    assert adoptable_closure({2, 4}, DIAMOND) == set()   # 2 needs 1
    assert adoptable_closure({1, 2, 4}, DIAMOND) == {1, 2}  # 4 needs 3
    assert adoptable_closure({1, 2, 3, 4}, DIAMOND) == {1, 2, 3, 4}
    # chain view: the closure is exactly the longest contiguous prefix
    assert adoptable_closure({1, 2, 4}, JobGraph.linear(5)) == {1, 2}
    assert adoptable_prefix({1, 2, 4}) == 2


def test_hybrid_reclaimable_matches_linear_bounds():
    # linear chain, anchors at 2 and 4, jobs 1..5 done: the classic
    # ``map_upto = a - 1``, ``piece_upto = a - 2`` bound for a = 4
    map_jobs, piece_jobs = hybrid_reclaimable(
        JobGraph.linear(6), done_jobs={1, 2, 3, 4, 5},
        intact_anchors={2, 4})
    assert map_jobs == {1, 2, 3}
    assert piece_jobs == {1, 2}


def test_hybrid_reclaimable_on_a_dag_keeps_anchor_inputs():
    # both branch heads replicated: the shared producer's map outputs
    # are dead weight, but its pieces are the anchors' recompute inputs
    map_jobs, piece_jobs = hybrid_reclaimable(
        TWO_BRANCH, done_jobs={1, 2, 3, 4, 5}, intact_anchors={2, 3})
    assert map_jobs == {1} and piece_jobs == set()


def test_consumer_invalidations_selects_parent_band():
    # a two-parent consumer: mappers reading parent position 1 sit one
    # PARENT_STRIDE higher; the Fig. 5 guard dooms only that band
    entries = [
        (PARENT_STRIDE + 2 * STRIDE + 0, None),  # parent pos 1, part 2
        (2 * STRIDE + 0, None),                  # parent pos 0, part 2
        (PARENT_STRIDE + 3 * STRIDE + 1, None),  # parent pos 1, part 3
        (7, (3, 2)),                             # origin match
    ]
    doomed = consumer_invalidations(entries, job=3, partition=2,
                                    parent_pos=1)
    assert sorted(doomed) == [7, PARENT_STRIDE + 2 * STRIDE + 0]


# ------------------------------------------------------------- live faults
def test_live_plan_rejects_non_fail_stop():
    with pytest.raises(ValueError):
        LiveFaultPlan(FaultModel.parse("transient@job2:down=30"))
    with pytest.raises(ValueError):
        LiveFaultPlan(FaultModel.parse("mtbf=600:kill"))
    with pytest.raises(ValueError):
        LiveFaultPlan(FaultModel.parse("kill@job2"), time_scale=0)


def test_live_plan_job_anchored_deadline():
    plan = LiveFaultPlan(FaultModel.parse("kill@job2+4:node=3"),
                         time_scale=0.5)
    plan.arm_chain_start(100.0)
    assert plan.due(109.0, alive=[0, 1, 2, 3]) == []
    plan.arm_job_start(2, 110.0)
    assert plan.due(111.9, alive=[0, 1, 2, 3]) == []   # 4 * 0.5 = 2s
    assert plan.due(112.0, alive=[0, 1, 2, 3]) == [3]
    assert plan.exhausted


def test_live_plan_pinned_victim_must_be_alive():
    plan = LiveFaultPlan(FaultModel.parse("kill@t1:node=2"))
    plan.arm_chain_start(0.0)
    assert plan.due(2.0, alive=[0, 1]) == []  # node 2 already dead
    assert plan.exhausted


def test_live_plan_seeded_victim_is_deterministic():
    def victims(seed):
        plan = LiveFaultPlan(FaultModel.parse("kill@t0; kill@t0"),
                             seed=seed)
        plan.arm_chain_start(0.0)
        return plan.due(1.0, alive=[0, 1, 2, 3])

    first = victims(7)
    assert first == victims(7)
    assert len(set(first)) == 2  # one deadline never picks a dead victim
