"""Tests for the closed-form model, CDF utilities and extrapolation."""

import numpy as np
import pytest

from repro.analysis.cdf import cdf_at, empirical_cdf, percentile
from repro.analysis.extrapolation import (
    RunAverages,
    extract_averages,
    extrapolate_chain_length,
    optimistic_runtime,
    rcmp_runtime,
)
from repro.analysis.model import (
    ideal_split_speedup,
    recomputation_waves,
    recomputed_fraction,
    replication_disk_bytes,
    storage_contention,
    waves,
)
from repro.analysis.reporting import Comparison, ExperimentReport


# ------------------------------------------------------------------ model
def test_waves_arithmetic():
    assert waves(16, 10, 1) == 2
    assert waves(160, 10, 1) == 16
    assert waves(160, 10, 2) == 8
    assert waves(1, 10, 1) == 1
    assert waves(0, 10, 1) == 0


def test_recomputation_waves_matches_paper_formula():
    # §IV-B: ceil(WM / (N-1))
    assert recomputation_waves(16, 10) == 2
    assert recomputation_waves(80, 60) == 2
    assert recomputation_waves(1, 10) == 1
    with pytest.raises(ValueError):
        recomputation_waves(5, 1)


def test_recomputed_fraction():
    assert recomputed_fraction(10) == pytest.approx(0.1)
    assert recomputed_fraction(60, 2) == pytest.approx(2 / 60)
    with pytest.raises(ValueError):
        recomputed_fraction(10, 11)


def test_storage_contention_hotspot():
    initial, recomp = storage_contention(slots=2, n_nodes=10, split=False)
    assert initial == 2
    assert recomp == 20  # S*N concurrent accesses on one node (§IV-B2)
    _, split_recomp = storage_contention(2, 10, split=True)
    assert split_recomp == 2


def test_ideal_split_speedup():
    assert ideal_split_speedup(10) == 9.0
    assert ideal_split_speedup(60) == 59.0


def test_replication_disk_bytes_monotone():
    assert replication_disk_bytes(1) < replication_disk_bytes(2) \
        < replication_disk_bytes(3)


# -------------------------------------------------------------------- cdf
def test_empirical_cdf_basic():
    x, f = empirical_cdf([1.0, 2.0, 2.0, 4.0])
    assert list(x) == [1.0, 2.0, 4.0]
    assert list(f) == pytest.approx([25.0, 75.0, 100.0])


def test_cdf_at_points():
    values = [1, 2, 3, 4]
    assert list(cdf_at(values, [0, 2.5, 10])) == pytest.approx(
        [0.0, 50.0, 100.0])


def test_percentile_median():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        empirical_cdf([])


# ----------------------------------------------------------- extrapolation
def avgs(before=100.0, after=110.0, recompute=30.0, wasted=45.0):
    return RunAverages(before, after, recompute, 1, wasted)


def test_optimistic_runtime_formula():
    a = avgs()
    # fail at job 2 of 7: 1 job before + waste + 7 jobs after
    assert optimistic_runtime(a, 7, 2) == pytest.approx(
        100.0 + 45.0 + 7 * 110.0)


def test_rcmp_runtime_formula():
    a = avgs()
    # fail at 2 of 7: 1 before + waste + 1 recompute + 6 after
    assert rcmp_runtime(a, 7, 2) == pytest.approx(
        100.0 + 45.0 + 30.0 + 6 * 110.0)


def test_late_failure_hurts_optimistic_more():
    a = avgs()
    early = optimistic_runtime(a, 7, 2) / rcmp_runtime(a, 7, 2)
    late = optimistic_runtime(a, 7, 7) / rcmp_runtime(a, 7, 7)
    assert late > early


def test_extrapolation_flat_in_chain_length():
    """Paper Fig. 10: RCMP's relative benefit is stable in chain length."""
    rcmp_avgs = avgs(before=100, after=105, recompute=25, wasted=45)
    repl3 = avgs(before=170, after=180, recompute=0.0, wasted=0.0)
    curves = extrapolate_chain_length(rcmp_avgs, {"REPL3": repl3},
                                      range(10, 101, 10), fail_at=2)
    curve = curves["REPL3"]
    assert np.all(curve > 1.3)
    # flat: spread under 10% of the level
    assert (curve.max() - curve.min()) / curve.mean() < 0.1


def test_extract_averages_from_chain_result():
    from repro.cluster import presets
    from repro.core import strategies
    from repro.core.middleware import run_chain
    from repro.workloads.chain import build_chain
    MB = 1 << 20
    chain = build_chain(n_jobs=3, per_node_input=256 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(4), strategies.RCMP, chain=chain,
                       failures="2")
    a = extract_averages(result)
    assert a.job_before > 0
    assert a.job_after > 0
    assert a.recompute > 0
    assert a.n_recomputes == 1
    assert a.wasted > 40.0  # ~45 s detection overhead


# -------------------------------------------------------------- reporting
def test_comparison_ratio_and_rendering():
    c = Comparison("x", measured=2.0, paper=1.6)
    assert c.ratio == pytest.approx(1.25)
    assert Comparison("y", 1.0).ratio is None
    report = ExperimentReport("Fig. X", "demo")
    report.add("row-1", 1.5, paper=1.4)
    report.add("row-2", 2.0)
    text = report.render()
    assert "Fig. X" in text and "row-1" in text and "1.50" in text
