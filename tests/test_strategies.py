"""Tests for strategy presets and validation."""

import pytest

from repro.core import strategies
from repro.core.strategies import Strategy, rcmp, repl


def test_presets_match_paper_configuration():
    assert strategies.RCMP.replication == 1
    assert strategies.RCMP.recompute
    assert strategies.RCMP.split_ratio is None  # auto
    assert strategies.RCMP_NOSPLIT.split_ratio == 1
    assert strategies.REPL2.replication == 2
    assert strategies.REPL3.replication == 3
    assert not strategies.REPL2.recompute
    assert strategies.OPTIMISTIC.optimistic
    assert strategies.OPTIMISTIC.replication == 1
    assert strategies.HYBRID.hybrid_interval == 5
    assert strategies.HYBRID.hybrid_replication == 2


def test_recovery_modes():
    assert strategies.RCMP.recovery_mode == "abort"
    assert strategies.OPTIMISTIC.recovery_mode == "abort"
    assert strategies.REPL3.recovery_mode == "hadoop"


def test_effective_split_auto_is_survivors_minus_one():
    # paper: split ratio 59 on 60-node DCO, N-1 in Fig. 11
    assert strategies.RCMP.effective_split(60) == 59
    assert strategies.RCMP.effective_split(2) == 1
    assert strategies.RCMP_NOSPLIT.effective_split(60) == 1
    explicit = rcmp(split_ratio=8)
    assert explicit.effective_split(60) == 8


def test_validation_rules():
    with pytest.raises(ValueError):
        Strategy("bad", replication=0)
    with pytest.raises(ValueError):
        Strategy("bad", split_ratio=0)
    with pytest.raises(ValueError):
        Strategy("bad", optimistic=True, recompute=True)
    with pytest.raises(ValueError):
        Strategy("bad", recompute=False, hybrid_interval=3)
    with pytest.raises(ValueError):
        repl(1)


def test_factory_names():
    assert rcmp(split_ratio=8).name == "RCMP SPLIT-8"
    assert rcmp(split_ratio=1).name == "RCMP NO-SPLIT"
    assert rcmp(hybrid_interval=5).name == "RCMP HYBRID-5"
    assert repl(3).name == "HADOOP REPL-3"


def test_factory_threads_hybrid_replication_and_reclaim():
    """Regression: rcmp() used to silently drop the hybrid knobs, so a
    reclaiming hybrid strategy could only be built via replace()."""
    s = rcmp(hybrid_interval=3, hybrid_replication=3, hybrid_reclaim=True)
    assert s.hybrid_interval == 3
    assert s.hybrid_replication == 3
    assert s.hybrid_reclaim
    assert s.name == "RCMP HYBRID-3 RECLAIM"
    # reclamation needs an anchor to reclaim behind
    with pytest.raises(ValueError, match="hybrid_interval"):
        rcmp(hybrid_reclaim=True)
    with pytest.raises(ValueError, match="hybrid_replication"):
        rcmp(hybrid_interval=3, hybrid_replication=1)
