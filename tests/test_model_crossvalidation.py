"""Cross-validation: the simulator against §IV's closed-form model.

The paper's wave arithmetic must fall out of the simulated execution: the
map phase really runs in ceil(tasks / (N*S)) waves, a recomputation run
really re-executes ~1/N of the work, and the recomputed mappers fit in
ceil(WM / (N-1)) waves when spread over the survivors.
"""

import numpy as np
import pytest

from repro.analysis.model import (
    recomputation_waves,
    recomputed_fraction,
    waves,
)
from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.workloads.chain import build_chain

MB = 1 << 20


def observed_waves(job, slots=1, task_type="map"):
    """Waves actually executed: the busiest node's task count divided by
    its concurrent slots."""
    per_node = {}
    for t in job.tasks:
        if t.task_type == task_type and t.outcome == "done":
            per_node.setdefault(t.node, []).append((t.start, t.end))
    most = max((len(v) for v in per_node.values()), default=0)
    return -(-most // slots)  # ceil


@pytest.mark.parametrize("slots,blocks_per_node", [((1, 1), 4), ((2, 2), 4),
                                                   ((1, 1), 6)])
def test_map_waves_match_model(slots, blocks_per_node):
    n_nodes = 4
    chain = build_chain(n_jobs=1, per_node_input=blocks_per_node * 64 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(n_nodes, slots), strategies.RCMP,
                       chain=chain)
    job = result.metrics.jobs[0]
    n_tasks = blocks_per_node * n_nodes
    predicted = waves(n_tasks, n_nodes, slots[0])
    # randomized replica placement makes locality approximate: the busiest
    # node runs within one wave of the balanced prediction
    assert predicted <= observed_waves(job, slots[0]) <= predicted + 1


def test_recomputed_fraction_is_one_over_n():
    n_nodes = 5
    chain = build_chain(n_jobs=3, per_node_input=256 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(n_nodes), strategies.RCMP, chain=chain,
                       failures="3")
    full_maps = 4 * n_nodes
    for job in result.metrics.jobs_of_kind("recompute"):
        executed = len(job.task_durations("map"))
        expected = recomputed_fraction(n_nodes) * full_maps
        # ~the dead node's mappers; random replica placement makes the
        # node's share of mappers approximate, and Fig. 5 invalidations
        # can add the split partition's other consumers
        assert 0.5 * expected <= executed <= 2 * expected + 1


def test_recomputation_map_waves_bound():
    """§IV-B: the recomputed mappers, spread over N-1 survivors, need at
    most ceil(WM / (N-1)) waves."""
    n_nodes = 4
    blocks_per_node = 6   # WM = 6 with 1 slot
    chain = build_chain(n_jobs=2, per_node_input=blocks_per_node * 64 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(n_nodes), strategies.RCMP, chain=chain,
                       failures="2")
    bound = recomputation_waves(blocks_per_node, n_nodes)
    for job in result.metrics.jobs_of_kind("recompute"):
        assert observed_waves(job) <= bound


def test_shuffle_traffic_fraction():
    """Recomputing 1/N of reducers moves ~1/N of the shuffle bytes."""
    n_nodes = 5
    chain = build_chain(n_jobs=2, per_node_input=256 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(n_nodes), strategies.RCMP, chain=chain,
                       failures="2")
    initial = result.metrics.jobs[0]
    init_bytes = sum(t.bytes_in for t in initial.tasks
                     if t.task_type == "reduce")
    for job in result.metrics.jobs_of_kind("recompute"):
        rec_bytes = sum(t.bytes_in for t in job.tasks
                        if t.task_type == "reduce" and t.outcome == "done")
        assert rec_bytes == pytest.approx(init_bytes / n_nodes, rel=0.05)


def test_speedup_bounded_by_ideal():
    """Measured recomputation speed-up never exceeds the data-parallel
    ideal of (roughly) doing 1/N of the work over N-1 nodes."""
    n_nodes = 6
    chain = build_chain(n_jobs=2, per_node_input=512 * MB,
                        block_size=64 * MB)
    result = run_chain(presets.tiny(n_nodes), strategies.RCMP, chain=chain,
                       failures="2")
    init = float(np.mean(result.metrics.job_durations("initial")))
    rec = float(np.mean(result.metrics.job_durations("recompute")))
    speedup = init / rec
    # ideal: N x less data, (N-1)-way parallel regeneration => << N*(N-1)
    assert 1.0 < speedup < n_nodes * (n_nodes - 1)