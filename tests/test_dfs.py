"""Tests for the distributed file system substrate."""

import pytest

from repro.cluster import presets
from repro.cluster.topology import Cluster
from repro.dfs import DataLossError, DistributedFileSystem
from repro.dfs.placement import RackAwarePlacement, SpreadPlacement
from repro.simcore import SeedSequenceRegistry, Simulator

MB = 1 << 20


def make_dfs(n_nodes=4, block_size=64 * MB, spec=None):
    sim = Simulator()
    cluster = Cluster(sim, spec or presets.tiny(n_nodes),
                      SeedSequenceRegistry(3))
    return sim, cluster, DistributedFileSystem(cluster, block_size)


# -------------------------------------------------------------- metadata
def test_seed_replicated_spreads_blocks():
    _sim, cluster, dfs = make_dfs()
    meta = dfs.seed_replicated("input", 256 * MB, replication=3)
    assert len(meta.blocks) == 4
    for block in meta.blocks:
        assert block.replication == 3
        assert len(set(block.replicas)) == 3
    # evenly spread primaries
    primaries = [b.replicas[0] for b in meta.blocks]
    assert sorted(primaries) == [0, 1, 2, 3]


def test_create_placed_registers_without_io():
    sim, _cluster, dfs = make_dfs()
    meta = dfs.create_placed("out", 128 * MB, locations=[1, 2],
                             tags={"job_index": 3})
    assert meta.size == pytest.approx(128 * MB)
    assert [b.replicas for b in meta.blocks] == [[1], [2]]
    assert sim.now == 0.0
    assert dfs.files_with_tag(job_index=3) == [meta]


def test_duplicate_create_rejected():
    _sim, _cluster, dfs = make_dfs()
    dfs.create_placed("f", MB, locations=[0])
    with pytest.raises(FileExistsError):
        dfs.create_placed("f", MB, locations=[1])


def test_delete_updates_storage_accounting():
    _sim, _cluster, dfs = make_dfs()
    dfs.create_placed("f", 64 * MB, locations=[2])
    assert dfs.bytes_on_node[2] == pytest.approx(64 * MB)
    dfs.delete("f")
    assert dfs.bytes_on_node[2] == pytest.approx(0.0)
    with pytest.raises(FileNotFoundError):
        dfs.delete("f")


# -------------------------------------------------------------------- IO
def test_write_replication_cost_scales_with_factor():
    """With every node writing concurrently (a reduce phase), higher
    replication strictly lengthens the write — the paper's core premise."""
    def write_time(repl):
        sim, cluster, dfs = make_dfs()

        def proc(writer):
            yield dfs.write(f"out-{writer}", 256 * MB, writer=writer,
                            replication=repl)

        for w in range(cluster.n_nodes):
            sim.process(proc(w))
        sim.run()
        return sim.now

    t1, t2, t3 = write_time(1), write_time(2), write_time(3)
    assert t1 < t2 < t3
    # Each disk writes r*256MB AND serves more concurrent streams, so the
    # slowdown is super-linear in r — the paper's point that replication
    # overhead exceeds raw byte counts (§III).
    assert t3 / t1 >= 3.0


def test_write_places_first_replica_on_writer():
    sim, _cluster, dfs = make_dfs()

    def proc():
        yield dfs.write("out", 64 * MB, writer=2, replication=2)

    sim.process(proc())
    sim.run()
    meta = dfs.meta("out")
    for block in meta.blocks:
        assert block.replicas[0] == 2
        assert len(set(block.replicas)) == 2


def test_read_prefers_local_replica():
    sim, cluster, dfs = make_dfs()
    dfs.create_placed("f", 64 * MB, locations=[1])

    def local_read():
        yield dfs.read("f", reader=1)

    sim.process(local_read())
    sim.run()
    local_time = sim.now

    sim2, cluster2, dfs2 = make_dfs()
    dfs2.create_placed("f", 64 * MB, locations=[1])

    def remote_read():
        yield dfs2.read("f", reader=0)

    sim2.process(remote_read())
    sim2.run()
    # remote read crosses NIC too but disk is the bottleneck: same duration
    assert sim2.now == pytest.approx(local_time)
    del cluster, cluster2


def test_read_single_block():
    sim, _cluster, dfs = make_dfs()
    dfs.create_placed("f", 128 * MB, locations=[0, 1])

    def proc():
        yield dfs.read("f", reader=0, block_index=0)

    sim.process(proc())
    sim.run()
    # one 64MB block at 100MB/s
    assert sim.now == pytest.approx(64 / 100.0, rel=1e-3)


# --------------------------------------------------------------- failures
def test_node_death_loses_single_replicated_blocks():
    _sim, cluster, dfs = make_dfs()
    dfs.create_placed("single", 64 * MB, locations=[1])
    dfs.seed_replicated("triple", 64 * MB, replication=3)
    damaged = dfs.on_node_death(1)
    cluster.kill_node(1)
    assert [m.name for m in damaged] == ["single"]
    assert not dfs.meta("single").available
    assert dfs.meta("triple").available
    with pytest.raises(DataLossError):
        dfs.read("single", reader=0)


def test_double_death_can_lose_triple_replicated():
    _sim, _cluster, dfs = make_dfs(n_nodes=4)
    dfs.seed_replicated("f", 64 * MB, replication=2)
    meta = dfs.meta("f")
    reps = list(meta.blocks[0].replicas)
    dfs.on_node_death(reps[0])
    assert meta.available
    damaged = dfs.on_node_death(reps[1])
    assert meta in damaged
    assert not meta.available


def test_replicate_file_adds_replicas():
    sim, _cluster, dfs = make_dfs()
    dfs.create_placed("out", 64 * MB, locations=[0])

    def proc():
        yield dfs.replicate_file("out", extra_replicas=1)

    sim.process(proc())
    sim.run()
    assert dfs.meta("out").blocks[0].replication == 2
    assert sim.now > 0  # real I/O happened


def test_write_survives_after_death_of_nonreplica_node():
    sim, cluster, dfs = make_dfs()

    def proc():
        yield dfs.write("out", 64 * MB, writer=0, replication=1)

    sim.process(proc())
    sim.run()
    cluster.kill_node(3)
    damaged = dfs.on_node_death(3)
    assert dfs.meta("out").available
    assert damaged == []


# -------------------------------------------------------------- placement
def test_rack_aware_second_replica_off_rack():
    sim = Simulator()
    from repro.cluster.spec import ClusterSpec, NodeSpec
    spec = ClusterSpec(name="racks", n_nodes=6, n_racks=2, node=NodeSpec())
    cluster = Cluster(sim, spec, SeedSequenceRegistry(1))
    policy = RackAwarePlacement(cluster.seeds.stream("p"))
    for writer in range(6):
        chosen = policy.choose(cluster, writer, 3)
        assert chosen[0] == writer
        assert len(set(chosen)) == 3
        racks = [cluster.nodes[c].rack for c in chosen]
        assert racks[1] != racks[0]


def test_placement_avoids_dead_nodes():
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(4), SeedSequenceRegistry(1))
    cluster.kill_node(2)
    policy = RackAwarePlacement(cluster.seeds.stream("p"))
    for _ in range(20):
        chosen = policy.choose(cluster, 0, 3)
        assert 2 not in chosen


def test_placement_caps_at_alive_count():
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(3), SeedSequenceRegistry(1))
    policy = RackAwarePlacement(cluster.seeds.stream("p"))
    chosen = policy.choose(cluster, 0, 10)
    assert sorted(chosen) == [0, 1, 2]


def test_spread_placement_round_robins():
    sim = Simulator()
    cluster = Cluster(sim, presets.tiny(4), SeedSequenceRegistry(1))
    policy = SpreadPlacement()
    primaries = [policy.choose(cluster, 0, 1)[0] for _ in range(8)]
    assert primaries == [0, 1, 2, 3, 0, 1, 2, 3]
