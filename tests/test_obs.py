"""Tests for the observability layer (repro.obs) and its instrumentation.

Covers the tracer contract (no-op default, recording, export formats),
utilization accounting invariants (per-link byte conservation against the
fluid network), and the Fig. 12-style hot-spot observable (the failed
node's replacement disk dominating read concurrency under NO-SPLIT).
"""

import json
from collections import defaultdict

import pytest

from repro.analysis.utilization import (
    hotspot_concentration,
    link_class,
    load_trace,
    peak_overlap,
    utilization_report,
)
from repro.cluster import presets
from repro.core import strategies
from repro.core.middleware import run_chain
from repro.obs import (
    NULL_TRACER,
    RecordingTracer,
    get_ambient_tracer,
    tracing,
)
from repro.obs.utilization import UtilizationMonitor
from repro.simcore import Capacity, FluidNetwork, Simulator


# --------------------------------------------------------------- tracer unit
def test_null_tracer_is_default_and_inert():
    sim = Simulator()
    assert sim.tracer is NULL_TRACER
    assert not sim.tracer.enabled
    span = sim.tracer.span("job", "j")
    span.end()  # no-op handle
    sim.tracer.instant("phase", "x")
    sim.tracer.counter("c", {"v": 1})
    with pytest.raises(NotImplementedError):
        sim.tracer.export("/tmp/nothing.json")


def test_ambient_tracer_install_and_restore():
    tracer = RecordingTracer()
    assert get_ambient_tracer() is NULL_TRACER
    with tracing(tracer):
        assert get_ambient_tracer() is tracer
        sim = Simulator()
        assert sim.tracer is tracer
    assert get_ambient_tracer() is NULL_TRACER


def test_recording_tracer_span_and_instant():
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)

    def proc():
        span = tracer.span("job", "work", tid=3, kind="initial")
        yield sim.timeout(5.0)
        tracer.instant("cascade", "ping", node=1)
        span.end(outcome="done")

    sim.process(proc())
    sim.run()
    spans = [e for e in tracer.events if e.get("ph") == "X"]
    instants = [e for e in tracer.events if e.get("ph") == "i"]
    assert len(spans) == 1 and len(instants) == 1
    span = spans[0]
    assert span["name"] == "work" and span["cat"] == "job"
    assert span["ts"] == 0.0 and span["dur"] == 5.0 and span["tid"] == 3
    assert span["args"] == {"kind": "initial", "outcome": "done"}
    assert instants[0]["ts"] == 5.0 and instants[0]["args"] == {"node": 1}


def test_span_end_is_idempotent():
    tracer = RecordingTracer()
    Simulator(tracer=tracer)
    span = tracer.span("job", "once")
    span.end()
    span.end(outcome="again")
    assert len([e for e in tracer.events if e.get("ph") == "X"]) == 1


def test_bind_separates_runs_by_pid():
    tracer = RecordingTracer()
    for _ in range(2):
        sim = Simulator(tracer=tracer)
        sim.process(iter([]))  # nothing to do; just bind
        tracer.instant("phase", "mark")
    pids = {e["pid"] for e in tracer.events if e.get("name") == "mark"}
    assert pids == {1, 2}


def test_chrome_export_is_valid_and_microseconds(tmp_path):
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)

    def proc():
        span = tracer.span("job", "j1")
        yield sim.timeout(2.0)
        span.end()

    sim.process(proc())
    sim.run()
    path = str(tmp_path / "trace.json")
    tracer.export(path)
    with open(path) as fh:
        data = json.load(fh)
    assert set(data) >= {"traceEvents", "schema", "utilization"}
    span = [e for e in data["traceEvents"] if e.get("ph") == "X"][0]
    assert span["ts"] == 0.0 and span["dur"] == 2_000_000.0  # microseconds
    assert data["schema"]["version"] >= 1


def test_jsonl_export_roundtrips_through_load_trace(tmp_path):
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)

    def proc():
        span = tracer.span("job", "j1")
        yield sim.timeout(1.0)
        span.end()

    sim.process(proc())
    sim.run()
    jsonl = str(tmp_path / "trace.jsonl")
    chrome = str(tmp_path / "trace.json")
    tracer.export(jsonl)
    tracer.export(chrome)
    a = load_trace(jsonl)
    b = load_trace(chrome)
    assert a["schema"] == b["schema"]
    assert a["utilization"] == b["utilization"]
    # chrome export carries the same spans (jsonl adds no wrapper objects)
    assert [e for e in a["events"] if e.get("ph") == "X"] == \
        [e for e in b["events"] if e.get("ph") == "X"]


# ------------------------------------------------------- utilization monitor
class _FakeLink:
    def __init__(self, name):
        self.name = name


class _FakeFlow:
    def __init__(self, links, size=0.0):
        self.links = links
        self.size = size


def test_monitor_concurrency_histogram_and_busy_time():
    clock = [0.0]
    monitor = UtilizationMonitor(lambda: clock[0])
    link = _FakeLink("n0.disk")
    f1, f2 = _FakeFlow([link]), _FakeFlow([link])
    monitor.flow_started(f1)
    clock[0] = 4.0
    monitor.flow_started(f2)
    clock[0] = 6.0
    monitor.flow_finished(f2, completed=True)
    clock[0] = 10.0
    monitor.flow_finished(f1, completed=False)
    usage = monitor.links["n0.disk"]
    assert usage.busy_time == 10.0
    assert usage.peak_concurrency == 2
    assert usage.concurrency_time == {1: 8.0, 2: 2.0}
    assert usage.mean_concurrency() == pytest.approx(12.0 / 10.0)
    assert usage.flows_completed == 1 and usage.flows_aborted == 1


def test_monitor_bytes_only_via_settle():
    clock = [0.0]
    monitor = UtilizationMonitor(lambda: clock[0])
    a, b = _FakeLink("a"), _FakeLink("b")
    flow = _FakeFlow([a, b], size=100.0)
    monitor.flow_started(flow)
    monitor.flow_settled(flow, 60.0)
    monitor.flow_settled(flow, 0.0)   # ignored
    monitor.flow_finished(flow, completed=False)
    assert monitor.bytes_by_link() == {"a": 60.0, "b": 60.0}


def test_fluid_network_byte_conservation_toy():
    """Traced bytes through each link equal the flow sizes crossing it."""
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)
    network = FluidNetwork(sim)
    disk = Capacity("n0.disk", 100.0, concurrency_penalty=0.1)
    nic = Capacity("n0.nic_out", 50.0)
    network.transfer(1000.0, [disk], label="local")
    network.transfer(500.0, [disk, nic], label="remote")
    sim.run()
    got = tracer.utilization.bytes_by_link()
    assert got["n0.disk"] == pytest.approx(1500.0)
    assert got["n0.nic_out"] == pytest.approx(500.0)


def test_aborted_flow_accounts_partial_bytes():
    tracer = RecordingTracer()
    sim = Simulator(tracer=tracer)
    network = FluidNetwork(sim)
    disk = Capacity("n0.disk", 100.0)
    flow = network.transfer(1000.0, [disk], label="doomed")

    def aborter():
        yield sim.timeout(4.0)
        network.abort(flow)

    sim.process(aborter())
    sim.run()
    assert tracer.utilization.bytes_by_link()["n0.disk"] == \
        pytest.approx(400.0)
    event = [e for e in tracer.events if e.get("cat") == "flow"][0]
    assert event["args"]["completed"] is False
    assert event["args"]["moved"] == pytest.approx(400.0)


# ------------------------------------------------- analysis helper functions
def test_hotspot_concentration_bounds():
    assert hotspot_concentration({}) == 0.0
    assert hotspot_concentration({"a": 100.0}) == 0.0  # single link
    even = {f"n{i}.disk": 10.0 for i in range(5)}
    assert hotspot_concentration(even) == pytest.approx(0.0)
    one_hot = {"a": 100.0, "b": 0.0, "c": 0.0}
    assert hotspot_concentration(one_hot) == pytest.approx(1.0)
    skewed = {"a": 90.0, "b": 5.0, "c": 5.0}
    assert 0.0 < hotspot_concentration(skewed) < 1.0


def test_peak_overlap():
    assert peak_overlap([]) == 0
    assert peak_overlap([(0, 10), (5, 15), (20, 30)]) == 2
    assert peak_overlap([(0, 5), (5, 10)]) == 1  # touching, not overlapping


def test_link_class():
    assert link_class("n3.disk") == "disk"
    assert link_class("n3.nic_in") == "nic"
    assert link_class("rack0.uplink") == "uplink"
    assert link_class("weird") == "other"


def test_utilization_report_renders(tmp_path):
    tracer = RecordingTracer()
    run_chain(presets.tiny(4), strategies.RCMP, n_jobs=2, seed=0,
              tracer=tracer)
    path = str(tmp_path / "t.json")
    tracer.export(path)
    report = utilization_report(load_trace(path)["utilization"])
    assert "per-link utilization" in report
    assert "hot-spot concentration (disk)" in report
    assert "top-concurrency link" in report
    assert "n0.disk" in report


# --------------------------------------------------- end-to-end invariants
def _traced_run(strategy, failures=None, n_jobs=2, nodes=4):
    tracer = RecordingTracer()
    result = run_chain(presets.tiny(nodes), strategy, n_jobs=n_jobs,
                       failures=failures, seed=0, tracer=tracer)
    return result, tracer


def test_end_to_end_byte_conservation_failure_free():
    """Per-link traced bytes equal the sum of flow sizes crossing that
    link (every flow completes on a failure-free run)."""
    _result, tracer = _traced_run(strategies.RCMP)
    expected = defaultdict(float)
    for event in tracer.events:
        if event.get("cat") != "flow":
            continue
        assert event["args"]["completed"], "no aborts expected"
        for link in event["args"]["links"]:
            expected[link] += event["args"]["size"]
    got = tracer.utilization.bytes_by_link()
    assert set(got) == set(expected)
    for link, total in expected.items():
        assert got[link] == pytest.approx(total, rel=1e-9), link


def test_end_to_end_byte_conservation_with_failure():
    """With aborted flows, conservation holds against *moved* bytes."""
    result, tracer = _traced_run(strategies.RCMP, failures="2")
    assert result.completed
    expected = defaultdict(float)
    aborted = 0
    for event in tracer.events:
        if event.get("cat") != "flow":
            continue
        args = event["args"]
        if args["completed"]:
            assert args["moved"] == pytest.approx(args["size"], rel=1e-9)
        else:
            aborted += 1
            assert args["moved"] <= args["size"] + 1e-6
        for link in args["links"]:
            expected[link] += args["moved"]
    assert aborted > 0, "the injected failure should abort in-flight flows"
    got = tracer.utilization.bytes_by_link()
    for link, total in expected.items():
        assert got[link] == pytest.approx(total, rel=1e-9), link


def test_trace_covers_every_layer():
    result, tracer = _traced_run(strategies.RCMP, failures="2")
    assert result.completed
    cats = {e.get("cat") for e in tracer.events if "cat" in e}
    assert {"chain", "job", "task", "phase", "cascade", "flow"} <= cats
    job_spans = [e for e in tracer.events if e.get("cat") == "job"]
    assert len(job_spans) == result.jobs_started
    kinds = {e["args"]["kind"] for e in job_spans}
    assert "recompute" in kinds and "initial" in kinds


def test_nosplit_recomputation_hotspot_visible_in_trace():
    """Fig. 12 observable: under NO-SPLIT the recomputed reducer output
    lands on a single replacement node; the restarted job's mapper reads
    all converge on that node's disk, making it the top source of read
    traffic and read concurrency during the rerun."""
    result, tracer = _traced_run(strategies.RCMP_NOSPLIT, failures="2",
                                 n_jobs=3)
    assert result.completed
    # the replacement disk: where the recompute run's reducer wrote
    recompute_jobs = [j for j in result.metrics.jobs
                      if j.kind == "recompute"]
    replacement_nodes = {t.node for j in recompute_jobs for t in j.tasks
                         if t.task_type == "reduce"}
    assert len(replacement_nodes) == 1, "NO-SPLIT keeps one reducer"
    hot_disk = f"n{replacement_nodes.pop()}.disk"

    rerun = [e for e in tracer.events if e.get("cat") == "job"
             and e["args"]["kind"] == "rerun"][0]
    window = (rerun["ts"], rerun["ts"] + rerun["dur"])
    reads_per_disk = defaultdict(list)
    for event in tracer.events:
        if event.get("cat") != "flow" or not event["name"].endswith(".read"):
            continue
        if not window[0] <= event["ts"] < window[1]:
            continue
        source_disk = next(link for link in event["args"]["links"]
                           if link.endswith(".disk"))
        reads_per_disk[source_disk].append(
            (event["ts"], event["ts"] + event["dur"]))

    assert hot_disk in reads_per_disk
    dead = result.killed_nodes[0]
    assert f"n{dead}.disk" not in reads_per_disk  # dead disk serves nothing
    counts = {disk: len(iv) for disk, iv in reads_per_disk.items()}
    peaks = {disk: peak_overlap(iv) for disk, iv in reads_per_disk.items()}
    other_counts = [c for d, c in counts.items() if d != hot_disk]
    other_peaks = [p for d, p in peaks.items() if d != hot_disk]
    assert counts[hot_disk] > max(other_counts)
    assert peaks[hot_disk] > max(other_peaks)


def test_tracing_disabled_records_nothing():
    result = run_chain(presets.tiny(4), strategies.RCMP, n_jobs=2, seed=0)
    assert result.completed  # and the ambient NULL_TRACER stayed silent
    assert get_ambient_tracer() is NULL_TRACER
