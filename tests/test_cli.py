"""Tests for the command-line interface."""

import pytest

from repro.cli import CLUSTERS, STRATEGIES, build_parser, main


def test_parser_has_all_figure_subcommands():
    parser = build_parser()
    for fig in ("fig2", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14"):
        args = parser.parse_args([fig, "--scale", "ci"])
        assert args.command == fig
        assert args.scale == "ci"


def test_parser_run_defaults():
    args = build_parser().parse_args(["run"])
    assert args.cluster == "tiny"
    assert args.strategy == "rcmp"
    assert args.jobs == 7
    assert args.failures is None
    assert args.faults is None
    assert args.mtbf is None
    assert args.fault_seed is None
    assert args.heartbeat_interval is None
    assert args.heartbeat_expiry is None


def test_parser_rejects_failures_and_faults_together():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--failures", "2",
                                   "--faults", "kill@job2"])


def test_run_command_with_fault_spec(capsys):
    assert main(["run", "--cluster", "tiny", "--jobs", "2",
                 "--faults", "transient@job2:down=30", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "ChainResult" in out


def test_run_command_with_mtbf_and_heartbeat(capsys):
    assert main(["run", "--cluster", "tiny", "--jobs", "2",
                 "--mtbf", "500", "--fault-seed", "7",
                 "--heartbeat-interval", "3", "--heartbeat-expiry", "9"]) == 0
    assert "ChainResult" in capsys.readouterr().out


def test_run_command_rejects_mtbf_with_legacy_failures():
    with pytest.raises(SystemExit):
        main(["run", "--jobs", "2", "--failures", "2", "--mtbf", "100"])


def test_parser_rejects_bad_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--scale", "huge"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "fig2" in out


def test_fig2_command_prints_table(capsys):
    assert main(["fig2", "--scale", "ci"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "STIC" in out and "SUG@R" in out


def test_run_command_executes_chain(capsys):
    assert main(["run", "--cluster", "tiny", "--strategy", "rcmp",
                 "--jobs", "2", "--failures", "2"]) == 0
    out = capsys.readouterr().out
    assert "ChainResult" in out
    assert "recompute" in out or "rerun" in out


def test_run_command_every_strategy(capsys):
    for name in STRATEGIES:
        assert main(["run", "--cluster", "tiny", "--strategy", name,
                     "--jobs", "2"]) == 0
        assert "ChainResult" in capsys.readouterr().out


def test_cluster_registry_instantiates():
    for factory in CLUSTERS.values():
        spec = factory()
        spec.validate()


def test_run_command_writes_chrome_trace(tmp_path, capsys):
    import json

    path = str(tmp_path / "run.json")
    assert main(["run", "--cluster", "tiny", "--strategy", "rcmp",
                 "--jobs", "2", "--failures", "2", "--trace", path]) == 0
    out = capsys.readouterr().out
    assert f"trace written to {path}" in out
    with open(path) as fh:
        data = json.load(fh)
    assert data["schema"]["version"] >= 1
    assert data["traceEvents"], "trace must carry events"
    assert any(e.get("cat") == "job" for e in data["traceEvents"])
    assert any(name.endswith(".disk") for name in data["utilization"])


def test_analyze_command_reports_utilization(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    assert main(["run", "--cluster", "tiny", "--jobs", "2",
                 "--trace", path]) == 0
    capsys.readouterr()
    assert main(["analyze", path, "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "per-link utilization" in out
    assert "hot-spot concentration" in out


def test_figure_command_accepts_trace(tmp_path, capsys):
    import json

    path = str(tmp_path / "fig.json")
    assert main(["fig8", "--scale", "ci", "--trace", path]) == 0
    with open(path) as fh:
        data = json.load(fh)
    # every simulated run binds its own trace process
    pids = {e["pid"] for e in data["traceEvents"]}
    assert len(pids) > 1


def test_parser_exec_defaults():
    args = build_parser().parse_args(["exec"])
    assert args.backend == "process"
    assert args.nodes == 4 and args.jobs == 3 and args.partitions == 4
    assert args.split_ratio is None and args.strategy == "rcmp"
    assert args.hybrid_interval == 2 and args.hybrid_replication == 2
    assert args.hybrid_reclaim is False
    assert args.faults is None and args.workdir is None


def test_parser_exec_split_ratio_auto():
    parser = build_parser()
    assert parser.parse_args(["exec", "--split-ratio", "auto"]) \
        .split_ratio is None
    assert parser.parse_args(["exec", "--split-ratio", "3"]) \
        .split_ratio == 3
    with pytest.raises(SystemExit):
        parser.parse_args(["exec", "--split-ratio", "half"])


def test_parser_exec_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["exec", "--backend", "threads"])


def test_exec_inproc_recovers_and_prints_checksum(capsys):
    assert main(["exec", "--backend", "inproc", "--nodes", "4",
                 "--jobs", "3", "--records", "32", "--block", "8",
                 "--split-ratio", "2", "--faults", "kill@job2"]) == 0
    out = capsys.readouterr().out
    assert "backend=inproc" in out
    assert "recompute" in out
    assert "deaths: 1" in out and "checksum:" in out


def test_exec_inproc_rejects_time_anchored_faults():
    with pytest.raises(SystemExit):
        main(["exec", "--backend", "inproc", "--faults", "kill@t30"])
    with pytest.raises(SystemExit):
        main(["exec", "--backend", "inproc", "--strategy", "optimistic"])
    with pytest.raises(SystemExit):
        main(["exec", "--backend", "inproc", "--faults", "mtbf=600:kill"])


def test_exec_backends_agree_byte_for_byte(tmp_path, capsys):
    """The CLI-level differential: both backends print the same checksum
    for the same chain, and the process trace feeds `analyze`."""
    import re

    path = str(tmp_path / "exec.json")
    common = ["--nodes", "2", "--jobs", "2", "--partitions", "2",
              "--records", "16", "--block", "8"]
    assert main(["exec", "--backend", "inproc"] + common) == 0
    inproc_out = capsys.readouterr().out
    assert main(["exec", "--backend", "process", "--trace", path]
                + common) == 0
    process_out = capsys.readouterr().out

    def checksum(text):
        return re.search(r"checksum: (\w+)", text).group(1)

    assert checksum(inproc_out) == checksum(process_out)
    assert main(["analyze", path]) == 0  # runtime traces are analyzable


def test_untraced_run_leaves_no_ambient_tracer():
    from repro.obs import NULL_TRACER, get_ambient_tracer

    assert main(["run", "--cluster", "tiny", "--jobs", "2"]) == 0
    assert get_ambient_tracer() is NULL_TRACER
