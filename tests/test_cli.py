"""Tests for the command-line interface."""

import pytest

from repro.cli import CLUSTERS, STRATEGIES, build_parser, main


def test_parser_has_all_figure_subcommands():
    parser = build_parser()
    for fig in ("fig2", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14"):
        args = parser.parse_args([fig, "--scale", "ci"])
        assert args.command == fig
        assert args.scale == "ci"


def test_parser_run_defaults():
    args = build_parser().parse_args(["run"])
    assert args.cluster == "tiny"
    assert args.strategy == "rcmp"
    assert args.jobs == 7
    assert args.failures is None


def test_parser_rejects_bad_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig8", "--scale", "huge"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "fig2" in out


def test_fig2_command_prints_table(capsys):
    assert main(["fig2", "--scale", "ci"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
    assert "STIC" in out and "SUG@R" in out


def test_run_command_executes_chain(capsys):
    assert main(["run", "--cluster", "tiny", "--strategy", "rcmp",
                 "--jobs", "2", "--failures", "2"]) == 0
    out = capsys.readouterr().out
    assert "ChainResult" in out
    assert "recompute" in out or "rerun" in out


def test_run_command_every_strategy(capsys):
    for name in STRATEGIES:
        assert main(["run", "--cluster", "tiny", "--strategy", name,
                     "--jobs", "2"]) == 0
        assert "ChainResult" in capsys.readouterr().out


def test_cluster_registry_instantiates():
    for factory in CLUSTERS.values():
        spec = factory()
        spec.validate()
